//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of `rand`'s API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], the object-safe [`Rng`]
//! core trait, and [`RngExt`] with `random_range` / `random`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`, but the workspace only ever requires
//! *determinism per seed*, never a specific stream. All sampling is uniform,
//! matching the distributional assumptions of workload-generation tests.

use std::ops::{Range, RangeInclusive};

/// Object-safe core RNG trait: a source of uniformly random `u64`s.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from an RNG (the subset of
/// upstream's `StandardUniform` distribution the workspace needs).
pub trait Random {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range a value can be drawn uniformly from.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw uniformly from `[0, span)`. `span == 0` encodes the full 2^64 range.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection sampling (Lemire-style threshold) for exact uniformity.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Uniform f64 in `[0, 1)` from the top 53 bits.
#[inline]
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in random_range");
                // hi - lo + 1 wraps to 0 for the full domain; uniform_below
                // treats 0 as the full 2^64 span, which only a u64 range hits.
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard the open upper bound against round-up at the extreme.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn random_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }

    /// Uniform draw over `T`'s full domain.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state expanded from the seed with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.random::<u64>()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.random::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5u64..=5);
            assert_eq!(w, 5);
            let x = rng.random_range(0usize..3);
            assert!(x < 3);
            let f = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(1);
        // span wraps to zero; must not panic or loop forever.
        let _ = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut buckets = [0u32; 10];
        for _ in 0..n {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            let frac = b as f64 / n as f64;
            assert!((0.08..0.12).contains(&frac), "bucket fraction {frac}");
        }
    }

    #[test]
    fn object_safe_usage() {
        fn draw(rng: &mut dyn super::Rng) -> u64 {
            rng.random_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 100);
    }
}
