//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! crate reimplements the slice of proptest the workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), the [`Strategy`]
//! trait with `prop_map`, integer-range / tuple / `prop::collection::vec` /
//! `prop::sample::select` / `any::<bool>()` strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is **no shrinking** and no persistence of
//! regressions; failing cases report the test name, case index, and seed so
//! they replay exactly (generation is deterministic per test name and case
//! index). That trade keeps the stub small while preserving what the
//! workspace's tests rely on: uniform coverage of the parameter space and
//! bit-for-bit reproducibility.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Deterministic RNG handed to strategies during generation.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one test case: seeded from the test's name and case index so
    /// every case is independent and replayable.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37_79b9)),
        }
    }
}

impl Rng for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

/// Outcome of one generated case (Ok = passed).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Test-runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy yielding exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u64, u32, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Uniform over `bool`.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Combinator namespace, mirroring upstream's `proptest::prelude::prop`.
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s whose length is drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` of values from `element`, length in `size`
        /// (a `usize` means exactly that many).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use super::super::{Strategy, TestRng};
        use rand::RngExt;

        /// Strategy drawing uniformly from a fixed set of options.
        pub struct Select<T: Clone>(Vec<T>);

        /// Uniform choice among `options` (panics on empty input).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.random_range(0..self.0.len())].clone()
            }
        }
    }
}

/// Acceptable lengths for a collection strategy.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.0.clone())
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange(r)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange(n..n + 1)
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(0u32..4, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!({ ($cfg).cases } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!({ $crate::ProptestConfig::default().cases } $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ({ $cases:expr }) => {};
    ({ $cases:expr } $(#[$meta:meta])* fn $name:ident ($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run!($cases, stringify!($name); ($($args)*) $body);
        }
        $crate::__proptest_tests!({ $cases } $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ($cases:expr, $name:expr; ($($arg:ident in $strat:expr),* $(,)?) $body:block) => {{
        let __cases: u32 = $cases;
        // Bind each strategy once, named after its argument; the per-case
        // value below shadows it.
        $(let $arg = $strat;)*
        let mut __rejected: u32 = 0;
        for __case in 0..__cases {
            let mut __rng = $crate::TestRng::for_case($name, __case);
            $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)*
            let __result: $crate::TestCaseResult = (|| {
                $body
                ::std::result::Result::Ok(())
            })();
            match __result {
                ::std::result::Result::Ok(()) => {}
                ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                    __rejected += 1;
                    assert!(
                        __rejected < __cases * 16,
                        "proptest {}: too many prop_assume! rejections",
                        $name
                    );
                }
                ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                    panic!(
                        "proptest {} failed at case {}/{}:\n{}",
                        $name, __case, __cases, __msg
                    );
                }
            }
        }
    }};
}

/// Like `assert!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

/// Like `assert_ne!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, $($fmt)*);
            }
        }
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 5u64..50, y in 0usize..3, f in (1u32..4, 0u64..10)) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(y < 3);
            prop_assert!(f.0 >= 1 && f.0 < 4 && f.1 < 10);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 100);
            }
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(0u64..10, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn select_and_map(
            k in prop::sample::select(vec![1u64, 2, 3]).prop_map(|v| v * 10),
            b in any::<bool>(),
        ) {
            prop_assert!(k == 10 || k == 20 || k == 30);
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn assume_skips(a in 0u64..10, b in 0u64..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        use crate::{Strategy, TestRng};
        let strat = 0u64..1_000_000;
        let mut r1 = TestRng::for_case("some_test", 7);
        let mut r2 = TestRng::for_case("some_test", 7);
        let mut r3 = TestRng::for_case("other_test", 7);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        let _ = strat.generate(&mut r3); // different stream, must not panic
    }

    #[test]
    fn just_yields_value() {
        use crate::{Just, Strategy, TestRng};
        let mut rng = TestRng::for_case("just", 0);
        assert_eq!(Just(42u64).generate(&mut rng), 42);
    }
}
