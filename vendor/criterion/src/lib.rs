//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! crate provides the subset of criterion's API the workspace's benches use
//! (`criterion_group!` in both forms, `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `BatchSize`) backed by a
//! deliberately simple harness: each benchmark runs `sample_size` timed
//! iterations after one warm-up and reports mean wall-clock time per
//! iteration. No statistics, plots, or baselines — just enough to keep
//! `cargo bench` useful for spotting order-of-magnitude regressions.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::path::Path;
use std::time::{Duration, Instant};

/// One completed benchmark: its full id, iteration count, and mean
/// wall-clock time per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// `group/benchmark` (or the bare id for top-level benchmarks).
    pub id: String,
    /// Timed iterations contributing to the mean.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A started wall-clock timer for one-shot measurements.
///
/// The workspace's determinism lint bans host time sources inside
/// `crates/`; the bench harness is the one sanctioned consumer of wall
/// time, so tools that need to time a run (e.g. `repro scale`) borrow
/// this instead of reaching for `Instant` directly.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::new`].
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Seconds elapsed since [`Stopwatch::new`].
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// How `iter_batched` amortizes setup; ignored by this harness.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark's iterations and accumulates the measurement.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Bencher {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std_black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, label: &str) -> Option<Measurement> {
        if self.iters == 0 {
            println!("{label:<48} (no measurement)");
            return None;
        }
        let per_iter = self.total / self.iters as u32;
        println!("{label:<48} {per_iter:>12.2?}/iter  ({} iters)", self.iters);
        Some(Measurement {
            id: label.to_string(),
            iters: self.iters,
            mean_ns: self.total.as_nanos() as f64 / self.iters as f64,
        })
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        self.criterion
            .measurements
            .extend(b.report(&format!("{}/{}", self.name, id)));
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        self.criterion
            .measurements
            .extend(b.report(&format!("{}/{}", self.name, id)));
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
pub struct Criterion {
    samples: u64,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            samples: 10,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Default iteration count for groups created from this handle.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n as u64;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            samples: self.samples,
            criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        self.measurements.extend(b.report(&id.to_string()));
    }

    /// Every measurement recorded through this handle, in run order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Record a derived measurement directly, bypassing the timed-iteration
    /// path. Used for series whose value is computed from another
    /// measurement (e.g. an events-per-second rate stored in `mean_ns`,
    /// or a whole-run wall time measured with a [`Stopwatch`]).
    pub fn record(&mut self, id: impl Into<String>, iters: u64, mean_ns: f64) {
        self.measurements.push(Measurement {
            id: id.into(),
            iters,
            mean_ns,
        });
    }

    /// The recorded measurements as a JSON document:
    /// `{"benchmarks": [{"id": ..., "iters": ..., "mean_ns": ...}, ...]}`.
    pub fn json(&self) -> String {
        let mut s = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            let id = m.id.replace('\\', "\\\\").replace('"', "\\\"");
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"iters\": {}, \"mean_ns\": {:.1}}}{}\n",
                id,
                m.iters,
                m.mean_ns,
                if i + 1 < self.measurements.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write [`Criterion::json`] to `path`.
    pub fn save_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.json())
    }

    /// Runs pending reports; a no-op in this harness.
    pub fn final_summary(&mut self) {}
}

/// Define a benchmark group: `criterion_group!(name, fn_a, fn_b)` or the
/// brace form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &5u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn measurements_are_recorded_and_serialized() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("solo", |b| b.iter(|| 2 + 2));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("inner", |b| b.iter(|| 3 * 3));
            g.finish();
        }
        let ids: Vec<&str> = c.measurements().iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids, ["solo", "grp/inner"]);
        assert!(c.measurements().iter().all(|m| m.iters == 2));
        let json = c.json();
        assert!(json.contains("\"benchmarks\""));
        assert!(json.contains("\"id\": \"grp/inner\""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn record_and_stopwatch() {
        let mut c = Criterion::default();
        let sw = Stopwatch::new();
        let ns = sw.elapsed_ns();
        c.record("scale/ranks/1000", 1, ns as f64);
        c.record("des_hot_path/events_per_sec", 1, 12345.0);
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "scale/ranks/1000");
        assert!(c.json().contains("des_hot_path/events_per_sec"));
        assert!(sw.elapsed_secs_f64() >= 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
    }
}
