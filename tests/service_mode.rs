//! Tier-1: open-loop service mode.
//!
//! Service runs must replay byte-identically (serially and across the
//! sweep thread pool), the scheduling policies must actually change tail
//! latency the way queueing theory says they should, bounded-queue
//! shedding must be counted honestly against the verified output file,
//! and invalid service configurations must be rejected with typed errors
//! at build time.

use s3a_workload::{Box, BoxHistogram};
use s3asim::{
    run_batch, try_run, try_run_with_restart, ArrivalProcess, FaultParams, ParamError, ResumePoint,
    SchedPolicy, ServiceParams, SimError, SimParams, SimTime, Strategy, Track, MAX_TENANTS,
};

/// A small service configuration: 48 queries offered to 8 processes.
fn service(rate: f64, policy: SchedPolicy, queue_capacity: usize) -> SimParams {
    SimParams::builder()
        .procs(8)
        .strategy(Strategy::WwList)
        .with_workload(|w| {
            w.queries = 48;
            w.fragments = 8;
            w.min_results = 50;
            w.max_results = 400;
        })
        .service(ServiceParams {
            arrivals: ArrivalProcess::Poisson { rate },
            policy,
            tenants: 2,
            queue_capacity,
            arrival_seed: 11,
            poll_interval: SimTime::from_millis(5),
        })
        .build()
        .expect("valid service configuration")
}

#[test]
fn poisson_run_replays_byte_identically_serial_vs_pooled() {
    // The same configuration twice per arrival process, so the batch
    // contains an in-batch replay; run the batch serially and on the
    // thread pool and demand byte-identical service rows throughout.
    let mut params = Vec::new();
    for arrivals in [
        ArrivalProcess::Poisson { rate: 4.0 },
        ArrivalProcess::Bursty {
            base_rate: 2.0,
            burst_rate: 12.0,
            mean_dwell: 2.0,
        },
        ArrivalProcess::Diurnal {
            trough_rate: 1.0,
            peak_rate: 8.0,
            period: 6.0,
        },
    ] {
        for _ in 0..2 {
            let mut p = service(4.0, SchedPolicy::Sjf, 12);
            p.mode = s3asim::RunMode::Service(ServiceParams {
                arrivals: arrivals.clone(),
                ..p.service().expect("service mode").clone()
            });
            params.push(p);
        }
    }

    let serial = run_batch(&params, 1).expect("serial batch completes");
    let pooled = run_batch(&params, 4).expect("pooled batch completes");

    assert_eq!(serial.len(), pooled.len());
    for (rs, rp) in serial.iter().zip(&pooled) {
        let cs = rs.service_columns().expect("service row");
        let cp = rp.service_columns().expect("service row");
        assert_eq!(cs.header(), cp.header());
        assert_eq!(cs.row(), cp.row(), "pooled service row differs from serial");
        assert_eq!(rs.engine, rp.engine, "engine work must replay exactly");
        assert_eq!(
            format!("{:?}", rs.service),
            format!("{:?}", rp.service),
            "full service report must replay exactly"
        );
    }
    // The in-batch duplicates agree too (same seed, same arrivals).
    for pair in serial.chunks(2) {
        assert_eq!(
            format!("{:?}", pair[0].service),
            format!("{:?}", pair[1].service)
        );
    }
}

#[test]
fn sjf_beats_fifo_on_p99_for_heavy_tailed_sizes() {
    // A cleanly bimodal heavy tail: every small query produces exactly
    // the same output bytes (query length 40 caps each hit's size at the
    // 128-byte record minimum, and the hit count is pinned), while two
    // rare giants each carry ~20 MB — thousands of times a small. SJF
    // then ties on every small and falls back to arrival order among
    // them, so the ONLY reordering it applies is deferring the giants.
    // Under FIFO a giant at the head of the queue stalls most of the
    // cluster and everything behind it queues for seconds; under SJF the
    // smalls flow past and only the two giants — exactly the population
    // beyond the p99 rank at n=200 — finish late.
    let heavy = |policy: SchedPolicy| {
        SimParams::builder()
            .procs(6)
            .strategy(Strategy::WwList)
            .with_workload(|w| {
                w.queries = 200;
                w.fragments = 4;
                w.min_results = 48;
                w.max_results = 48;
                // Pin database-sequence lengths so the per-hit size cap
                // (3 × the longer sequence) is driven by query length
                // alone.
                w.db_hist = BoxHistogram::constant(8);
                w.query_hist = BoxHistogram::new(vec![
                    Box {
                        lo: 40,
                        hi: 41,
                        weight: 99.5,
                    },
                    Box {
                        lo: 200_000,
                        hi: 300_000,
                        weight: 0.5,
                    },
                ]);
                w.seed = 17;
            })
            .service(ServiceParams {
                arrivals: ArrivalProcess::Poisson { rate: 14.0 },
                policy,
                tenants: 1,
                queue_capacity: 400, // never shed: both policies see identical work
                arrival_seed: 5,
                poll_interval: SimTime::from_millis(5),
            })
            .build()
            .expect("valid heavy-tailed configuration")
    };

    // The premise: this seed draws exactly two giants, the number the
    // nearest-rank p99 excludes at n=200.
    let workload = s3a_workload::Workload::generate(&heavy(SchedPolicy::Fifo).workload);
    let giants = workload
        .queries
        .iter()
        .filter(|q| q.query_len > 10_000)
        .count();
    assert_eq!(giants, 2, "seed 17 must draw exactly two giant queries");

    let fifo = try_run(&heavy(SchedPolicy::Fifo)).expect("FIFO run completes");
    let sjf = try_run(&heavy(SchedPolicy::Sjf)).expect("SJF run completes");
    let fifo = fifo.service.expect("service report");
    let sjf = sjf.service.expect("service report");

    // Identical admitted populations — the comparison is pure policy.
    assert_eq!(fifo.offered, 200);
    assert_eq!(fifo.shed, 0);
    assert_eq!(sjf.shed, 0);
    assert_eq!(fifo.admitted, sjf.admitted);

    assert!(
        sjf.latency.p99 < fifo.latency.p99,
        "SJF p99 ({:?}) should beat FIFO p99 ({:?}) on a heavy-tailed workload",
        sjf.latency.p99,
        fifo.latency.p99
    );
    assert!(
        sjf.latency.p50 < fifo.latency.p50,
        "SJF p50 ({:?}) should beat FIFO p50 ({:?})",
        sjf.latency.p50,
        fifo.latency.p50
    );
}

#[test]
fn sjf_ties_dispatch_in_arrival_order() {
    // Pin every query to the exact same output size (constant histograms,
    // min_results == max_results), so EVERY SJF comparison is a tie. The
    // tie-break is (bytes, arrival, query id): with sizes equal, SJF must
    // degenerate to FIFO exactly — same dispatch order, query for query.
    // Before the tie-break fix, equal-size queries could dispatch in heap
    // pop order, silently reordering same-size work.
    let pinned = |policy: SchedPolicy| {
        SimParams::builder()
            .procs(6)
            .strategy(Strategy::WwList)
            .with_workload(|w| {
                w.queries = 40;
                w.fragments = 4;
                w.min_results = 60;
                w.max_results = 60;
                w.db_hist = BoxHistogram::constant(8);
                w.query_hist = BoxHistogram::constant(40);
            })
            .service(ServiceParams {
                arrivals: ArrivalProcess::Poisson { rate: 20.0 },
                policy,
                tenants: 1,
                queue_capacity: 64,
                arrival_seed: 3,
                poll_interval: SimTime::from_millis(5),
            })
            .build()
            .expect("valid pinned configuration")
    };

    let sjf = try_run(&pinned(SchedPolicy::Sjf)).expect("SJF run completes");
    let fifo = try_run(&pinned(SchedPolicy::Fifo)).expect("FIFO run completes");
    let sjf = sjf.service.expect("service report");
    let fifo = fifo.service.expect("service report");
    assert_eq!(sjf.shed, 0);
    assert_eq!(fifo.shed, 0);

    let dispatch_order = |svc: &s3asim::ServiceReport| {
        let mut qs: Vec<(SimTime, usize)> = svc
            .queries
            .iter()
            .map(|q| (q.dispatched, q.query))
            .collect();
        qs.sort();
        qs.into_iter().map(|(_, q)| q).collect::<Vec<_>>()
    };
    assert_eq!(
        dispatch_order(&sjf),
        dispatch_order(&fifo),
        "all-ties SJF must dispatch in FIFO (arrival) order"
    );

    // And within the SJF run itself: dispatch order equals arrival order.
    let mut by_arrival: Vec<(SimTime, usize)> =
        sjf.queries.iter().map(|q| (q.arrival, q.query)).collect();
    by_arrival.sort();
    assert_eq!(
        dispatch_order(&sjf),
        by_arrival.into_iter().map(|(_, q)| q).collect::<Vec<_>>(),
        "same-size queries must leave the queue in arrival order"
    );
}

#[test]
fn bursty_shedding_replays_byte_identically_serial_vs_pooled() {
    // Simultaneous (same-tick) arrivals under a bursty process against a
    // tiny queue: admission and shedding decisions inside one tick must
    // follow the arrival sequence, so the exact set of shed queries —
    // not just the count — replays byte-identically whether the batch
    // runs serially or on the sweep thread pool.
    let mut p = service(4.0, SchedPolicy::Fifo, 3);
    p.mode = s3asim::RunMode::Service(ServiceParams {
        arrivals: ArrivalProcess::Bursty {
            base_rate: 2.0,
            burst_rate: 40.0,
            mean_dwell: 1.0,
        },
        ..p.service().expect("service mode").clone()
    });
    let params = vec![p.clone(), p];

    let serial = run_batch(&params, 1).expect("serial batch completes");
    let pooled = run_batch(&params, 4).expect("pooled batch completes");

    let svc = serial[0].service.as_ref().expect("service report");
    assert!(svc.shed > 0, "burst against capacity 3 must shed");

    for (rs, rp) in serial.iter().zip(&pooled) {
        let ss = rs.service.as_ref().expect("service report");
        let sp = rp.service.as_ref().expect("service report");
        assert_eq!(
            ss.shed_queries, sp.shed_queries,
            "same-tick shed decisions must not depend on the thread pool"
        );
        assert_eq!(format!("{:?}", rs.service), format!("{:?}", rp.service));
        assert_eq!(rs.engine, rp.engine);
    }
}

#[test]
fn bounded_queue_shedding_is_counted_honestly() {
    // Overload a tiny queue so admission control must turn queries away,
    // then check the books: every offered query is either admitted or
    // shed, every admitted query completes, and the verified output file
    // covers exactly the completed queries' bytes (try_run would fail
    // verification otherwise).
    let report = try_run(&service(40.0, SchedPolicy::Fifo, 4)).expect("overloaded run verifies");
    let svc = report.service.expect("service report");

    assert!(svc.shed > 0, "overload against capacity 4 must shed");
    assert_eq!(svc.offered, 48);
    assert_eq!(svc.offered, svc.admitted + svc.shed);
    assert_eq!(
        svc.completed, svc.admitted,
        "no admitted query may be dropped"
    );
    assert_eq!(svc.queries.len(), svc.completed);
    assert_eq!(svc.shed_queries.len(), svc.shed);
    assert!(svc.queue_peak <= 4, "queue depth may never exceed capacity");

    // Shed and completed sets partition the offered queries.
    let completed: Vec<usize> = svc.queries.iter().map(|q| q.query).collect();
    for q in &svc.shed_queries {
        assert!(!completed.contains(q), "query {q} both shed and served");
    }
    assert_eq!(completed.len() + svc.shed_queries.len(), svc.offered);

    // The output file was verified against completed bytes only.
    assert_eq!(report.expected_bytes, report.covered_bytes);
    assert_eq!(report.overlap_bytes, 0);

    // Lifecycle timestamps are ordered for every completed query.
    for q in &svc.queries {
        assert!(q.arrival <= q.admitted, "query {}", q.query);
        assert!(q.admitted <= q.dispatched, "query {}", q.query);
        assert!(q.dispatched <= q.merged, "query {}", q.query);
        assert!(q.merged <= q.replied, "query {}", q.query);
    }
}

#[test]
fn service_run_is_sanitizer_clean_and_publishes_latency_series() {
    let mut p = service(6.0, SchedPolicy::FairShare, 12);
    p.observe = true;
    p.sanitize = true;
    let report = try_run(&p).expect("observed service run verifies");

    let san = report.sanitizer.expect("sanitize=true yields a report");
    assert!(san.is_clean(), "service run raced: {:?}", san.hazards);

    let svc = report.service.as_ref().expect("service report");
    let obs = report.obs.expect("observe=true yields a report");
    let latency = obs
        .metrics
        .histogram("svc.latency")
        .expect("latency histogram");
    assert_eq!(latency.count, svc.completed as u64);
    assert_eq!(obs.metrics.counter("svc.offered"), svc.offered as u64);
    assert_eq!(obs.metrics.counter("svc.admitted"), svc.admitted as u64);
    assert_eq!(obs.metrics.counter("svc.shed"), svc.shed as u64);

    // One queued→sched→run→reply span chain per completed query on the
    // master's track.
    let runs = obs
        .track_spans(Track::Rank(0))
        .filter(|s| s.name == "svc.run")
        .count();
    assert_eq!(runs, svc.completed);
}

#[test]
fn builder_rejects_invalid_service_configs_with_typed_errors() {
    let base = |sp: ServiceParams| {
        SimParams::builder()
            .procs(4)
            .with_workload(|w| {
                w.queries = 4;
                w.fragments = 8;
                w.min_results = 50;
                w.max_results = 100;
            })
            .service(sp)
    };

    let err = base(ServiceParams {
        arrivals: ArrivalProcess::Poisson { rate: 0.0 },
        ..ServiceParams::default()
    })
    .build()
    .unwrap_err();
    assert!(matches!(err, ParamError::ZeroArrivalRate { .. }), "{err:?}");

    let err = base(ServiceParams {
        queue_capacity: 0,
        ..ServiceParams::default()
    })
    .build()
    .unwrap_err();
    assert_eq!(err, ParamError::ZeroServiceQueue);

    let err = base(ServiceParams {
        tenants: MAX_TENANTS + 1,
        ..ServiceParams::default()
    })
    .build()
    .unwrap_err();
    assert!(
        matches!(err, ParamError::TenantsOutOfRange { .. }),
        "{err:?}"
    );

    let err = base(ServiceParams {
        poll_interval: SimTime::ZERO,
        ..ServiceParams::default()
    })
    .build()
    .unwrap_err();
    assert_eq!(err, ParamError::ZeroPollInterval);

    // Service mode composes with neither crash-fault injection...
    let err = base(ServiceParams::default())
        .faults(FaultParams {
            worker_crashes: vec![(1, SimTime::from_millis(10))],
            ..FaultParams::default()
        })
        .build()
        .unwrap_err();
    assert_eq!(err, ParamError::ServiceCrashesUnsupported);

    // ...nor checkpoint-resume — whether passed to the builder or to the
    // restart driver.
    let err = base(ServiceParams::default())
        .resume_from(ResumePoint::default())
        .build()
        .unwrap_err();
    assert_eq!(err, ParamError::ServiceResumeUnsupported);

    let err = try_run_with_restart(
        &service(4.0, SchedPolicy::Fifo, 12),
        SimTime::from_millis(50),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            SimError::InvalidParams(ParamError::ServiceResumeUnsupported)
        ),
        "{err:?}"
    );
}
