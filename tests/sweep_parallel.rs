//! Tier-1: the parallel sweep executor must be invisible in the results.
//!
//! Every table, CSV row, and fault report produced by a thread-pool run
//! must be byte-identical to a serial run of the same points — including
//! a faults-armed configuration whose crash recovery exercises the
//! deterministic fault schedule on a worker thread.

use s3a_des::SimTime;
use s3asim::{run_batch, FaultParams, Point, SimParams, Strategy, Sweep, SweepOptions};

fn tiny(procs: usize, strategy: Strategy, sync: bool) -> SimParams {
    SimParams::builder()
        .procs(procs)
        .strategy(strategy)
        .query_sync(sync)
        .with_workload(|w| {
            w.queries = 4;
            w.fragments = 8;
            w.min_results = 40;
            w.max_results = 90;
        })
        .build()
        .expect("tiny configuration is valid")
}

/// A small cross-section of the paper's sweep space.
fn points() -> Vec<Point> {
    let mut points = Vec::new();
    for sync in [false, true] {
        for strategy in Strategy::PAPER_SET {
            for procs in [3usize, 6] {
                points.push(Point {
                    procs,
                    speed: 1.0,
                    strategy,
                    sync,
                });
            }
        }
    }
    points
}

fn to_params(p: Point) -> SimParams {
    tiny(p.procs, p.strategy, p.sync)
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial = Sweep::run("tier1", points(), to_params, SweepOptions::serial())
        .expect("serial sweep completes");
    let parallel = Sweep::run(
        "tier1",
        points(),
        to_params,
        SweepOptions {
            threads: 4,
            progress: false,
        },
    )
    .expect("parallel sweep completes");

    // The machine-readable artifact and every rendered table must match
    // byte for byte.
    assert_eq!(serial.csv(), parallel.csv());
    assert_eq!(
        serial.overall_table("procs"),
        parallel.overall_table("procs")
    );
    for (point, _) in &serial.runs {
        assert_eq!(
            serial.phase_table(point.strategy, point.sync, "procs"),
            parallel.phase_table(point.strategy, point.sync, "procs")
        );
    }
    for ((ps, rs), (pp, rp)) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(ps, pp, "input order must be preserved");
        assert_eq!(rs.overall, rp.overall, "{ps}");
        assert_eq!(
            rs.engine, rp.engine,
            "{ps}: engine work must replay exactly"
        );
    }
}

#[test]
fn faults_armed_point_replays_identically_across_the_pool() {
    // One clean run and one crash-armed run per strategy, plus a replay
    // of the crashed configuration — all in a single batch.
    let crashy = |strategy: Strategy| {
        let mut p = tiny(5, strategy, false);
        p.write_every_n_queries = 2;
        p.faults = FaultParams {
            worker_crashes: vec![(2, SimTime::from_millis(40))],
            heartbeat_interval: SimTime::from_millis(50),
            detection_timeout: SimTime::from_millis(400),
            ..FaultParams::default()
        };
        p
    };
    let params: Vec<SimParams> = [Strategy::Mw, Strategy::WwList]
        .iter()
        .flat_map(|&s| [tiny(5, s, false), crashy(s), crashy(s)])
        .collect();

    let serial = run_batch(&params, 1).expect("serial batch completes");
    let parallel = run_batch(&params, 4).expect("parallel batch completes");

    assert_eq!(serial.len(), parallel.len());
    for ((p, rs), rp) in params.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            rs.csv_row(),
            rp.csv_row(),
            "{} procs={}: parallel row differs from serial",
            p.strategy,
            p.procs
        );
        assert_eq!(rs.faults, rp.faults, "{}: fault reports differ", p.strategy);
    }
    // The armed points really did crash and recover (not a no-op plan),
    // and the in-batch replay matched its sibling.
    for trio in parallel.chunks(3) {
        assert!(trio[0].faults.is_none());
        let f = trio[1].faults.as_ref().expect("fault report");
        assert_eq!(f.crashes, 1);
        assert_eq!(f.detections, 1);
        assert_eq!(trio[1].csv_row(), trio[2].csv_row());
        assert_eq!(trio[1].faults, trio[2].faults);
    }
}

#[test]
fn builder_and_batch_reject_invalid_points_with_typed_errors() {
    use s3asim::{ParamError, SimError};

    // The builder refuses to construct the invalid configuration...
    let err = SimParams::builder().procs(1).build().unwrap_err();
    assert!(matches!(err, ParamError::TooFewProcs { procs: 1 }));

    // ...and a hand-built invalid parameter set surfaces as a typed
    // error from the batch executor instead of a panic.
    let mut bad = tiny(3, Strategy::WwList, false);
    bad.compute_speed = 0.0;
    let err = run_batch(std::slice::from_ref(&bad), 2).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::InvalidParams(ParamError::NonPositiveComputeSpeed { .. })
        ),
        "{err:?}"
    );
}
