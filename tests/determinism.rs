//! Reproducibility guarantees: identical inputs give bit-identical
//! reports, seeds control the workload, and — as the paper notes — the
//! generated results are independent of how many processors run the
//! search.

use s3a_workload::WorkloadParams;
use s3asim::{run, SimParams, Strategy, PHASES};

fn base(procs: usize, strategy: Strategy) -> SimParams {
    SimParams {
        procs,
        strategy,
        workload: WorkloadParams {
            queries: 6,
            fragments: 16,
            min_results: 80,
            max_results: 160,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    }
}

#[test]
fn identical_runs_are_bit_identical() {
    for strategy in [Strategy::Mw, Strategy::WwList, Strategy::WwColl] {
        let a = run(&base(8, strategy));
        let b = run(&base(8, strategy));
        assert_eq!(a.overall, b.overall, "{strategy} overall");
        assert_eq!(a.master, b.master, "{strategy} master phases");
        assert_eq!(a.workers, b.workers, "{strategy} worker phases");
        assert_eq!(a.fs, b.fs, "{strategy} fs stats");
        assert_eq!(a.mpi, b.mpi, "{strategy} mpi stats");
        assert_eq!(a.engine, b.engine, "{strategy} engine stats");
    }
}

#[test]
fn workload_bytes_independent_of_process_count() {
    // "Although we use different numbers of processors, the results are
    // always identical since they are pseudo-randomly generated." (§3.3)
    let sizes: Vec<u64> = [2usize, 5, 9, 16]
        .into_iter()
        .map(|procs| run(&base(procs, Strategy::WwList)).covered_bytes)
        .collect();
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "output size varied with process count: {sizes:?}"
    );
}

#[test]
fn workload_bytes_independent_of_strategy_and_sync() {
    let reference = run(&base(7, Strategy::WwList)).covered_bytes;
    for strategy in [Strategy::Mw, Strategy::WwPosix, Strategy::WwColl] {
        for sync in [false, true] {
            let mut p = base(7, strategy);
            p.query_sync = sync;
            assert_eq!(run(&p).covered_bytes, reference);
        }
    }
}

#[test]
fn different_seeds_give_different_workloads() {
    let mut a = base(4, Strategy::WwList);
    a.workload.seed = 1;
    let mut b = base(4, Strategy::WwList);
    b.workload.seed = 2;
    let ra = run(&a);
    let rb = run(&b);
    assert_ne!(ra.covered_bytes, rb.covered_bytes);
    ra.verify().expect("seed 1 exact");
    rb.verify().expect("seed 2 exact");
}

#[test]
fn phase_accounting_is_reproducible_per_phase() {
    let a = run(&base(6, Strategy::WwPosix));
    let b = run(&base(6, Strategy::WwPosix));
    for p in PHASES {
        assert_eq!(
            a.worker_mean.get(p),
            b.worker_mean.get(p),
            "phase {p} differed between identical runs"
        );
    }
}
