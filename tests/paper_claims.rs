//! Shape checks against the paper's findings, at a scale small enough
//! for the test suite (debug builds) but large enough for the effects to
//! show. The full 2–96-process reproduction lives in
//! `cargo run --release -p s3a-bench --bin repro`.

use s3asim::{run, Phase, RunReport, SimParams, Strategy};

fn paper_point(procs: usize, strategy: Strategy, sync: bool) -> RunReport {
    let p = SimParams {
        procs,
        strategy,
        query_sync: sync,
        ..SimParams::default()
    };
    let r = run(&p);
    r.verify()
        .unwrap_or_else(|e| panic!("{strategy} p{procs} sync={sync}: {e}"));
    r
}

/// §4: "The individual WW strategies outperform both the WW-Coll and MW
/// in the no-sync cases", and list I/O beats POSIX I/O.
#[test]
fn no_sync_ordering_at_scale() {
    let procs = 48;
    let mw = paper_point(procs, Strategy::Mw, false).overall;
    let posix = paper_point(procs, Strategy::WwPosix, false).overall;
    let list = paper_point(procs, Strategy::WwList, false).overall;
    let coll = paper_point(procs, Strategy::WwColl, false).overall;

    assert!(
        list < posix,
        "WW-List ({list}) should beat WW-POSIX ({posix})"
    );
    assert!(list < coll, "WW-List ({list}) should beat WW-Coll ({coll})");
    assert!(list < mw, "WW-List ({list}) should beat MW ({mw})");
    assert!(posix < mw, "WW-POSIX ({posix}) should beat MW ({mw})");
    assert!(
        posix < coll,
        "WW-Coll's inherent synchronization should cost more than \
         POSIX's slower I/O in a full application run ({posix} vs {coll})"
    );
}

/// §5: "WW-List beat all I/O methods in both no-sync and sync test cases."
#[test]
fn ww_list_wins_everywhere() {
    let procs = 48;
    for sync in [false, true] {
        let list = paper_point(procs, Strategy::WwList, sync).overall;
        for other in [Strategy::Mw, Strategy::WwPosix, Strategy::WwColl] {
            let t = paper_point(procs, other, sync).overall;
            assert!(
                list <= t,
                "WW-List ({list}) lost to {other} ({t}) with sync={sync}"
            );
        }
    }
}

/// §4: MW barely reacts to the forced sync (≤5%) because workers already
/// wait for the master's writes; WW-POSIX reacts strongly.
#[test]
fn forced_sync_sensitivity_ranking() {
    let procs = 48;
    let ratio = |s: Strategy| {
        let a = paper_point(procs, s, false).overall.as_secs_f64();
        let b = paper_point(procs, s, true).overall.as_secs_f64();
        b / a
    };
    let mw = ratio(Strategy::Mw);
    let posix = ratio(Strategy::WwPosix);
    let coll = ratio(Strategy::WwColl);
    assert!(
        mw < 1.25,
        "MW should barely react to query sync (got {mw:.2}x)"
    );
    assert!(
        coll < posix,
        "WW-Coll's own synchronization should absorb the forced sync \
         (coll {coll:.2}x vs posix {posix:.2}x)"
    );
    assert!(
        posix > 1.15,
        "WW-POSIX should be visibly hurt by the forced sync (got {posix:.2}x)"
    );
}

/// §4: improving compute speed barely moves MW (the master pipeline is the
/// bottleneck) but strongly helps WW-List.
#[test]
fn compute_speedup_helps_ww_but_not_mw() {
    let at_speed = |strategy: Strategy, speed: f64| {
        let p = SimParams {
            procs: 48,
            strategy,
            compute_speed: speed,
            ..SimParams::default()
        };
        let r = run(&p);
        r.verify().expect("exact");
        r.overall.as_secs_f64()
    };
    let mw_gain = at_speed(Strategy::Mw, 1.0) / at_speed(Strategy::Mw, 16.0);
    let list_gain = at_speed(Strategy::WwList, 1.0) / at_speed(Strategy::WwList, 16.0);
    assert!(
        mw_gain < 1.25,
        "MW should gain <25% from 16x faster compute (got {mw_gain:.2}x)"
    );
    assert!(
        list_gain > 1.4,
        "WW-List should gain substantially from faster compute (got {list_gain:.2}x)"
    );
    assert!(list_gain > mw_gain);
}

/// §4: the sync option *reduces* the measured I/O-phase time of the
/// individual WW strategies (fewer concurrent requests stress the file
/// system less) while overall time goes up.
#[test]
fn sync_reduces_io_phase_but_raises_overall() {
    let procs = 48;
    // The paper's strongest statement of this effect is for WW-POSIX
    // ("up to 17% I/O phase time decrease at 96 processors"): throttled
    // request arrival stresses the file system less even though overall
    // time rises.
    let ns = paper_point(procs, Strategy::WwPosix, false);
    let sy = paper_point(procs, Strategy::WwPosix, true);
    assert!(sy.overall > ns.overall, "sync should cost overall time");
    let io_ns = ns.worker_phase_secs(Phase::Io);
    let io_sy = sy.worker_phase_secs(Phase::Io);
    assert!(
        io_sy <= io_ns * 1.02,
        "WW-POSIX I/O phase should not grow under sync ({io_ns:.2} -> {io_sy:.2})"
    );
    // WW-List's I/O phase stays roughly flat in this reproduction.
    let lns = paper_point(procs, Strategy::WwList, false);
    let lsy = paper_point(procs, Strategy::WwList, true);
    assert!(
        lsy.worker_phase_secs(Phase::Io) <= lns.worker_phase_secs(Phase::Io) * 1.25,
        "WW-List I/O phase exploded under sync"
    );
}

/// §4: scaling up processes helps strongly at small counts, then flattens
/// once the I/O phase dominates (paper: around 32 processes).
#[test]
fn scaling_flattens_once_io_dominates() {
    let t8 = paper_point(8, Strategy::WwList, false)
        .overall
        .as_secs_f64();
    let t32 = paper_point(32, Strategy::WwList, false)
        .overall
        .as_secs_f64();
    let t64 = paper_point(64, Strategy::WwList, false)
        .overall
        .as_secs_f64();
    assert!(
        t8 / t32 > 2.0,
        "8->32 procs should speed up well ({t8:.1} -> {t32:.1})"
    );
    assert!(
        t32 / t64 < 2.0,
        "32->64 procs should show diminishing returns ({t32:.1} -> {t64:.1})"
    );
}

/// §5 (conclusion): a collective built from list I/O plus forced
/// synchronization beats ROMIO-style two-phase for this access pattern.
#[test]
fn list_collective_beats_two_phase() {
    // The paper hedges ("in some cases ... may be a more efficient
    // collective method"); in this reproduction the crossover sits around
    // 48–64 processes, so assert at 64.
    let procs = 64;
    let two_phase = paper_point(procs, Strategy::WwColl, false).overall;
    let list_coll = paper_point(procs, Strategy::WwCollList, false).overall;
    assert!(
        list_coll < two_phase,
        "list-I/O collective ({list_coll}) should beat two-phase ({two_phase})"
    );
}

/// MW's master is the single point of contention: its data-distribution
/// stalls dominate the workers' time at scale.
#[test]
fn mw_workers_wait_on_the_master() {
    let r = paper_point(48, Strategy::Mw, false);
    let waiting = r.worker_phase_secs(Phase::DataDistribution);
    let computing = r.worker_phase_secs(Phase::Compute);
    assert!(
        waiting > computing,
        "at scale, MW workers should wait on the master more than they \
         compute (waiting {waiting:.1}s vs compute {computing:.1}s)"
    );
}
