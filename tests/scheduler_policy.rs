//! The `SchedulePolicy` hook's compatibility contract: installing the
//! canonical policy must not change a single observable byte of any run
//! (the model checker's baseline depends on it), and a schedule-shuffling
//! policy may reorder execution but must never break the exactly-once
//! commit ledger or output verification.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use s3a_des::{with_policy, CanonicalPolicy, PolicyHandle, SeededPolicy};
use s3a_workload::WorkloadParams;
use s3asim::{try_run, FaultParams, SimParams, SimTime, Strategy};

fn base(procs: usize, queries: usize, seed: u64, strategy: Strategy) -> SimParams {
    SimParams {
        procs,
        strategy,
        workload: WorkloadParams {
            queries,
            fragments: 8,
            min_results: 30,
            max_results: 80,
            seed,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    }
}

/// The 2-master failover configuration the model checker's acceptance
/// scenario drives (one standby master crashes mid-Search).
fn failover(strategy: Strategy) -> SimParams {
    let mut p = base(10, 8, WorkloadParams::default().seed, strategy);
    p.num_masters = 2;
    p.write_every_n_queries = 2;
    p.sanitize = true;
    p.faults = FaultParams {
        master_crashes: vec![(1, SimTime::from_millis(40))],
        heartbeat_interval: SimTime::from_millis(50),
        detection_timeout: SimTime::from_millis(400),
        ..FaultParams::default()
    };
    p
}

fn run_with_canonical(params: &SimParams) -> String {
    let handle: PolicyHandle = Rc::new(RefCell::new(CanonicalPolicy));
    let report = with_policy(handle, || try_run(params)).expect("canonical run succeeds");
    format!("{report:?}")
}

fn run_stock(params: &SimParams) -> String {
    let report = try_run(params).expect("stock run succeeds");
    format!("{report:?}")
}

#[test]
fn canonical_policy_is_byte_identical_on_the_paper_strategies() {
    for strategy in [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwColl,
    ] {
        let params = base(8, 6, WorkloadParams::default().seed, strategy);
        assert_eq!(
            run_stock(&params),
            run_with_canonical(&params),
            "{strategy}: canonical policy changed the report"
        );
    }
}

#[test]
fn canonical_policy_is_byte_identical_through_master_failover() {
    for strategy in [Strategy::Mw, Strategy::WwList] {
        let params = failover(strategy);
        assert_eq!(
            run_stock(&params),
            run_with_canonical(&params),
            "{strategy}: canonical policy changed the failover report"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the contract over the configuration space the
    /// repro harness sweeps: procs, workload size, and seed.
    #[test]
    fn canonical_policy_is_byte_identical_across_configs(
        procs in 3usize..10,
        queries in 1usize..6,
        seed in 0u64..1000,
        strategy_idx in 0usize..4,
    ) {
        let strategy = Strategy::PAPER_SET[strategy_idx];
        let params = base(procs, queries, seed, strategy);
        prop_assert_eq!(run_stock(&params), run_with_canonical(&params));
    }
}

#[test]
fn seeded_policy_keeps_the_ledger_exactly_once_on_failover() {
    let expected: Vec<usize> = (0..4).collect(); // 8 queries / write_every 2
    for seed in [1u64, 7, 42, 1234] {
        let params = failover(Strategy::Mw);
        let handle: PolicyHandle = Rc::new(RefCell::new(SeededPolicy::new(seed)));
        let report = with_policy(handle, || try_run(&params))
            .unwrap_or_else(|e| panic!("seed {seed}: shuffled failover failed: {e}"));
        let mut batches: Vec<usize> = report.commits.entries().iter().map(|e| e.batch).collect();
        batches.sort_unstable();
        assert_eq!(batches, expected, "seed {seed}: ledger not exactly-once");
        let faults = report.faults.expect("fault report");
        assert_eq!(faults.master_crashes, 1, "seed {seed}");
        assert_eq!(faults.shard_takeovers, 1, "seed {seed}: takeover lost");
        if let Some(s) = &report.sanitizer {
            assert!(s.is_clean(), "seed {seed}: sanitizer hazards");
        }
    }
}
