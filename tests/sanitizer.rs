//! The simulated-cluster race sanitizer, end to end: deliberately-raced
//! fixtures trip each hazard class, every shipped strategy runs clean
//! under it (including WW-DS under fault injection), and arming it never
//! perturbs the run it watches.

use std::rc::Rc;

use s3a_des::{Sim, SimTime};
use s3a_mpi::{MpiConfig, World};
use s3a_mpiio::{File, Hints};
use s3a_net::{EndpointId, Fabric, NetConfig};
use s3a_pvfs::{FileSystem, HazardKind, PvfsConfig, Region, SimSanitizer};
use s3asim::{try_run, FaultParams, RunReport, SimParams, Strategy};

fn small_cfg() -> PvfsConfig {
    PvfsConfig {
        servers: 4,
        ..PvfsConfig::default()
    }
}

/// A private cluster with two client endpoints (ids 0 and 1, servers
/// above) and the sanitizer armed.
fn two_client_fs(sim: &Sim) -> (FileSystem, SimSanitizer) {
    let cfg = small_cfg();
    let fabric = Rc::new(Fabric::new(2 + cfg.servers, NetConfig::default()));
    let fs = FileSystem::new(sim, cfg, fabric, 2);
    let san = SimSanitizer::armed();
    fs.set_sanitizer(san.clone());
    (fs, san)
}

/// Hazard class (a): two clients write overlapping byte ranges with
/// overlapping virtual-time intervals and no lock grant. The sanitizer
/// must name both actors and the file.
#[test]
fn unlocked_overlapping_writes_are_reported() {
    let sim = Sim::new();
    let (fs, san) = two_client_fs(&sim);
    for client in 0..2usize {
        let fh = fs.open("raced.out");
        sim.spawn(format!("client{client}"), async move {
            // Both start at t=0; service takes virtual time, so the two
            // operations are concurrent and overlap on [4096, 8192).
            let off = client as u64 * 4096;
            fh.write_contiguous(EndpointId(client), off, 8192)
                .await
                .expect("write completes");
        });
    }
    sim.run().expect("no deadlock");
    let report = san.finish().expect("armed sanitizer yields a report");
    assert!(!report.is_clean());
    assert!(report.count_of(HazardKind::UnlockedOverlap) >= 1);
    let h = report
        .hazards
        .iter()
        .find(|h| h.kind == HazardKind::UnlockedOverlap)
        .unwrap();
    assert_eq!(h.file, "raced.out");
    assert_eq!(h.actors, vec![0, 1], "both clients must be named");
    assert!(h.range.len > 0, "conflicting byte range must be reported");
}

/// The same write pattern under lock grants is the sanctioned sieve
/// pattern: serialized by the LockManager, hence never concurrent, hence
/// clean.
#[test]
fn locked_overlapping_writes_are_clean() {
    let sim = Sim::new();
    let (fs, san) = two_client_fs(&sim);
    for client in 0..2usize {
        let fh = fs.open("locked.out");
        sim.spawn(format!("client{client}"), async move {
            let off = client as u64 * 4096;
            let _guard = fh.lock_range(EndpointId(client), off, 8192).await;
            fh.write_contiguous(EndpointId(client), off, 8192)
                .await
                .expect("write completes");
        });
    }
    sim.run().expect("no deadlock");
    let report = san.finish().expect("report");
    assert!(
        report.is_clean(),
        "lock-serialized writes flagged: {:?}",
        report.hazards
    );
}

/// Hazard class (b): one client reads bytes another client has written
/// but not yet synced — in the real system the reader may see either
/// version depending on cache timing.
#[test]
fn read_of_unflushed_foreign_bytes_is_reported() {
    let sim = Sim::new();
    let (fs, san) = two_client_fs(&sim);
    {
        let fh = fs.open("dirty.out");
        let s = sim.clone();
        sim.spawn("writer", async move {
            fh.write_contiguous(EndpointId(0), 0, 8192)
                .await
                .expect("write completes");
            // No sync: the bytes stay dirty in the server-side cache.
            s.sleep(SimTime::from_secs_f64(5.0)).await;
        });
    }
    {
        let fh = fs.open("dirty.out");
        let s = sim.clone();
        sim.spawn("reader", async move {
            // Start well after the write has completed: the hazard is the
            // missing sync, not timing overlap.
            s.sleep(SimTime::from_secs_f64(2.0)).await;
            fh.read_contiguous(EndpointId(1), 4096, 2048)
                .await
                .expect("read completes");
            // After a sync the same read is sanctioned.
            fh.sync(EndpointId(1)).await.expect("sync completes");
            fh.read_contiguous(EndpointId(1), 4096, 2048)
                .await
                .expect("read completes");
        });
    }
    sim.run().expect("no deadlock");
    let report = san.finish().expect("report");
    assert_eq!(
        report.count_of(HazardKind::ReadAfterDirty),
        1,
        "exactly the pre-sync read must be flagged: {:?}",
        report.hazards
    );
    assert!(report.count_of(HazardKind::UnlockedOverlap) == 0);
}

/// Hazard class (c): a strict subset of ranks enters `write_at_all`. The
/// allgather deadlocks the run (as it would hang real MPI), and the
/// sanitizer's report names the collective and the missing ranks.
#[test]
fn partial_collective_is_reported_with_missing_ranks() {
    let sim = Sim::new();
    let cfg = small_cfg();
    let mpi = MpiConfig::default();
    let nranks = 4usize;
    let nodes = nranks.div_ceil(mpi.ranks_per_node);
    let fabric = Rc::new(Fabric::new(nodes + cfg.servers, NetConfig::default()));
    let world = World::with_fabric(&sim, nranks, mpi, Rc::clone(&fabric), 0);
    let fs = FileSystem::new(&sim, cfg, fabric, nodes);
    let san = SimSanitizer::armed();
    fs.set_sanitizer(san.clone());

    for rank in 0..nranks {
        let comm = world.comm(rank);
        let file = File::open(&comm, &fs, "coll.out", Hints::default());
        sim.spawn(format!("rank{rank}"), async move {
            if rank % 2 == 0 {
                // Ranks 1 and 3 never show up: the collective hangs.
                let _ = file
                    .write_at_all(&[Region::new(rank as u64 * 1024, 1024)])
                    .await;
            }
        });
    }
    let err = sim.run();
    assert!(err.is_err(), "partial collective must deadlock the run");

    let report = san.finish().expect("report");
    assert_eq!(report.count_of(HazardKind::PartialCollective), 1);
    let h = report
        .hazards
        .iter()
        .find(|h| h.kind == HazardKind::PartialCollective)
        .unwrap();
    assert_eq!(h.file, "coll.out");
    assert_eq!(h.actors, vec![0, 2], "entered ranks");
    assert!(
        h.detail.contains("missing [1, 3]"),
        "absent ranks must be named: {}",
        h.detail
    );
}

fn sanitized(strategy: Strategy) -> SimParams {
    SimParams::builder()
        .procs(6)
        .strategy(strategy)
        .sanitize(true)
        .with_workload(|w| {
            w.queries = 4;
            w.fragments = 16;
            w.min_results = 100;
            w.max_results = 200;
        })
        .build()
        .expect("valid parameters")
}

/// Every shipped strategy — including WW-DS, whose sieve read-back and
/// overlapping block write-backs are exactly what hazards (a) and (b)
/// pattern-match — runs clean under the sanitizer.
#[test]
fn all_strategies_run_clean_under_the_sanitizer() {
    for strategy in Strategy::EXTENDED_SET {
        let report = try_run(&sanitized(strategy)).expect("run completes and verifies");
        let san = report
            .sanitizer
            .as_ref()
            .expect("sanitize=true yields a report");
        assert!(
            san.is_clean(),
            "{strategy}: sanitizer flagged a verified-correct run: {:?}",
            san.hazards
        );
    }
}

/// WW-DS with a worker crash and recovery: repair rewrites overlap the
/// crashed worker's committed work, all under locks and syncs — still
/// clean.
#[test]
fn ww_ds_under_fault_injection_is_clean() {
    let mut p = sanitized(Strategy::WwSieve);
    p.write_every_n_queries = 2;
    p.faults = FaultParams {
        worker_crashes: vec![(2, SimTime::from_millis(40))],
        heartbeat_interval: SimTime::from_millis(50),
        detection_timeout: SimTime::from_millis(400),
        ..FaultParams::default()
    };
    let report = try_run(&p).expect("run recovers and verifies");
    let faults = report.faults.as_ref().expect("fault report");
    assert_eq!(faults.crashes, 1, "the crash must actually have happened");
    let san = report.sanitizer.as_ref().expect("sanitizer report");
    assert!(san.is_clean(), "recovery I/O flagged: {:?}", san.hazards);
}

/// The replicated faceoff: every strategy at r=3 over 4 failure domains
/// with one domain lost for good mid-run and background scrub on.
/// Failure detection, re-replication, and scrub traffic interleave with
/// foreground I/O — all of it must stay hazard-free, verified, and
/// lossless.
#[test]
fn replicated_faceoff_with_domain_outage_is_clean() {
    use s3asim::DomainOutage;
    for strategy in Strategy::EXTENDED_SET {
        let mut p = sanitized(strategy);
        p.testbed.pvfs.replicas = 3;
        p.testbed.pvfs.write_quorum = 2;
        p.testbed.pvfs.failure_domains = 4;
        p.testbed.pvfs.scrub_interval = SimTime::from_millis(50);
        p.faults = FaultParams {
            domain_outages: vec![DomainOutage {
                domain: 2,
                from: SimTime::from_millis(40),
                until: SimTime::from_secs(1_000_000),
            }],
            detection_timeout: SimTime::from_millis(20),
            max_io_retries: 4,
            io_retry_backoff: SimTime::from_millis(1),
            ..FaultParams::default()
        };
        let report = try_run(&p).unwrap_or_else(|e| panic!("{strategy}: {e}"));
        let san = report.sanitizer.as_ref().expect("sanitizer report");
        assert!(
            san.is_clean(),
            "{strategy}: replicated recovery I/O flagged: {:?}",
            san.hazards
        );
        assert_eq!(report.fs.lost_blocks, 0, "{strategy}: blocks lost");
        assert!(
            report.fs.repaired_blocks > 0,
            "{strategy}: nothing repaired"
        );
        let f = report.faults.as_ref().expect("fault report");
        assert_eq!(
            f.servers_declared_dead, 4,
            "{strategy}: 4 servers in domain 2"
        );
    }
}

/// Arming the sanitizer must not change what it watches: every report
/// number is identical with it on and off.
#[test]
fn sanitizer_does_not_perturb_the_run() {
    for strategy in Strategy::EXTENDED_SET {
        let on: RunReport = try_run(&sanitized(strategy)).expect("run completes");
        let mut params = sanitized(strategy);
        params.sanitize = false;
        let off = try_run(&params).expect("run completes");
        assert!(on.sanitizer.is_some() && off.sanitizer.is_none());
        assert_eq!(on.overall, off.overall, "{strategy}: overall changed");
        assert_eq!(on.csv_row(), off.csv_row(), "{strategy}: report changed");
        assert_eq!(on.master, off.master, "{strategy}: master phases changed");
        assert_eq!(on.workers, off.workers, "{strategy}: worker phases changed");
        assert_eq!(on.fs, off.fs, "{strategy}: fs stats changed");
        assert_eq!(on.mpi, off.mpi, "{strategy}: mpi stats changed");
        assert_eq!(on.engine, off.engine, "{strategy}: engine stats changed");
    }
}
