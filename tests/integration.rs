//! Cross-crate integration tests: every strategy, sync mode, and
//! granularity drives the full stack (workload → MPI → S3aSim → MPI-IO →
//! PVFS) and must produce a byte-exact output file.

use s3a_workload::WorkloadParams;
use s3asim::{run, Phase, SimParams, Strategy};

const ALL_STRATEGIES: [Strategy; 5] = [
    Strategy::Mw,
    Strategy::WwPosix,
    Strategy::WwList,
    Strategy::WwColl,
    Strategy::WwCollList,
];

fn small(procs: usize, strategy: Strategy, sync: bool) -> SimParams {
    SimParams {
        procs,
        strategy,
        query_sync: sync,
        workload: WorkloadParams {
            queries: 5,
            fragments: 12,
            min_results: 60,
            max_results: 120,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    }
}

#[test]
fn every_strategy_and_sync_mode_is_exact() {
    for strategy in ALL_STRATEGIES {
        for sync in [false, true] {
            let r = run(&small(6, strategy, sync));
            r.verify()
                .unwrap_or_else(|e| panic!("{strategy} sync={sync}: {e}"));
            assert!(r.overall.as_nanos() > 0);
        }
    }
}

#[test]
fn minimum_cluster_two_processes() {
    for strategy in ALL_STRATEGIES {
        let r = run(&small(2, strategy, true));
        r.verify().unwrap_or_else(|e| panic!("{strategy}: {e}"));
    }
}

#[test]
fn more_workers_than_tasks() {
    // 1 query x 4 fragments = 4 tasks for 11 workers: most workers never
    // compute, but all must participate in barriers/collectives.
    let mut p = small(12, Strategy::WwColl, true);
    p.workload.queries = 1;
    p.workload.fragments = 4;
    let r = run(&p);
    r.verify().expect("exact output");
    let active = r.worker_stats.iter().filter(|s| s.tasks > 0).count();
    assert!(active <= 4, "only 4 tasks exist, {active} workers computed");
}

#[test]
fn zero_result_queries_are_handled() {
    // min_results can legally produce tasks with no hits on most fragments.
    let mut p = small(4, Strategy::WwList, false);
    p.workload.min_results = 1;
    p.workload.max_results = 3;
    let r = run(&p);
    r.verify().expect("exact output");
}

#[test]
fn write_granularity_modes_agree_on_bytes() {
    let mut totals = Vec::new();
    for gran in [1usize, 2, 100] {
        let mut p = small(6, Strategy::WwList, false);
        p.write_every_n_queries = gran;
        let r = run(&p);
        r.verify().unwrap_or_else(|e| panic!("gran={gran}: {e}"));
        totals.push(r.covered_bytes);
    }
    assert!(totals.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn strategies_write_identical_byte_totals() {
    let mut totals = Vec::new();
    for strategy in ALL_STRATEGIES {
        let r = run(&small(8, strategy, false));
        totals.push((strategy, r.covered_bytes));
    }
    for w in totals.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "{} and {} disagree on output size",
            w[0].0, w[1].0
        );
    }
}

#[test]
fn mw_workers_never_write() {
    let r = run(&small(6, Strategy::Mw, false));
    r.verify().expect("exact output");
    for (i, st) in r.worker_stats.iter().enumerate() {
        assert_eq!(st.regions_written, 0, "worker {i} wrote under MW");
        assert_eq!(st.bytes_written, 0);
    }
    // The master's I/O phase carries the writes instead.
    assert!(r.master.get(Phase::Io) > s3a_des::SimTime::ZERO);
}

#[test]
fn ww_workers_write_exactly_the_workload() {
    let r = run(&small(6, Strategy::WwList, false));
    r.verify().expect("exact output");
    let total: u64 = r.worker_stats.iter().map(|s| s.bytes_written).sum();
    assert_eq!(total, r.expected_bytes);
    assert_eq!(r.master.get(Phase::Io), s3a_des::SimTime::ZERO);
}

#[test]
fn all_tasks_distributed_exactly_once() {
    let p = small(7, Strategy::WwPosix, false);
    let tasks = p.workload.queries * p.workload.fragments;
    let r = run(&p);
    let done: usize = r.worker_stats.iter().map(|s| s.tasks).sum();
    assert_eq!(done, tasks);
}

#[test]
fn query_sync_never_speeds_things_up() {
    for strategy in [Strategy::Mw, Strategy::WwPosix, Strategy::WwList] {
        let fast = run(&small(8, strategy, false));
        let slow = run(&small(8, strategy, true));
        assert!(
            slow.overall >= fast.overall,
            "{strategy}: sync {} < no-sync {}",
            slow.overall,
            fast.overall
        );
    }
}

#[test]
fn faster_compute_never_slows_the_whole_run_down_much() {
    // I/O load is identical; compute shrinks. Allow a small margin for
    // queueing effects (the paper saw slight I/O-phase increases).
    for strategy in [Strategy::WwList, Strategy::Mw] {
        let mut a = small(8, strategy, false);
        a.compute_speed = 1.0;
        let mut b = small(8, strategy, false);
        b.compute_speed = 8.0;
        let slow = run(&a).overall.as_secs_f64();
        let fast = run(&b).overall.as_secs_f64();
        assert!(
            fast <= slow * 1.15,
            "{strategy}: speed 8x gave {fast:.2}s vs {slow:.2}s at 1x"
        );
    }
}

#[test]
fn phase_breakdowns_sum_to_overall() {
    // Each rank's stacked phases account for its own lifetime; ranks exit
    // the final (dissemination) barrier within network-latency skew of the
    // overall end time.
    let skew = s3a_des::SimTime::from_millis(5);
    let r = run(&small(6, Strategy::WwColl, true));
    for (i, w) in r.workers.iter().enumerate() {
        let total = w.total();
        assert!(
            total <= r.overall && total + skew >= r.overall,
            "worker {i} phase sum {total} vs overall {}",
            r.overall
        );
    }
    let m = r.master.total();
    assert!(m <= r.overall && m + skew >= r.overall);
}

#[test]
fn single_fragment_database() {
    let mut p = small(4, Strategy::WwList, false);
    p.workload.fragments = 1;
    let r = run(&p);
    r.verify().expect("exact output");
}

#[test]
fn many_small_batches_with_collective() {
    let mut p = small(5, Strategy::WwColl, false);
    p.workload.queries = 8;
    p.write_every_n_queries = 1;
    let r = run(&p);
    r.verify().expect("exact output");
}

#[test]
fn collective_aggregator_extremes() {
    for cb in [1usize, 2, 1000] {
        let mut p = small(6, Strategy::WwColl, false);
        p.cb_nodes = cb;
        let r = run(&p);
        r.verify().unwrap_or_else(|e| panic!("cb_nodes={cb}: {e}"));
    }
}

#[test]
fn tiny_cb_buffer_forces_many_rounds() {
    let mut p = small(5, Strategy::WwColl, false);
    p.cb_buffer_size = 4 * 1024;
    let r = run(&p);
    r.verify().expect("exact output");
}

#[test]
fn single_server_file_system() {
    let mut p = small(5, Strategy::WwList, false);
    p.testbed.pvfs.servers = 1;
    let r = run(&p);
    r.verify().expect("exact output");
}

#[test]
fn one_rank_per_node_configuration() {
    let mut p = small(6, Strategy::WwPosix, false);
    p.testbed.mpi.ranks_per_node = 1;
    let r = run(&p);
    r.verify().expect("exact output");
}

#[test]
fn query_segmentation_is_exact_for_every_strategy() {
    for strategy in ALL_STRATEGIES {
        let mut p = small(6, strategy, false);
        p.segmentation = s3asim::Segmentation::Query;
        p.workload.database_bytes = 64 * 1024 * 1024; // fits memory: no reads
        let r = run(&p);
        r.verify().unwrap_or_else(|e| panic!("{strategy}: {e}"));
        assert_eq!(r.fs.bytes_read, 0, "{strategy}: unexpected database reads");
    }
}

#[test]
fn query_segmentation_bytes_match_database_segmentation() {
    let db = run(&small(6, Strategy::WwList, false));
    let mut p = small(6, Strategy::WwList, false);
    p.segmentation = s3asim::Segmentation::Query;
    let q = run(&p);
    q.verify().expect("exact output");
    assert_eq!(db.covered_bytes, q.covered_bytes);
}

#[test]
fn oversized_database_forces_reload_reads() {
    let mut p = small(4, Strategy::WwList, false);
    p.segmentation = s3asim::Segmentation::Query;
    p.testbed.worker_memory = 8 * 1024 * 1024;
    p.workload.database_bytes = 24 * 1024 * 1024; // 16 MiB reload per query
    let r = run(&p);
    r.verify().expect("exact output");
    let expected_reads = (p.workload.queries as u64) * 16 * 1024 * 1024;
    assert_eq!(r.fs.bytes_read, expected_reads);
    // A fitting database must beat the thrashing one end-to-end.
    let mut fits = p.clone();
    fits.workload.database_bytes = 4 * 1024 * 1024;
    let f = run(&fits);
    assert!(f.overall < r.overall);
    assert_eq!(f.fs.bytes_read, 0);
}

#[test]
fn query_segmentation_parallelism_capped_by_query_count() {
    // 3 queries, 10 workers: at most 3 workers ever compute.
    let mut p = small(11, Strategy::WwList, false);
    p.segmentation = s3asim::Segmentation::Query;
    p.workload.queries = 3;
    let r = run(&p);
    r.verify().expect("exact output");
    let active = r.worker_stats.iter().filter(|s| s.tasks > 0).count();
    assert!(
        active <= 3,
        "{active} workers computed for 3 whole-query tasks"
    );
}

#[test]
fn mw_nonblocking_io_is_exact_and_not_slower() {
    let blocking = run(&small(8, Strategy::Mw, false));
    let mut p = small(8, Strategy::Mw, false);
    p.mw_nonblocking_io = true;
    let nonblocking = run(&p);
    nonblocking.verify().expect("exact output");
    assert!(
        nonblocking.overall <= blocking.overall,
        "nonblocking master I/O should not be slower ({} vs {})",
        nonblocking.overall,
        blocking.overall
    );
}

#[test]
fn trace_records_consistent_timeline() {
    let mut p = small(6, Strategy::WwList, true);
    p.trace = true;
    let r = run(&p);
    r.verify().expect("exact output");
    let trace = r.trace.as_ref().expect("tracing was enabled");
    assert!(!trace.events().is_empty());
    // Trace totals agree with the phase breakdown for every rank/phase.
    for (rank, bd) in
        std::iter::once((0, &r.master)).chain(r.workers.iter().enumerate().map(|(i, w)| (i + 1, w)))
    {
        for ph in s3asim::PHASES {
            if ph == Phase::Other {
                continue; // Other is derived, not traced
            }
            assert_eq!(
                trace.rank_phase_total(rank, ph),
                bd.get(ph),
                "rank {rank} phase {ph} trace/breakdown mismatch"
            );
        }
    }
    // Events never extend past the overall end.
    for e in trace.events() {
        assert!(e.end <= r.overall);
    }
    // The Gantt and CSV renderers produce something sane.
    let chart = trace.gantt(p.procs, 60);
    assert!(chart.contains("legend"));
    let csv = trace.to_csv();
    assert_eq!(csv.lines().count(), trace.events().len() + 1);
}

#[test]
fn trace_disabled_by_default() {
    let r = run(&small(4, Strategy::WwList, false));
    assert!(r.trace.is_none());
}

#[test]
fn commit_log_covers_all_batches_and_bytes() {
    for strategy in ALL_STRATEGIES {
        let p = small(6, strategy, false);
        let batches = p.workload.queries; // granularity 1
        let r = run(&p);
        assert_eq!(
            r.commits.entries().len(),
            batches,
            "{strategy}: wrong commit count"
        );
        let committed: u64 = r.commits.entries().iter().map(|e| e.bytes).sum();
        assert_eq!(committed, r.expected_bytes, "{strategy}: commit bytes");
        // All commits happen within the run; everything is durable at end.
        for e in r.commits.entries() {
            assert!(e.committed_at <= r.overall);
        }
        assert_eq!(
            r.commits.resumable_queries_at(r.overall),
            p.workload.queries
        );
    }
}

#[test]
fn finer_write_granularity_lowers_expected_crash_loss() {
    let cost = |gran: usize| {
        let mut p = small(8, Strategy::WwList, false);
        p.workload.queries = 12;
        p.write_every_n_queries = gran;
        let r = run(&p);
        s3asim::expected_lost_time(&r.commits, r.overall).as_secs_f64()
    };
    let fine = cost(1);
    let coarse = cost(12); // write-at-end: one commit at the very end
    assert!(
        fine < coarse,
        "per-query writes ({fine:.2}s expected loss) should beat \
         write-at-end ({coarse:.2}s)"
    );
}

#[test]
fn report_csv_row_matches_header_arity() {
    let r = run(&small(4, Strategy::WwList, false));
    let header = r.csv_header();
    let row = r.csv_row();
    assert_eq!(
        header.split(',').count(),
        row.split(',').count(),
        "CSV header and row column counts differ"
    );
}
