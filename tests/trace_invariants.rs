//! Invariants of the request-level observability layer: recorded spans
//! form sane timelines, the Chrome export round-trips through a JSON
//! parser, and recording never perturbs the simulation it observes.

use s3asim::{export_chrome, export_metrics_csv, try_run, RunReport, SimParams, Strategy, Track};

fn observed(strategy: Strategy) -> SimParams {
    SimParams::builder()
        .procs(6)
        .strategy(strategy)
        .trace(true)
        .observe(true)
        .with_workload(|w| {
            w.queries = 4;
            w.fragments = 16;
            w.min_results = 100;
            w.max_results = 200;
        })
        .build()
        .expect("valid parameters")
}

fn run_observed(strategy: Strategy) -> RunReport {
    try_run(&observed(strategy)).expect("run completes and verifies")
}

/// The coarse per-rank phase timeline must tile: a rank is in at most one
/// phase at a time, so sorted by start, each interval begins at or after
/// the previous one ends.
#[test]
fn phase_intervals_never_overlap_per_rank() {
    for strategy in Strategy::PAPER_SET {
        let report = run_observed(strategy);
        let trace = report.trace.as_ref().expect("tracing enabled");
        for rank in 0..report.procs {
            let mut spans: Vec<_> = trace
                .events()
                .iter()
                .filter(|e| e.rank == rank)
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort();
            for pair in spans.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1,
                    "{strategy} rank {rank}: phase intervals overlap: {pair:?}"
                );
            }
        }
    }
}

/// Observability spans live on real tracks and carry well-formed
/// intervals; request spans appear for every strategy, collective rounds
/// only for WW-Coll.
#[test]
fn obs_spans_are_well_formed() {
    for strategy in Strategy::PAPER_SET {
        let report = run_observed(strategy);
        let obs = report.obs.as_ref().expect("observability enabled");
        assert!(!obs.spans.is_empty(), "{strategy}: no spans recorded");
        for s in &obs.spans {
            assert!(s.end > s.start, "{strategy}: empty span {}", s.name);
        }
        let has_writes = obs.spans.iter().any(|s| s.name == "pvfs.write");
        assert!(has_writes, "{strategy}: no pvfs.write request spans");
        let rounds = obs.spans.iter().filter(|s| s.name == "coll.round").count();
        if strategy == Strategy::WwColl {
            assert!(rounds > 0, "WW-Coll: no collective exchange rounds");
            assert_eq!(obs.metrics.counter("coll.rounds"), rounds as u64);
        } else {
            assert_eq!(rounds, 0, "{strategy}: unexpected collective rounds");
        }
        assert_eq!(
            obs.metrics.counter("pvfs.write_requests"),
            obs.spans.iter().filter(|s| s.name == "pvfs.write").count() as u64,
            "{strategy}: write counter disagrees with write spans"
        );
        // Every queue-depth series steps by ±1 and returns to zero.
        for track in obs.tracks() {
            if !matches!(track, Track::Server(_)) {
                continue;
            }
            let mut depth = 0i64;
            for s in &obs.samples {
                if s.track == track && s.name == "pvfs.queue_depth" {
                    let v = s.value as i64;
                    assert!(
                        (v - depth).abs() == 1,
                        "{strategy} {track:?}: queue depth jumped {depth} -> {v}"
                    );
                    depth = v;
                }
            }
            assert_eq!(depth, 0, "{strategy} {track:?}: queue never drained");
        }
    }
}

/// The Chrome export is valid JSON (checked with an actual parser, not a
/// substring), and within every (pid, tid) track the complete events are
/// sorted by timestamp.
#[test]
fn chrome_export_round_trips_and_is_monotone() {
    use s3asim::ObsReport;

    let reports: Vec<(Strategy, RunReport)> = Strategy::PAPER_SET
        .iter()
        .map(|&s| (s, run_observed(s)))
        .collect();
    let runs: Vec<(&str, &RunReport)> = reports.iter().map(|(s, r)| (s.label(), r)).collect();
    let text = export_chrome(&runs);

    let doc = s3a_obs::json::parse(&text).expect("export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    let mut complete = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph field");
        let pid = e.get("pid").and_then(|v| v.as_num()).expect("pid") as u64;
        let tid = e.get("tid").and_then(|v| v.as_num()).expect("tid") as u64;
        match ph {
            "M" => continue,
            "X" | "C" => {
                let ts = e.get("ts").and_then(|v| v.as_num()).expect("ts");
                let prev = last_ts.insert((pid, tid), ts).unwrap_or(f64::MIN);
                assert!(ts >= prev, "track ({pid},{tid}): ts went backwards");
                if ph == "X" {
                    assert!(e.get("dur").and_then(|v| v.as_num()).is_some());
                    complete += 1;
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // Every recorded span (plus the coarse phase intervals) made it out.
    let spans: usize = reports
        .iter()
        .map(|(_, r)| r.obs.as_ref().map_or(0, |o: &ObsReport| o.spans.len()))
        .sum();
    assert!(
        complete >= spans,
        "export dropped spans: {complete} < {spans}"
    );

    // Determinism: a second capture of the same seeds exports the same
    // bytes, and metrics CSV likewise.
    let again: Vec<(Strategy, RunReport)> = Strategy::PAPER_SET
        .iter()
        .map(|&s| (s, run_observed(s)))
        .collect();
    let runs2: Vec<(&str, &RunReport)> = again.iter().map(|(s, r)| (s.label(), r)).collect();
    assert_eq!(text, export_chrome(&runs2), "chrome export not replayable");
    assert_eq!(
        export_metrics_csv(&runs),
        export_metrics_csv(&runs2),
        "metrics export not replayable"
    );
}

/// Turning the recorder on must not change what it records: all report
/// numbers — virtual times, per-phase breakdowns, fs/mpi counters — are
/// identical with observability on and off.
#[test]
fn observability_does_not_perturb_the_run() {
    for strategy in Strategy::PAPER_SET {
        let on = run_observed(strategy);
        let mut params = observed(strategy);
        params.observe = false;
        let off = try_run(&params).expect("run completes and verifies");
        assert!(on.obs.is_some() && off.obs.is_none());
        assert_eq!(on.overall, off.overall, "{strategy}: overall changed");
        assert_eq!(on.csv_row(), off.csv_row(), "{strategy}: report changed");
        assert_eq!(on.master, off.master, "{strategy}: master phases changed");
        assert_eq!(on.workers, off.workers, "{strategy}: worker phases changed");
        assert_eq!(on.fs, off.fs, "{strategy}: fs stats changed");
        assert_eq!(on.mpi, off.mpi, "{strategy}: mpi stats changed");
        assert_eq!(on.engine, off.engine, "{strategy}: engine stats changed");
    }
}
