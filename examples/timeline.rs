//! Visualize where every process spends its time — the moral equivalent
//! of the paper's MPE + Jumpshot debugging setup (§3).
//!
//! Renders a text Gantt chart of one small run per strategy: the master's
//! row shows why MW serializes (long I/O stretches while workers wait in
//! data distribution), and the collective's synchronized write phases
//! line up across workers.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use s3asim::{try_run, SimParams, Strategy};

fn main() {
    let procs = 6;
    for strategy in [Strategy::Mw, Strategy::WwList, Strategy::WwColl] {
        let params = SimParams::builder()
            .procs(procs)
            .strategy(strategy)
            .trace(true)
            .with_workload(|w| {
                w.queries = 4;
                w.fragments = 12;
                w.min_results = 150;
                w.max_results = 250;
            })
            .build()
            .expect("valid parameters");
        let report = try_run(&params).expect("run completes and verifies");
        let trace = report.trace.as_ref().expect("tracing enabled");
        println!(
            "=== {strategy} — {:.2}s simulated, {} trace events ===",
            report.overall.as_secs_f64(),
            trace.events().len()
        );
        print!("{}", trace.gantt(procs, 96));
        println!();
    }
    println!("(export machine-readable timelines with Trace::to_csv)");
}
