//! Visualize where every process spends its time — the moral equivalent
//! of the paper's MPE + Jumpshot debugging setup (§3).
//!
//! Renders a text Gantt chart of one small run per strategy: the master's
//! row shows why MW serializes (long I/O stretches while workers wait in
//! data distribution), and the collective's synchronized write phases
//! line up across workers.
//!
//! Alongside the text chart it captures the request-level observability
//! recording (`SimParams::observe`) and exports a Chrome `trace_event`
//! JSON — the same timelines, but zoomable, with per-request PVFS spans
//! and collective exchange rounds underneath the coarse phases.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use s3asim::{export_chrome, export_metrics_csv, try_run, RunReport, SimParams, Strategy};

fn main() {
    let procs = 6;
    let strategies = [Strategy::Mw, Strategy::WwList, Strategy::WwColl];
    let mut reports: Vec<RunReport> = Vec::new();
    for strategy in strategies {
        let params = SimParams::builder()
            .procs(procs)
            .strategy(strategy)
            .trace(true)
            .observe(true)
            .with_workload(|w| {
                w.queries = 4;
                w.fragments = 12;
                w.min_results = 150;
                w.max_results = 250;
            })
            .build()
            .expect("valid parameters");
        let report = try_run(&params).expect("run completes and verifies");
        let trace = report.trace.as_ref().expect("tracing enabled");
        println!(
            "=== {strategy} — {:.2}s simulated, {} trace events ===",
            report.overall.as_secs_f64(),
            trace.events().len()
        );
        print!("{}", trace.gantt(procs, 96));
        println!();
        reports.push(report);
    }
    let runs: Vec<(&str, &RunReport)> =
        strategies.iter().map(|s| s.label()).zip(&reports).collect();
    let _ = std::fs::create_dir_all("results");
    for (path, contents) in [
        ("results/timeline_trace.json", export_chrome(&runs)),
        ("results/timeline_metrics.csv", export_metrics_csv(&runs)),
    ] {
        match std::fs::write(path, contents) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    println!("(export machine-readable timelines with Trace::to_csv;");
    println!(" open results/timeline_trace.json in chrome://tracing)");
}
