//! Visualize where every process spends its time — the moral equivalent
//! of the paper's MPE + Jumpshot debugging setup (§3).
//!
//! Renders a text Gantt chart of one small run per strategy: the master's
//! row shows why MW serializes (long I/O stretches while workers wait in
//! data distribution), and the collective's synchronized write phases
//! line up across workers.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use s3a_workload::WorkloadParams;
use s3asim::{run, SimParams, Strategy};

fn main() {
    let procs = 6;
    for strategy in [Strategy::Mw, Strategy::WwList, Strategy::WwColl] {
        let params = SimParams {
            procs,
            strategy,
            trace: true,
            workload: WorkloadParams {
                queries: 4,
                fragments: 12,
                min_results: 150,
                max_results: 250,
                ..WorkloadParams::default()
            },
            ..SimParams::default()
        };
        let report = run(&params);
        report.verify().expect("exact output");
        let trace = report.trace.as_ref().expect("tracing enabled");
        println!(
            "=== {strategy} — {:.2}s simulated, {} trace events ===",
            report.overall.as_secs_f64(),
            trace.events().len()
        );
        print!("{}", trace.gantt(procs, 96));
        println!();
    }
    println!("(export machine-readable timelines with Trace::to_csv)");
}
