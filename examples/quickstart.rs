//! Quickstart: simulate one parallel sequence search and inspect where
//! the time goes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use s3asim::{try_run, SimParams, Strategy};

fn main() {
    // 16 MPI processes (1 master + 15 workers) searching the paper's
    // default workload — 20 queries against a 128-fragment NT-like
    // database, ~208 MB of results — writing with individual list I/O.
    let params = SimParams::builder()
        .procs(16)
        .strategy(Strategy::WwList)
        .build()
        .expect("valid parameters");

    // Every run is verifiable: each result byte lands in the output file
    // exactly once, contiguously, and flushed to disk — `try_run` checks
    // this before returning the report.
    let report = try_run(&params).expect("run completes and verifies");

    println!("{}", report.phase_table());
    println!(
        "output: {:.1} MB in {} file-system requests ({} regions), {} MPI messages",
        report.covered_bytes as f64 / 1e6,
        report.fs.requests,
        report.fs.regions,
        report.mpi.messages,
    );
    println!(
        "simulated {:.2}s of cluster time ({} engine events)",
        report.overall.as_secs_f64(),
        report.engine.events,
    );
}
