//! Build a custom workload: a protein-style database (short sequences,
//! tight length distribution) searched by a large query batch, written in
//! groups of queries — exercising S3aSim's input knobs the way §3 of the
//! paper describes (custom box histograms, result-count bounds, write
//! granularity).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use s3a_workload::{Box, BoxHistogram, Workload, WorkloadParams};
use s3asim::{try_run, SimParams, Strategy};

fn main() {
    // Protein sequences are far shorter than nucleotide ones: median a few
    // hundred residues, tail around a few thousand.
    let protein_db = BoxHistogram::new(vec![
        Box {
            lo: 50,
            hi: 200,
            weight: 0.35,
        },
        Box {
            lo: 200,
            hi: 500,
            weight: 0.40,
        },
        Box {
            lo: 500,
            hi: 1500,
            weight: 0.20,
        },
        Box {
            lo: 1500,
            hi: 8000,
            weight: 0.05,
        },
    ]);

    let workload = WorkloadParams {
        queries: 64,   // a big batch of newly sequenced proteins
        fragments: 64, // database segmented across 64 fragments
        query_hist: protein_db.clone(),
        db_hist: protein_db,
        min_results: 200, // hits per query across the database
        max_results: 600,
        min_result_size: 96,
        database_bytes: 512 * 1024 * 1024, // a small protein database
        seed: 7,
    };

    // Inspect the generated workload before running anything.
    let preview = Workload::generate(&workload);
    println!(
        "workload: {} queries x {} fragments, {} hits, {:.1} MB of results",
        preview.queries.len(),
        workload.fragments,
        preview.total_hits(),
        preview.total_bytes() as f64 / 1e6
    );

    // Write results in groups of 8 queries (mpiBLAST 1.4's "every n
    // queries" mode) instead of after every query.
    for write_every in [1usize, 8, 64] {
        let params = SimParams::builder()
            .procs(24)
            .strategy(Strategy::WwList)
            .write_every_n_queries(write_every)
            .workload(workload.clone())
            .build()
            .expect("valid parameters");
        let r = try_run(&params).expect("run completes and verifies");
        println!(
            "write every {:>2} queries: overall {:>7.2}s, {} fs requests, {} syncs",
            write_every,
            r.overall.as_secs_f64(),
            r.fs.requests,
            r.fs.syncs
        );
    }

    println!(
        "\ncoarser write granularity trades checkpoint/resume opportunities\n\
         (the reason mpiBLAST 1.4 writes frequently) for fewer sync storms."
    );
}
