//! Query segmentation vs. database segmentation — the choice the paper's
//! introduction argues has already been decided by database growth.
//!
//! Query segmentation replicates the database and splits the queries:
//! once the database no longer fits a worker's memory, every query
//! re-streams the overflow from the file system, and parallelism is
//! capped by the query count. Database segmentation splits the database
//! instead, so the aggregate memory of the cluster holds it.
//!
//! ```sh
//! cargo run --release --example segmentation_tradeoff
//! ```

use s3asim::{try_run, Phase, Segmentation, SimParams, Strategy};

fn main() {
    let procs = 32;
    println!(
        "Segmentation trade-off: {procs} processes, 1 GiB worker memory,\n\
         paper workload (20 queries), WW-List writes\n"
    );
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>14}",
        "configuration", "overall", "compute", "i/o phase", "db reloaded"
    );

    for (label, seg, db_gib) in [
        ("db-seg, 1 GiB db", Segmentation::Database, 1u64),
        ("db-seg, 4 GiB db", Segmentation::Database, 4),
        ("query-seg, 1 GiB db", Segmentation::Query, 1),
        ("query-seg, 4 GiB db", Segmentation::Query, 4),
    ] {
        let params = SimParams::builder()
            .procs(procs)
            .strategy(Strategy::WwList)
            .segmentation(seg)
            .with_workload(|w| w.database_bytes = db_gib * 1024 * 1024 * 1024)
            .build()
            .expect("valid parameters");
        let r = try_run(&params).expect("run completes and verifies");
        println!(
            "{:<22} {:>9.1}s {:>9.1}s {:>11.1}s {:>11.1} GB",
            label,
            r.overall.as_secs_f64(),
            r.worker_phase_secs(Phase::Compute),
            r.worker_phase_secs(Phase::Io),
            r.fs.bytes_read as f64 / 1e9,
        );
    }

    println!(
        "\nWith the database over memory, query segmentation re-reads the\n\
         overflow for every query (the \"repeated I/O\" of §1) — database\n\
         segmentation fits the database in aggregate memory and never reads."
    );
}
