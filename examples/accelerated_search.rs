//! The paper's motivating scenario: search is getting faster (multicore,
//! FPGAs, better heuristics like BLAT/SSAHA/PatternHunter) while I/O is
//! not. How does each I/O strategy cope as compute accelerates?
//!
//! Sweeps the compute-speed multiplier at a fixed process count and
//! reports how much of the speedup each strategy actually delivers
//! end-to-end — reproducing the paper's observation that the MW strategy
//! gains almost nothing from a 25× faster search engine while individual
//! worker-writing strategies keep most of it.
//!
//! ```sh
//! cargo run --release --example accelerated_search
//! ```

use s3asim::{try_run, SimParams, Strategy};

fn main() {
    let procs = 32;
    let speeds = [1.0, 4.0, 16.0];
    let strategies = [Strategy::Mw, Strategy::WwPosix, Strategy::WwList];

    println!("Accelerated-search study: {procs} processes, paper workload");
    println!("(times in simulated seconds; 'kept' = fraction of the ideal");
    println!(" speedup retained end-to-end)\n");

    print!("{:<12}", "strategy");
    for s in speeds {
        print!(" {:>11}", format!("speed {s}x"));
    }
    println!(" {:>8}", "kept");

    for strategy in strategies {
        let mut times = Vec::new();
        for speed in speeds {
            let params = SimParams::builder()
                .procs(procs)
                .strategy(strategy)
                .compute_speed(speed)
                .build()
                .expect("valid parameters");
            let r = try_run(&params).expect("run completes and verifies");
            times.push(r.overall.as_secs_f64());
        }
        // Ideal: compute shrinks by speeds ratio; "kept" compares achieved
        // end-to-end speedup against the compute-phase speedup.
        let achieved = times[0] / times[times.len() - 1];
        let ideal = speeds[speeds.len() - 1] / speeds[0];
        print!("{:<12}", strategy.label());
        for t in &times {
            print!(" {:>10.2}s", t);
        }
        println!(" {:>7.0}%", 100.0 * achieved.ln().max(0.0) / ideal.ln());
    }

    println!(
        "\nAs in the paper: faster search hardware/algorithms make the I/O\n\
         strategy decisive — the master-writing bottleneck swallows the gains."
    );
}
