//! Compare every result-writing strategy on the same cluster and
//! workload — the core experiment of the paper, at one process count.
//!
//! ```sh
//! cargo run --release --example strategy_faceoff [procs] [--sync]
//! ```

use s3asim::{default_threads, run_batch, Phase, SimParams, Strategy};

const ALL: [Strategy; 6] = [
    Strategy::Mw,
    Strategy::WwPosix,
    Strategy::WwList,
    Strategy::WwColl,
    Strategy::WwCollList,
    Strategy::WwSieve,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let procs: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(32);
    let sync = args.iter().any(|a| a == "--sync");

    println!(
        "Strategy face-off: {procs} processes, query sync {}, paper workload\n",
        if sync { "ON" } else { "off" }
    );
    println!(
        "{:<12} {:>9} {:>8} {:>8} {:>8} {:>8}  relative",
        "strategy", "overall", "compute", "i/o", "waiting", "sync"
    );

    // One batch across the thread pool: each strategy runs as its own
    // isolated simulation, and reports come back in input order.
    let params: Vec<SimParams> = ALL
        .iter()
        .map(|&strategy| {
            SimParams::builder()
                .procs(procs)
                .strategy(strategy)
                .query_sync(sync)
                .build()
                .expect("valid parameters")
        })
        .collect();
    let reports = run_batch(&params, default_threads()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let results: Vec<_> = ALL.into_iter().zip(reports).collect();

    let best = results
        .iter()
        .map(|(_, r)| r.overall.as_secs_f64())
        .fold(f64::INFINITY, f64::min);

    for (strategy, r) in &results {
        let t = r.overall.as_secs_f64();
        let bar = "#".repeat(((t / best) * 12.0).round() as usize);
        println!(
            "{:<12} {:>8.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s  {bar}",
            strategy.label(),
            t,
            r.worker_phase_secs(Phase::Compute),
            r.worker_phase_secs(Phase::Io),
            r.worker_phase_secs(Phase::DataDistribution),
            r.worker_phase_secs(Phase::Sync),
        );
    }

    let (winner, _) = results
        .iter()
        .min_by(|a, b| a.1.overall.cmp(&b.1.overall))
        .expect("nonempty");
    println!("\nfastest strategy at {procs} processes: {winner}");
}
