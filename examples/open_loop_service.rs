//! Open-loop service mode: clients submit queries over virtual time and
//! the interesting number is per-query tail latency, not batch makespan.
//!
//! ```sh
//! cargo run --release --example open_loop_service
//! ```
//!
//! Two tenants submit a Poisson stream of queries to an 8-process
//! cluster. The master admits each arrival into a bounded queue (or
//! sheds it when the queue is full), schedules fragments by the chosen
//! policy, and the reply is counted when the query's result bytes are
//! durable on disk. The run is fully deterministic: the same seed
//! replays the same arrivals, the same schedule, the same percentiles.

use s3asim::{try_run, ArrivalProcess, SchedPolicy, ServiceParams, SimParams, SimTime, Strategy};

fn main() {
    for policy in SchedPolicy::ALL {
        let params = SimParams::builder()
            .procs(8)
            .strategy(Strategy::WwList)
            .with_workload(|w| {
                w.queries = 48;
                w.fragments = 8;
                w.min_results = 50;
                w.max_results = 400;
            })
            .service(ServiceParams {
                arrivals: ArrivalProcess::Poisson { rate: 4.0 },
                policy,
                tenants: 2,
                queue_capacity: 12,
                arrival_seed: 11,
                poll_interval: SimTime::from_millis(5),
            })
            .build()
            .expect("valid parameters");

        let report = try_run(&params).expect("run completes and verifies");
        let svc = report.service.as_ref().expect("service report");

        println!(
            "{} over {}: offered {} admitted {} shed {} (queue peak {})",
            svc.policy, svc.arrival, svc.offered, svc.admitted, svc.shed, svc.queue_peak
        );
        println!(
            "  latency p50 {:.3}s  p99 {:.3}s  p999 {:.3}s  max {:.3}s",
            svc.latency.p50.as_secs_f64(),
            svc.latency.p99.as_secs_f64(),
            svc.latency.p999.as_secs_f64(),
            svc.latency.max.as_secs_f64(),
        );
        for (t, stats) in svc.per_tenant.iter().enumerate() {
            println!(
                "  tenant {t}: {} queries, p99 {:.3}s",
                stats.count,
                stats.p99.as_secs_f64()
            );
        }
        println!();
    }
}
