//! # s3a-obs — request-level observability
//!
//! The paper explains each I/O strategy's behaviour through MPE +
//! Jumpshot instrumentation (§3); the coarse per-phase trace in
//! `s3asim::trace` reproduces the Gantt view, but not the request-level
//! story — request counts, per-request latency, aggregator exchange
//! rounds — that dominates noncontiguous-write performance. This crate is
//! the event bus the simulated layers publish that story into:
//!
//! * **Span events** — named virtual-time intervals on a [`Track`] (a
//!   world rank or a PVFS server) with structured numeric arguments, e.g.
//!   one span per PVFS request carrying its full lifecycle breakdown
//!   (issue → wire → server queue → service → ack) or one span per
//!   two-phase collective exchange round.
//! * **Counter samples** — virtual-time series per track, e.g. a server's
//!   request-queue depth or write-back-cache dirty bytes.
//! * **A metrics registry** — counters, gauges, and log₂-bucket
//!   histograms of request latency and message sizes.
//!
//! Everything funnels through an [`ObsSink`], cloned into each layer at
//! setup. The disabled sink holds no state and every publish method
//! early-returns on one `Option` check, so an un-instrumented run does no
//! allocation and no bookkeeping — the zero-cost-when-off guarantee the
//! `des_hot_path` benchmark gate enforces. Recording is pure synchronous
//! bookkeeping in virtual time (no awaits, no timing changes), so a run's
//! simulated results are identical with observability on or off, and the
//! recorded data is deterministic: same seed, same trace, byte for byte.
//!
//! [`ObsSink::finish`] folds the recording into a plain-data
//! [`ObsReport`] (no `Rc`, `Send`) that travels inside `RunReport`
//! through the parallel sweep pool. Exporters live in [`chrome`] (Chrome
//! `trace_event` JSON for `chrome://tracing` / Perfetto) and the report's
//! CSV helpers; [`json`] is a minimal parser used to round-trip-check
//! exported traces.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use s3a_des::SimTime;

pub mod chrome;
pub mod json;

/// The timeline an event belongs to: one track per world rank and one per
/// PVFS server, mirroring the paper's per-process Jumpshot rows plus the
/// server side it could not see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// An MPI world rank (0 = master).
    Rank(usize),
    /// A PVFS server index.
    Server(usize),
}

impl Track {
    /// Stable sort key: all rank tracks, then all server tracks.
    pub fn sort_key(self) -> (u8, usize) {
        match self {
            Track::Rank(r) => (0, r),
            Track::Server(s) => (1, s),
        }
    }
}

/// One named virtual-time interval on a track, with structured numeric
/// arguments (`&'static` names keep the report plain data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The track the interval belongs to.
    pub track: Track,
    /// Event name (e.g. `"pvfs.write"`, `"coll.round"`).
    pub name: &'static str,
    /// Interval start (virtual time).
    pub start: SimTime,
    /// Interval end (virtual time).
    pub end: SimTime,
    /// Structured arguments, in publication order.
    pub args: Vec<(&'static str, u64)>,
}

/// One sample of a virtual-time series (queue depth, dirty bytes, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// The track the series belongs to.
    pub track: Track,
    /// Series name (e.g. `"pvfs.queue_depth"`).
    pub name: &'static str,
    /// Sample time (virtual time).
    pub time: SimTime,
    /// The series value at `time`.
    pub value: u64,
}

/// A log₂-bucket histogram of `u64` observations (latencies in
/// nanoseconds, message sizes in bytes). Bucket `i` counts values whose
/// bit length is `i` (bucket 0 counts zeros), i.e. bucket bounds are
/// `[2^(i-1), 2^i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// `buckets[i]` counts observations with bit length `i`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// The bucket index a value falls into (its bit length).
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Exclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_hi(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) from the log₂
    /// buckets: the upper bound of the bucket holding the nearest-rank
    /// observation, clamped to the observed `[min, max]` range. Within a
    /// bucket the true value is known to a factor of two — adequate for
    /// tail-latency reporting (p50/p99/p999). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest k with cumulative count >= ceil(q*n).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_hi(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Plain-data snapshot of the metrics registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Last-value-wins gauges.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histograms of observed values.
    pub histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsSnapshot {
    /// The value of a counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }
}

/// Everything one run recorded: the event streams plus the metrics
/// snapshot. Plain data (`Send`), so it rides inside `RunReport` across
/// the parallel sweep pool.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Span events, sorted by `(track, start, end, name)`.
    pub spans: Vec<SpanEvent>,
    /// Counter samples, sorted by `(track, time, name)` with publication
    /// order breaking ties (series values at equal times keep their
    /// update order).
    pub samples: Vec<CounterSample>,
    /// The metrics registry at the end of the run.
    pub metrics: MetricsSnapshot,
}

impl ObsReport {
    /// Span events of one track, in time order.
    pub fn track_spans(&self, track: Track) -> impl Iterator<Item = &SpanEvent> {
        self.spans.iter().filter(move |s| s.track == track)
    }

    /// The sorted list of tracks that recorded at least one event.
    pub fn tracks(&self) -> Vec<Track> {
        let mut t: Vec<Track> = self
            .spans
            .iter()
            .map(|s| s.track)
            .chain(self.samples.iter().map(|c| c.track))
            .collect();
        t.sort_by_key(|t| t.sort_key());
        t.dedup();
        t
    }
}

#[derive(Default)]
struct ObsState {
    spans: Vec<SpanEvent>,
    samples: Vec<CounterSample>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Shared publication handle — the event bus. Clone freely; all clones
/// feed one recording. The [`ObsSink::disabled`] variant holds no state
/// and every method early-returns, making un-observed runs free.
#[derive(Clone, Default)]
pub struct ObsSink {
    inner: Option<Rc<RefCell<ObsState>>>,
}

impl ObsSink {
    /// A sink that records events and metrics.
    pub fn recording() -> Self {
        ObsSink {
            inner: Some(Rc::new(RefCell::new(ObsState::default()))),
        }
    }

    /// A sink that drops everything (observability off — zero cost).
    pub fn disabled() -> Self {
        ObsSink { inner: None }
    }

    /// Is this sink recording? Publishers with non-trivial argument
    /// assembly should check this first and skip the work when off.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one span. Empty intervals (`end <= start`) are dropped.
    pub fn span(
        &self,
        track: Track,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, u64)],
    ) {
        if end <= start {
            return;
        }
        if let Some(st) = &self.inner {
            st.borrow_mut().spans.push(SpanEvent {
                track,
                name,
                start,
                end,
                args: args.to_vec(),
            });
        }
    }

    /// Record one counter sample (a point of a virtual-time series).
    pub fn sample(&self, track: Track, name: &'static str, time: SimTime, value: u64) {
        if let Some(st) = &self.inner {
            st.borrow_mut().samples.push(CounterSample {
                track,
                name,
                time,
                value,
            });
        }
    }

    /// Bump a monotonic counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(st) = &self.inner {
            *st.borrow_mut().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Set a last-value-wins gauge.
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(st) = &self.inner {
            st.borrow_mut().gauges.insert(name, value);
        }
    }

    /// Observe one value into a histogram.
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(st) = &self.inner {
            st.borrow_mut()
                .histograms
                .entry(name)
                .or_default()
                .observe(value);
        }
    }

    /// Observe a duration (recorded in nanoseconds).
    pub fn observe_time(&self, name: &'static str, dt: SimTime) {
        self.observe(name, dt.as_nanos());
    }

    /// Extract the recording as a plain-data report, or `None` when the
    /// sink was disabled. Spans are sorted by `(track, start, end,
    /// name)` and samples by `(track, time)` — both stable, so equal keys
    /// keep their deterministic publication order.
    pub fn finish(self) -> Option<ObsReport> {
        self.inner.map(|rc| {
            let st = Rc::try_unwrap(rc)
                .map(RefCell::into_inner)
                .unwrap_or_else(|rc| {
                    let b = rc.borrow();
                    ObsState {
                        spans: b.spans.clone(),
                        samples: b.samples.clone(),
                        counters: b.counters.clone(),
                        gauges: b.gauges.clone(),
                        histograms: b.histograms.clone(),
                    }
                });
            let mut spans = st.spans;
            spans.sort_by(|a, b| {
                (a.track.sort_key(), a.start, a.end, a.name).cmp(&(
                    b.track.sort_key(),
                    b.start,
                    b.end,
                    b.name,
                ))
            });
            let mut samples = st.samples;
            samples.sort_by_key(|c| (c.track.sort_key(), c.time));
            ObsReport {
                spans,
                samples,
                metrics: MetricsSnapshot {
                    counters: st.counters.into_iter().collect(),
                    gauges: st.gauges.into_iter().collect(),
                    histograms: st.histograms.into_iter().collect(),
                },
            }
        })
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = ObsSink::disabled();
        sink.span(Track::Rank(0), "x", t(0), t(1), &[]);
        sink.sample(Track::Server(0), "d", t(0), 1);
        sink.add("c", 1);
        sink.gauge("g", 2);
        sink.observe("h", 3);
        assert!(!sink.is_recording());
        assert!(sink.finish().is_none());
    }

    #[test]
    fn recording_sink_sorts_per_track() {
        let sink = ObsSink::recording();
        sink.span(Track::Server(1), "svc", t(5), t(7), &[("bytes", 10)]);
        sink.span(Track::Rank(0), "phase", t(3), t(4), &[]);
        sink.span(Track::Server(1), "svc", t(1), t(2), &[]);
        let r = sink.finish().expect("recording");
        assert_eq!(r.spans.len(), 3);
        // Rank tracks sort before server tracks; per track, time order.
        assert_eq!(r.spans[0].track, Track::Rank(0));
        assert_eq!(r.spans[1].start, t(1));
        assert_eq!(r.spans[2].start, t(5));
        assert_eq!(r.spans[2].args, vec![("bytes", 10)]);
        assert_eq!(r.tracks(), vec![Track::Rank(0), Track::Server(1)]);
    }

    #[test]
    fn empty_spans_dropped() {
        let sink = ObsSink::recording();
        sink.span(Track::Rank(0), "x", t(2), t(2), &[]);
        sink.span(Track::Rank(0), "x", t(3), t(1), &[]);
        assert!(sink.finish().expect("recording").spans.is_empty());
    }

    #[test]
    fn metrics_fold_into_snapshot() {
        let sink = ObsSink::recording();
        sink.add("reqs", 2);
        sink.add("reqs", 3);
        sink.gauge("window", 4);
        sink.gauge("window", 8);
        sink.observe("lat", 100);
        sink.observe("lat", 300);
        let m = sink.finish().expect("recording").metrics;
        assert_eq!(m.counter("reqs"), 5);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauges, vec![("window", 8)]);
        let h = m.histogram("lat").expect("observed");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 400);
        assert_eq!((h.min, h.max), (100, 300));
        assert!((h.mean() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_lo(1), 1);
        assert_eq!(Histogram::bucket_lo(3), 4);
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4] {
            h.observe(v);
        }
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
    }

    #[test]
    fn quantile_estimates_from_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        // 99 fast observations around 1000 ns, one slow at 1_000_000.
        for _ in 0..99 {
            h.observe(1000);
        }
        h.observe(1_000_000);
        // p50 lands in the 1000-bucket [512, 1024): upper bound 1023.
        assert_eq!(h.quantile(0.5), 1023);
        // p99 is still the 99th fast observation.
        assert_eq!(h.quantile(0.99), 1023);
        // p999 (rank 100 of 100) reaches the slow one; clamped to max.
        assert_eq!(h.quantile(0.999), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
        // Single observation: every quantile is that observation.
        let mut one = Histogram::default();
        one.observe(7);
        assert_eq!(one.quantile(0.5), 7);
        assert_eq!(one.quantile(0.999), 7);
    }

    #[test]
    fn bucket_hi_bounds() {
        assert_eq!(Histogram::bucket_hi(0), 0);
        assert_eq!(Histogram::bucket_hi(1), 1);
        assert_eq!(Histogram::bucket_hi(3), 7);
        assert_eq!(Histogram::bucket_hi(64), u64::MAX);
    }

    #[test]
    fn clones_share_one_recording() {
        let sink = ObsSink::recording();
        let c = sink.clone();
        c.add("x", 1);
        sink.add("x", 1);
        drop(c);
        assert_eq!(sink.finish().expect("recording").metrics.counter("x"), 2);
    }
}
