//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON Array/Object format understood by `chrome://tracing`
//! and Perfetto: `"X"` complete events for spans, `"C"` counter events for
//! virtual-time series, and `"M"` metadata events naming processes and
//! threads. Each exported run becomes two "processes" — one holding a
//! thread (track) per MPI rank, one holding a track per PVFS server — so
//! several runs (e.g. the four strategies) can live side by side in one
//! trace file.
//!
//! Determinism: timestamps are microseconds rendered with exactly three
//! fractional digits using integer math on the underlying nanosecond
//! counts, and events are stably sorted by `(pid, tid, ts, insertion)`,
//! so the same recording always serialises to the same bytes.

use s3a_des::SimTime;

use crate::json::escape;
use crate::{ObsReport, Track};

/// Render a virtual time as Chrome-trace microseconds (`ns / 1000` with
/// three fractional digits), using only integer math so the output is
/// byte-stable across platforms.
pub fn micros(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

struct Event {
    pid: u64,
    tid: u64,
    /// Metadata events sort before timed events on the same track.
    kind: u8,
    ts: u64,
    json: String,
}

/// Builder for one Chrome trace file.
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<Event>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a process (one per run × side, e.g. `"mw ranks"`).
    pub fn meta_process(&mut self, pid: u64, name: &str) {
        self.events.push(Event {
            pid,
            tid: 0,
            kind: 0,
            ts: 0,
            json: format!(
                r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
                escape(name)
            ),
        });
    }

    /// Name a thread (track) inside a process (e.g. `"rank 3"`).
    pub fn meta_thread(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(Event {
            pid,
            tid,
            kind: 0,
            ts: 0,
            json: format!(
                r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
                escape(name)
            ),
        });
    }

    /// An `"X"` complete event: a named interval with numeric arguments.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, u64)],
    ) {
        let dur = SimTime::from_nanos(end.as_nanos().saturating_sub(start.as_nanos()));
        let mut body = format!(
            r#"{{"name":"{}","ph":"X","pid":{pid},"tid":{tid},"ts":{},"dur":{}"#,
            escape(name),
            micros(start),
            micros(dur),
        );
        if !args.is_empty() {
            body.push_str(r#","args":{"#);
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(r#""{}":{v}"#, escape(k)));
            }
            body.push('}');
        }
        body.push('}');
        self.events.push(Event {
            pid,
            tid,
            kind: 1,
            ts: start.as_nanos(),
            json: body,
        });
    }

    /// A `"C"` counter event: one sample of a virtual-time series.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, time: SimTime, value: u64) {
        self.events.push(Event {
            pid,
            tid,
            kind: 1,
            ts: time.as_nanos(),
            json: format!(
                r#"{{"name":"{}","ph":"C","pid":{pid},"tid":{tid},"ts":{},"args":{{"value":{value}}}}}"#,
                escape(name),
                micros(time),
            ),
        });
    }

    /// Export one run's observability report (plus its coarse per-rank
    /// phase intervals) under a pid pair derived from `pid_base`: ranks at
    /// `pid_base + 1`, PVFS servers at `pid_base + 2`. Use a distinct
    /// `pid_base` (e.g. `run_index * 10`) and `label` per run.
    pub fn export_report(
        &mut self,
        pid_base: u64,
        label: &str,
        obs: &ObsReport,
        phases: &[(usize, &'static str, SimTime, SimTime)],
    ) {
        let rank_pid = pid_base + 1;
        let server_pid = pid_base + 2;
        let place = |track: Track| -> (u64, u64) {
            match track {
                Track::Rank(r) => (rank_pid, r as u64),
                Track::Server(s) => (server_pid, s as u64),
            }
        };

        let mut ranks: Vec<u64> = phases.iter().map(|p| p.0 as u64).collect();
        let mut servers: Vec<u64> = Vec::new();
        for t in obs.tracks() {
            match t {
                Track::Rank(r) => ranks.push(r as u64),
                Track::Server(s) => servers.push(s as u64),
            }
        }
        ranks.sort_unstable();
        ranks.dedup();
        servers.sort_unstable();
        servers.dedup();

        if !ranks.is_empty() {
            self.meta_process(rank_pid, &format!("{label} ranks"));
            for r in ranks {
                self.meta_thread(rank_pid, r, &format!("rank {r}"));
            }
        }
        if !servers.is_empty() {
            self.meta_process(server_pid, &format!("{label} servers"));
            for s in servers {
                self.meta_thread(server_pid, s, &format!("server {s}"));
            }
        }

        for (rank, name, start, end) in phases {
            self.complete(rank_pid, *rank as u64, name, *start, *end, &[]);
        }
        for span in &obs.spans {
            let (pid, tid) = place(span.track);
            self.complete(pid, tid, span.name, span.start, span.end, &span.args);
        }
        for sample in &obs.samples {
            let (pid, tid) = place(sample.track);
            // Chrome groups counter series by name within a process, so
            // fold the track into the series name to keep them apart.
            let name = match sample.track {
                Track::Rank(r) => format!("{} r{r}", sample.name),
                Track::Server(s) => format!("{} s{s}", sample.name),
            };
            self.counter(pid, tid, &name, sample.time, sample.value);
        }
    }

    /// Serialise to the Chrome JSON Object format
    /// (`{"traceEvents":[...]}`).
    pub fn finish(mut self) -> String {
        self.events.sort_by_key(|e| (e.pid, e.tid, e.kind, e.ts));
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&e.json);
        }
        out.push_str("\n]}\n");
        out
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for ChromeTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTrace").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::ObsSink;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn micros_uses_integer_math() {
        assert_eq!(micros(SimTime::from_nanos(0)), "0.000");
        assert_eq!(micros(SimTime::from_nanos(1)), "0.001");
        assert_eq!(micros(SimTime::from_nanos(1_234_567)), "1234.567");
        assert_eq!(micros(SimTime::from_micros(5)), "5.000");
    }

    #[test]
    fn export_parses_and_is_monotone_per_track() {
        let sink = ObsSink::recording();
        sink.span(
            Track::Server(0),
            "pvfs.write",
            t(30),
            t(40),
            &[("bytes", 64)],
        );
        sink.span(Track::Server(0), "pvfs.write", t(10), t(20), &[]);
        sink.span(Track::Rank(1), "coll.round", t(5), t(25), &[("round", 0)]);
        sink.sample(Track::Server(0), "pvfs.queue_depth", t(10), 1);
        let report = sink.finish().expect("recording");

        let mut trace = ChromeTrace::new();
        trace.export_report(0, "mw", &report, &[(0, "compute", t(0), t(50))]);
        let text = trace.finish();

        let doc = parse(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());

        // Timed events must be time-ordered within each (pid, tid) track.
        let mut last: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
        let mut names = Vec::new();
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph");
            names.push(e.get("name").and_then(Value::as_str).unwrap().to_string());
            if ph == "M" {
                continue;
            }
            let pid = e.get("pid").and_then(Value::as_num).unwrap() as u64;
            let tid = e.get("tid").and_then(Value::as_num).unwrap() as u64;
            let ts = e.get("ts").and_then(Value::as_num).expect("numeric ts");
            let prev = last.insert((pid, tid), ts);
            if let Some(p) = prev {
                assert!(ts >= p, "ts went backwards on track ({pid},{tid})");
            }
        }
        for expected in [
            "process_name",
            "thread_name",
            "pvfs.write",
            "coll.round",
            "compute",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        assert!(names.iter().any(|n| n == "pvfs.queue_depth s0"));
    }

    #[test]
    fn same_report_exports_identical_bytes() {
        let sink = ObsSink::recording();
        sink.span(Track::Rank(0), "a", t(1), t(2), &[("k", 7)]);
        sink.sample(Track::Server(2), "d", t(3), 9);
        let report = sink.finish().expect("recording");
        let render = |r: &ObsReport| {
            let mut tr = ChromeTrace::new();
            tr.export_report(10, "run", r, &[]);
            tr.finish()
        };
        assert_eq!(render(&report), render(&report.clone()));
    }
}
