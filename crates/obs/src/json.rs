//! A minimal JSON parser — just enough to round-trip-check exported
//! Chrome traces and to read the benchmark result files, with no external
//! dependency (the build environment is offline).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are unique; later duplicates win.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at an object key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let b = input.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match c {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our traces;
                            // map unpaired surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.b[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|t| t.chars().next())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Escape a string for embedding in a JSON document (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": 2.5}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_num), Some(2.5));
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(a[2], Value::Null);
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "quote \" slash \\ newline \n tab \t done";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }
}
