//! End-to-end replication tests: a replicated run must survive a
//! permanent failure-domain death with zero lost blocks and stay
//! byte-identical across replays, while an unreplicated run on the same
//! fault schedule must report the failure honestly as a typed error.

use s3a_workload::WorkloadParams;
use s3asim::{
    try_run, DomainOutage, FaultParams, PvfsError, ServerCorruption, SimError, SimParams, SimTime,
    Strategy,
};

fn small(strategy: Strategy) -> SimParams {
    SimParams {
        procs: 5,
        strategy,
        write_every_n_queries: 2,
        workload: WorkloadParams {
            queries: 8,
            fragments: 8,
            min_results: 30,
            max_results: 80,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    }
}

/// One failure domain loses power forever at `at_ms`; failure detection
/// and the retry budget are tightened so the run reacts within the short
/// simulated workload.
fn domain_death(domain: usize, at_ms: u64) -> FaultParams {
    FaultParams {
        domain_outages: vec![DomainOutage {
            domain,
            from: SimTime::from_millis(at_ms),
            until: SimTime::from_secs(1_000_000),
        }],
        detection_timeout: SimTime::from_millis(5),
        max_io_retries: 4,
        io_retry_backoff: SimTime::from_millis(1),
        ..FaultParams::default()
    }
}

fn replicated(strategy: Strategy) -> SimParams {
    let mut params = small(strategy);
    params.testbed.pvfs.replicas = 3;
    params.testbed.pvfs.write_quorum = 2;
    params.testbed.pvfs.failure_domains = 4;
    params
}

#[test]
fn replicated_run_survives_permanent_domain_death_with_zero_lost_blocks() {
    for strategy in [Strategy::Mw, Strategy::WwPosix, Strategy::WwList] {
        let mut params = replicated(strategy);
        params.faults = domain_death(1, 30);
        let report = try_run(&params).unwrap_or_else(|e| panic!("{strategy}: {e}"));
        report
            .verify()
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        // A quarter of the 16 servers (domain 1) died for good...
        let f = report.faults.as_ref().expect("fault report present");
        assert_eq!(f.servers_declared_dead, 4, "{strategy}");
        // ...yet no block lost its last copy, and the repair planner
        // rebuilt the missing copies over the fabric.
        assert_eq!(report.fs.lost_blocks, 0, "{strategy}");
        assert!(report.fs.repaired_blocks > 0, "{strategy}");
        assert!(report.fs.repair_bytes > 0, "{strategy}");
        assert_eq!(
            f.blocks_re_replicated, report.fs.repaired_blocks,
            "{strategy}"
        );
    }
}

#[test]
fn replicated_domain_death_replays_byte_identically() {
    let mut params = replicated(Strategy::WwList);
    params.faults = domain_death(1, 30);
    let a = try_run(&params).expect("first replay");
    let b = try_run(&params).expect("second replay");
    assert_eq!(a.csv_row(), b.csv_row());
    assert_eq!(a.fs, b.fs);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.phase_table(), b.phase_table());
}

#[test]
fn unreplicated_run_reports_domain_death_honestly() {
    // Same fault schedule, replicas = 1: the run cannot limp through a
    // permanent domain death. It must fail with the typed outage error —
    // not hang, not fabricate a complete output.
    let mut params = small(Strategy::WwList);
    params.faults = domain_death(1, 30);
    match try_run(&params) {
        Err(SimError::Io(PvfsError::ServerUnavailable { .. })) => {}
        other => panic!("expected a typed outage error, got {other:?}"),
    }
}

#[test]
fn below_quorum_write_surfaces_typed_error() {
    // Both members of a 2-way placement cannot be reached at quorum 2
    // once an entire half of the domains is dark from t=0.
    let mut params = small(Strategy::Mw);
    params.testbed.pvfs.replicas = 2;
    params.testbed.pvfs.write_quorum = 2;
    params.testbed.pvfs.failure_domains = 2;
    params.faults = domain_death(0, 0);
    params.faults.detection_timeout = SimTime::from_millis(1);
    match try_run(&params) {
        Err(SimError::Io(PvfsError::InsufficientReplicas { got, need, .. })) => {
            assert_eq!(need, 2);
            assert!(got < 2);
        }
        Err(SimError::Io(PvfsError::ServerUnavailable { .. })) => {
            // Equally honest: the write died retrying into the outage
            // before the failure detector fenced the domain.
        }
        other => panic!("expected a typed quorum/outage error, got {other:?}"),
    }
}

#[test]
fn replication_tax_is_time_not_bytes_lost() {
    // Clean runs: r=3 writes 3x the block bytes (write amplification)
    // but produces the same verified output as r=1.
    let clean1 = try_run(&small(Strategy::WwList)).expect("r=1 clean");
    let clean3 = try_run(&replicated(Strategy::WwList)).expect("r=3 clean");
    assert_eq!(clean1.covered_bytes, clean3.covered_bytes);
    assert_eq!(clean1.fs.replica_bytes_written, 0);
    assert!(
        clean3.fs.replica_bytes_written >= 2 * clean3.fs.bytes_written,
        "two extra copies per block: {} replica bytes vs {} primary",
        clean3.fs.replica_bytes_written,
        clean3.fs.bytes_written
    );
    assert_eq!(clean3.fs.lost_blocks, 0);
    assert_eq!(clean3.fs.repaired_blocks, 0, "nothing to repair cleanly");
}

#[test]
fn scrub_and_repair_heal_silent_corruption_during_a_run() {
    let mut params = replicated(Strategy::WwList);
    // The workload runs ~5 virtual seconds with scrub on; rot sets in
    // mid-run so there are replicas written before it (only those can
    // rot) and scrub passes after it (only those can catch it).
    params.testbed.pvfs.scrub_interval = SimTime::from_millis(100);
    params.faults = FaultParams {
        server_corruptions: vec![ServerCorruption {
            server: 2,
            at: SimTime::from_millis(3000),
            per_mille: 1000,
        }],
        ..FaultParams::default()
    };
    let report = try_run(&params).expect("corruption under r=3 is survivable");
    report.verify().expect("output still exact");
    assert!(report.fs.scrubbed_blocks > 0, "scrub ran");
    assert!(
        report.fs.checksum_failures > 0,
        "rot on server 2 must be detected"
    );
    assert!(report.fs.repaired_blocks > 0, "detected rot must be healed");
    assert_eq!(report.fs.lost_blocks, 0);
}

#[test]
fn unreplicated_runs_keep_their_exact_legacy_behaviour() {
    // The replication machinery must be invisible at r=1: same bytes,
    // zero new counters.
    let report = try_run(&small(Strategy::WwPosix)).expect("clean r=1");
    assert_eq!(report.fs.replica_bytes_written, 0);
    assert_eq!(report.fs.repair_bytes, 0);
    assert_eq!(report.fs.checksum_failures, 0);
    assert_eq!(report.fs.scrubbed_blocks, 0);
    assert_eq!(report.fs.lost_blocks, 0);
}
