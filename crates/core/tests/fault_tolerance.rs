//! End-to-end fault-injection tests: crashed workers must not change
//! *what* the run produces (a complete, dense, score-ordered output
//! file), only *when* — and every run must stay deterministic, fault
//! schedule included.

use proptest::prelude::*;

use s3a_des::SimTime;
use s3a_workload::WorkloadParams;
use s3asim::{
    run, run_with_restart, FaultParams, ServerOutage, ServerSlowdown, SimParams, Strategy,
};

fn small(strategy: Strategy) -> SimParams {
    SimParams {
        procs: 5,
        strategy,
        write_every_n_queries: 2,
        workload: WorkloadParams {
            queries: 8,
            fragments: 8,
            min_results: 30,
            max_results: 80,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    }
}

fn crash(rank: usize, at_ms: u64) -> FaultParams {
    FaultParams {
        worker_crashes: vec![(rank, SimTime::from_millis(at_ms))],
        heartbeat_interval: SimTime::from_millis(50),
        detection_timeout: SimTime::from_millis(400),
        ..FaultParams::default()
    }
}

#[test]
fn crashed_worker_is_detected_and_its_work_recovered() {
    for strategy in [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwSieve,
    ] {
        let mut params = small(strategy);
        params.faults = crash(2, 40);
        let report = run(&params);
        report
            .verify()
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        let f = report.faults.expect("fault report present");
        assert_eq!(f.crashes, 1, "{strategy}");
        assert_eq!(f.detections, 1, "{strategy}");
        if strategy.workers_write() {
            // By 40ms the victim had completed at least one task, so its
            // contribution was either revoked and redone (batch still
            // open at detection) or repaired (batch already laid out).
            assert!(
                f.tasks_reassigned + f.batches_repaired > 0,
                "{strategy}: a WW victim's results must need recovery"
            );
        }
    }
}

#[test]
fn two_crashes_still_complete() {
    let mut params = small(Strategy::WwList);
    params.faults = crash(1, 30);
    params
        .faults
        .worker_crashes
        .push((3, SimTime::from_millis(90)));
    let report = run(&params);
    report.verify().expect("output complete despite two deaths");
    let f = report.faults.expect("fault report");
    assert_eq!(f.crashes, 2);
    assert_eq!(f.detections, 2);
}

#[test]
fn crash_runs_are_deterministic() {
    let mut params = small(Strategy::WwPosix);
    params.faults = crash(3, 60);
    let a = run(&params);
    let b = run(&params);
    assert_eq!(a.phase_table(), b.phase_table());
    assert_eq!(a.csv_row(), b.csv_row());
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.commits.entries(), b.commits.entries());
}

#[test]
fn crash_changes_time_but_not_bytes() {
    let clean = run(&small(Strategy::WwList));
    let mut params = small(Strategy::WwList);
    params.faults = crash(2, 40);
    let faulty = run(&params);
    assert_eq!(clean.covered_bytes, faulty.covered_bytes);
    assert!(
        faulty.overall > clean.overall,
        "recovery must cost time: {} vs {}",
        faulty.overall,
        clean.overall
    );
}

#[test]
fn message_faults_delay_but_do_not_corrupt() {
    let mut params = small(Strategy::WwList);
    params.faults = FaultParams {
        seed: 7,
        msg_loss_per_mille: 60,
        msg_dup_per_mille: 40,
        msg_delay_per_mille: 80,
        ..FaultParams::default()
    };
    let a = run(&params);
    a.verify().expect("lossy fabric must not corrupt output");
    let f = a.faults.expect("fault report");
    assert!(f.msg_lost + f.msg_duplicated + f.msg_delayed > 0);
    let b = run(&params);
    assert_eq!(a.csv_row(), b.csv_row(), "same seed, same run");
    assert_eq!(a.faults, b.faults);
}

#[test]
fn limping_and_flaky_servers_only_cost_time() {
    let mut params = small(Strategy::WwPosix);
    params.faults = FaultParams {
        server_slowdowns: vec![ServerSlowdown {
            server: 0,
            from: SimTime::ZERO,
            until: SimTime::from_secs(1000),
            factor: 4.0,
        }],
        server_outages: vec![ServerOutage {
            server: 1,
            from: SimTime::from_millis(20),
            until: SimTime::from_millis(120),
        }],
        ..FaultParams::default()
    };
    let report = run(&params);
    report
        .verify()
        .expect("server faults must not corrupt output");
    let clean = run(&small(Strategy::WwPosix));
    assert!(report.overall > clean.overall);
}

#[test]
fn sieve_strategy_survives_server_faults_and_stays_deterministic() {
    // WW-DS under a transient outage: the locked read-modify-write
    // cycles retry through the same choke point as every other path, the
    // output still verifies, and the run (lock grants included) is a
    // pure function of the parameters.
    let mut params = small(Strategy::WwSieve);
    params.faults = FaultParams {
        server_outages: vec![ServerOutage {
            server: 1,
            from: SimTime::from_millis(20),
            until: SimTime::from_millis(120),
        }],
        ..FaultParams::default()
    };
    let a = run(&params);
    a.verify()
        .expect("server faults must not corrupt WW-DS output");
    let b = run(&params);
    assert_eq!(a.csv_row(), b.csv_row(), "same seed, same run");
    let clean = run(&small(Strategy::WwSieve));
    clean.verify().expect("clean WW-DS run verifies");
}

#[test]
fn kill_and_restart_resumes_from_durable_prefix() {
    for strategy in [Strategy::Mw, Strategy::WwPosix, Strategy::WwColl] {
        let params = small(strategy);
        let full = run(&params);
        // Kill just after the first extent (base 0) became durable:
        // guaranteed partial progress, guaranteed unfinished work.
        let entries = full.commits.entries();
        let first_extent_at = entries
            .iter()
            .find(|e| e.base == 0)
            .expect("some batch starts the file")
            .committed_at;
        let last_at = entries
            .iter()
            .map(|e| e.committed_at)
            .max()
            .expect("nonempty");
        assert!(
            first_extent_at < last_at,
            "{strategy}: commits should be spread over time"
        );
        let outcome = run_with_restart(&params, first_extent_at);
        outcome
            .verify()
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        assert!(
            !outcome.resume.done_batches.is_empty(),
            "{strategy}: the first extent was durable at the kill"
        );
        assert!(
            outcome.resume.base_offset < full.expected_bytes,
            "{strategy}: work should remain after the kill"
        );
    }
}

#[test]
fn restart_at_time_zero_replays_the_whole_run() {
    let params = small(Strategy::WwList);
    let outcome = run_with_restart(&params, SimTime::ZERO);
    assert!(outcome.resume.done_batches.is_empty());
    assert_eq!(outcome.resume.base_offset, 0);
    outcome.verify().expect("full replay");
    let clean = run(&params);
    assert_eq!(outcome.second.csv_row(), clean.csv_row());
}

#[test]
fn crash_then_restart_combines_into_a_complete_file() {
    // The hardest composition: the first run limps through a worker crash,
    // is then killed, and the resumed run finishes the remainder.
    let mut params = small(Strategy::WwList);
    params.faults = crash(2, 40);
    let full = run(&params);
    let outcome = run_with_restart(&params, full.overall / 2);
    outcome.verify().expect("crash + restart still exact");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Output-extent verification holds for ANY crash interleaving.
    #[test]
    fn any_crash_schedule_yields_exact_output(
        rank in 1usize..5,
        at_ms in 0u64..400,
        strategy_ix in 0usize..3,
    ) {
        let strategy = [Strategy::Mw, Strategy::WwPosix, Strategy::WwList][strategy_ix];
        let mut params = small(strategy);
        params.faults = crash(rank, at_ms);
        let report = run(&params);
        prop_assert!(report.verify().is_ok(), "{}", report.verify().unwrap_err());
        prop_assert_eq!(report.faults.expect("report").crashes, 1);
    }

    /// Same seed + same fault schedule ⇒ byte-identical report.
    #[test]
    fn fault_runs_are_replayable(
        rank in 1usize..5,
        at_ms in 0u64..300,
        seed in 0u64..1000,
    ) {
        let mut params = small(Strategy::WwPosix);
        params.faults = crash(rank, at_ms);
        params.faults.seed = seed;
        params.faults.msg_loss_per_mille = 30;
        params.faults.msg_delay_per_mille = 30;
        let a = run(&params);
        let b = run(&params);
        prop_assert_eq!(a.phase_table(), b.phase_table());
        prop_assert_eq!(a.csv_row(), b.csv_row());
        prop_assert_eq!(a.faults, b.faults);
    }

    /// Any kill time produces a valid checkpoint and a complete restart.
    #[test]
    fn any_kill_time_restarts_exactly(permille in 0u64..1000) {
        let params = small(Strategy::WwPosix);
        let full = run(&params);
        let kill = SimTime::from_nanos(full.overall.as_nanos() / 1000 * permille);
        let outcome = run_with_restart(&params, kill);
        prop_assert!(outcome.verify().is_ok(), "{}", outcome.verify().unwrap_err());
    }
}
