//! Whole-simulator fuzzing: arbitrary (small) parameter combinations must
//! run to completion — no deadlock — and produce a byte-exact output file
//! with phase accounting that adds up. This is the strongest invariant in
//! the repository: every layer (engine, network, MPI, file system, MPI-IO,
//! application protocol) has to cooperate for it to hold.

use proptest::prelude::*;

use s3a_workload::WorkloadParams;
use s3asim::{run, Segmentation, SimParams, PHASES};

fn strategy_strategy() -> impl Strategy<Value = s3asim::Strategy> {
    prop::sample::select(vec![
        s3asim::Strategy::Mw,
        s3asim::Strategy::WwPosix,
        s3asim::Strategy::WwList,
        s3asim::Strategy::WwColl,
        s3asim::Strategy::WwCollList,
        s3asim::Strategy::WwSieve,
    ])
}

proptest! {
    // Each case is a full simulation; keep the counts moderate.
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn any_configuration_runs_exactly(
        procs in 2usize..10,
        strategy in strategy_strategy(),
        sync in any::<bool>(),
        queries in 1usize..6,
        fragments in 1usize..10,
        gran in 1usize..8,
        cb_nodes in 0usize..4,
        speed_tenths in 2u64..40,
        seed in 0u64..10_000,
        query_seg in any::<bool>(),
        nonblocking in any::<bool>(),
    ) {
        let params = SimParams {
            procs,
            strategy,
            query_sync: sync,
            compute_speed: speed_tenths as f64 / 10.0,
            write_every_n_queries: gran,
            cb_nodes,
            segmentation: if query_seg {
                Segmentation::Query
            } else {
                Segmentation::Database
            },
            mw_nonblocking_io: nonblocking,
            trace: true,
            workload: WorkloadParams {
                queries,
                fragments,
                min_results: 5,
                max_results: 40,
                // Keep query-segmentation reload I/O small but exercised.
                database_bytes: 96 * 1024 * 1024,
                seed,
                ..WorkloadParams::default()
            },
            ..SimParams::default()
        };
        let r = run(&params);
        // The single most important line in this file:
        prop_assert!(r.verify().is_ok(), "verify failed: {:?}", r.verify());

        // Conservation laws.
        let task_total: usize = r.worker_stats.iter().map(|s| s.tasks).sum();
        let expected_tasks = queries * if query_seg { 1 } else { fragments };
        prop_assert_eq!(task_total, expected_tasks);
        if strategy.workers_write() {
            let written: u64 = r.worker_stats.iter().map(|s| s.bytes_written).sum();
            prop_assert_eq!(written, r.expected_bytes);
        }

        // Phase accounting: per-rank sums within barrier skew of overall.
        let skew = s3a_des::SimTime::from_millis(10);
        for w in &r.workers {
            prop_assert!(w.total() <= r.overall && w.total() + skew >= r.overall);
        }

        // Trace totals agree with the breakdown.
        let trace = r.trace.as_ref().expect("tracing on");
        for (rank, bd) in std::iter::once((0, &r.master))
            .chain(r.workers.iter().enumerate().map(|(i, w)| (i + 1, w)))
        {
            for ph in PHASES {
                if ph == s3asim::Phase::Other {
                    continue;
                }
                prop_assert_eq!(trace.rank_phase_total(rank, ph), bd.get(ph));
            }
        }

        // Commit log: every query durable by the end.
        prop_assert_eq!(r.commits.resumable_queries_at(r.overall), queries);

        // Determinism: run it again, get the identical report.
        let r2 = run(&params);
        prop_assert_eq!(r.overall, r2.overall);
        prop_assert_eq!(r.workers, r2.workers);
        prop_assert_eq!(r.fs, r2.fs);
    }
}
