//! End-to-end tests for sharded-master mode: multiple master ranks, work
//! stealing, sub-fragment tasks, and master failover. The invariants are
//! the same ones the single-master fault tests pin: the output file is
//! complete and exact (every byte written exactly once), the commit
//! ledger closes exactly once per batch, and every run — failover
//! included — replays byte-identically.

use s3a_des::SimTime;
use s3a_workload::WorkloadParams;
use s3asim::{run, FaultParams, SimParams, Strategy};

fn sharded(strategy: Strategy, masters: usize) -> SimParams {
    SimParams {
        procs: 10,
        num_masters: masters,
        strategy,
        write_every_n_queries: 2,
        workload: WorkloadParams {
            queries: 8,
            fragments: 8,
            min_results: 30,
            max_results: 80,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    }
}

fn master_crash(rank: usize, at_ms: u64) -> FaultParams {
    FaultParams {
        master_crashes: vec![(rank, SimTime::from_millis(at_ms))],
        heartbeat_interval: SimTime::from_millis(50),
        detection_timeout: SimTime::from_millis(400),
        ..FaultParams::default()
    }
}

#[test]
fn fault_free_sharded_runs_verify() {
    for strategy in [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwSieve,
    ] {
        for masters in [2, 3] {
            let params = sharded(strategy, masters);
            let report = run(&params);
            report
                .verify()
                .unwrap_or_else(|e| panic!("{strategy}/{masters} masters: {e}"));
        }
    }
}

#[test]
fn subfragment_tasks_preserve_the_output() {
    // The same bytes land at the same offsets whether a fragment is one
    // task or four: slices partition the sorted hit list in order.
    for strategy in [Strategy::Mw, Strategy::WwList] {
        let coarse = run(&sharded(strategy, 2));
        let mut params = sharded(strategy, 2);
        params.subfragment_factor = 4;
        let fine = run(&params);
        fine.verify()
            .unwrap_or_else(|e| panic!("{strategy} subfragmented: {e}"));
        assert_eq!(coarse.covered_bytes, fine.covered_bytes, "{strategy}");
        assert_eq!(coarse.expected_bytes, fine.expected_bytes, "{strategy}");
    }
}

#[test]
fn sharded_runs_are_deterministic() {
    let mut params = sharded(Strategy::WwList, 4);
    params.subfragment_factor = 2;
    let a = run(&params);
    let b = run(&params);
    assert_eq!(a.phase_table(), b.phase_table());
    assert_eq!(a.csv_row(), b.csv_row());
    assert_eq!(a.commits.entries(), b.commits.entries());
}

#[test]
fn sharded_commit_ledger_closes_every_batch_exactly_once() {
    let params = sharded(Strategy::WwPosix, 2);
    let report = run(&params);
    report.verify().expect("clean sharded run verifies");
    let entries = report.commits.entries();
    let mut batches: Vec<usize> = entries.iter().map(|e| e.batch).collect();
    batches.sort_unstable();
    batches.dedup();
    assert_eq!(batches.len(), entries.len(), "no batch committed twice");
    assert_eq!(batches, (0..4).collect::<Vec<_>>(), "all 4 batches durable");
}

#[test]
fn master_crash_promotes_a_successor_and_loses_nothing() {
    // The tentpole failover invariant: kill a standby master mid-Search;
    // the coordinator detects the silence, a sibling shard adopts the
    // dead master's batches (rebuilding any that died unlaid-out), its
    // workers re-home, and the run still produces exactly-once extents.
    for strategy in [Strategy::Mw, Strategy::WwList] {
        let mut params = sharded(strategy, 2);
        params.faults = master_crash(1, 40);
        let report = run(&params);
        report
            .verify()
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        let f = report.faults.expect("fault report present");
        assert_eq!(f.master_crashes, 1, "{strategy}");
        assert_eq!(f.master_detections, 1, "{strategy}");
        assert_eq!(f.shard_takeovers, 1, "{strategy}");

        // Exactly-once repair credit: the ledger holds each batch once,
        // and together the extents cover the whole file.
        let entries = report.commits.entries();
        let mut batches: Vec<usize> = entries.iter().map(|e| e.batch).collect();
        batches.sort_unstable();
        batches.dedup();
        assert_eq!(
            batches.len(),
            entries.len(),
            "{strategy}: a batch committed twice after failover"
        );
        assert_eq!(
            batches,
            (0..4).collect::<Vec<_>>(),
            "{strategy}: every batch durable despite the dead master"
        );
        assert_eq!(report.covered_bytes, report.expected_bytes, "{strategy}");
    }
}

#[test]
fn chained_master_failover_loses_nothing() {
    // Kill rank 1, then — after its takeover has landed — kill the
    // successor, rank 2. The second failover only works if *every*
    // survivor (rank 0 included, which becomes the next successor)
    // recorded the first takeover in its ownership map: a stale map
    // would orphan the batches rank 2 adopted from rank 1, and the run
    // would never terminate.
    for strategy in [Strategy::Mw, Strategy::WwList] {
        let mut params = sharded(strategy, 3);
        params.faults = FaultParams {
            master_crashes: vec![
                (1, SimTime::from_millis(40)),
                (2, SimTime::from_millis(520)),
            ],
            heartbeat_interval: SimTime::from_millis(50),
            detection_timeout: SimTime::from_millis(400),
            ..FaultParams::default()
        };
        let report = run(&params);
        report
            .verify()
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        let f = report.faults.expect("fault report present");
        assert_eq!(f.master_crashes, 2, "{strategy}");
        assert_eq!(f.master_detections, 2, "{strategy}");
        assert_eq!(f.shard_takeovers, 2, "{strategy}");

        // Exactly-once despite two generations of adoption.
        let entries = report.commits.entries();
        let mut batches: Vec<usize> = entries.iter().map(|e| e.batch).collect();
        batches.sort_unstable();
        batches.dedup();
        assert_eq!(
            batches.len(),
            entries.len(),
            "{strategy}: a batch committed twice after chained failover"
        );
        assert_eq!(
            batches,
            (0..4).collect::<Vec<_>>(),
            "{strategy}: every batch durable despite two dead masters"
        );
        assert_eq!(report.covered_bytes, report.expected_bytes, "{strategy}");
    }
}

#[test]
fn chained_master_failover_replays_byte_identically() {
    let mut params = sharded(Strategy::WwList, 3);
    params.faults = FaultParams {
        master_crashes: vec![
            (1, SimTime::from_millis(40)),
            (2, SimTime::from_millis(520)),
        ],
        heartbeat_interval: SimTime::from_millis(50),
        detection_timeout: SimTime::from_millis(400),
        ..FaultParams::default()
    };
    let a = run(&params);
    let b = run(&params);
    assert_eq!(a.phase_table(), b.phase_table());
    assert_eq!(a.csv_row(), b.csv_row());
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.commits.entries(), b.commits.entries());
}

#[test]
fn master_failover_replays_byte_identically() {
    let mut params = sharded(Strategy::WwList, 3);
    params.faults = master_crash(2, 60);
    let a = run(&params);
    let b = run(&params);
    assert_eq!(a.phase_table(), b.phase_table());
    assert_eq!(a.csv_row(), b.csv_row());
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.commits.entries(), b.commits.entries());
}

#[test]
fn late_master_crash_after_layout_needs_no_rebuild() {
    // Crash the master late enough that (typically) some of its batches
    // are already laid out: adopted-but-known batches must not be redone,
    // and the output must still be exact.
    let mut params = sharded(Strategy::WwList, 2);
    params.faults = master_crash(1, 300);
    let report = run(&params);
    report.verify().expect("late crash still exact");
    let f = report.faults.expect("fault report");
    assert_eq!(f.master_crashes, 1);
    assert_eq!(f.shard_takeovers, 1);
}

#[test]
fn fault_free_sharded_run_costs_no_recovery() {
    let report = run(&sharded(Strategy::WwList, 2));
    assert!(report.faults.is_none(), "no fault machinery armed");
}
