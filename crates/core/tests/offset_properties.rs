//! Property-based tests for the offset-assignment protocol: whatever hits
//! arrive, in whatever fragment order, the master's per-worker offset
//! lists and the workers' independently merged local lists describe the
//! same bytes — disjointly, densely, and in global score order.

use proptest::prelude::*;
use std::collections::BTreeMap;

use s3a_workload::Hit;
use s3asim::{hit_order, merge_sorted_hits, BatchState};

/// A random query's worth of per-(worker, fragment) hit lists.
#[derive(Debug, Clone)]
struct QueryCase {
    /// (worker, hits-per-fragment) — each inner list unsorted on arrival.
    tasks: Vec<(usize, Vec<Hit>)>,
}

fn query_case() -> impl Strategy<Value = QueryCase> {
    prop::collection::vec(
        (
            0usize..6, // worker id
            prop::collection::vec((0u64..1000, 1u64..500), 0..12),
        ),
        1..10,
    )
    .prop_map(|raw| QueryCase {
        tasks: raw
            .into_iter()
            .map(|(w, hits)| {
                let mut hs: Vec<Hit> = hits
                    .into_iter()
                    .map(|(score, size)| Hit { score, size })
                    .collect();
                hs.sort_by(hit_order); // workers sort before sending
                (w, hs)
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn offsets_are_disjoint_dense_and_ordered(case in query_case(), base in 0u64..1_000_000) {
        let fragments = case.tasks.len();
        let mut batch = BatchState::new(0, vec![0], fragments);
        for (frag, (w, hits)) in case.tasks.iter().enumerate() {
            batch.record(0, frag, *w, hits);
        }
        prop_assert!(batch.is_complete());

        let (per_worker, total) = batch.assign_offsets(base);
        let expect_total: u64 = case
            .tasks
            .iter()
            .flat_map(|(_, h)| h.iter())
            .map(|h| h.size)
            .sum();
        prop_assert_eq!(total, expect_total);

        // Worker-side view: independently merge each worker's fragments
        // exactly the way the worker process does.
        let mut local: BTreeMap<usize, Vec<Hit>> = BTreeMap::new();
        for (w, hits) in &case.tasks {
            if hits.is_empty() {
                continue;
            }
            let slot = local.entry(*w).or_default();
            if slot.is_empty() {
                slot.extend_from_slice(hits);
            } else {
                *slot = merge_sorted_hits(slot, hits);
            }
        }

        // Pair offsets with local hit orders and collect all regions.
        let mut regions: Vec<(u64, u64, u64)> = Vec::new(); // (off, len, score)
        for (w, hits) in &local {
            let offsets = per_worker
                .get(w)
                .map(|p| p.offsets.clone())
                .unwrap_or_default();
            prop_assert_eq!(
                offsets.len(),
                hits.len(),
                "worker {} got {} offsets for {} hits",
                w,
                offsets.len(),
                hits.len()
            );
            for (h, off) in hits.iter().zip(offsets) {
                regions.push((off, h.size, h.score));
            }
        }

        // Disjoint and dense over [base, base + total).
        regions.sort_by_key(|&(off, _, _)| off);
        let mut cursor = base;
        for &(off, len, _) in &regions {
            prop_assert_eq!(off, cursor, "hole or overlap at {}", off);
            cursor += len;
        }
        prop_assert_eq!(cursor, base + total);

        // File order is descending (score, size): the score-sorted output
        // contract of §2.
        for w in regions.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let ha = Hit { score: a.2, size: a.1 };
            let hb = Hit { score: b.2, size: b.1 };
            prop_assert_ne!(
                hit_order(&ha, &hb),
                std::cmp::Ordering::Greater,
                "file order violates score order at offset {}",
                b.0
            );
        }
    }

    /// Multi-query batches lay queries out in ascending order, each dense.
    #[test]
    fn multi_query_batches_are_query_ordered(
        sizes_q0 in prop::collection::vec(1u64..100, 1..8),
        sizes_q1 in prop::collection::vec(1u64..100, 1..8),
    ) {
        let mut batch = BatchState::new(0, vec![4, 5], 1);
        let mk = |sizes: &[u64], salt: u64| -> Vec<Hit> {
            let mut hits: Vec<Hit> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| Hit { score: salt * 1000 + i as u64, size: s })
                .collect();
            hits.sort_by(hit_order);
            hits
        };
        let h0 = mk(&sizes_q0, 1);
        let h1 = mk(&sizes_q1, 2);
        batch.record(4, 0, 1, &h0);
        batch.record(5, 0, 1, &h1);
        let (per_worker, total) = batch.assign_offsets(0);
        let b0: u64 = sizes_q0.iter().sum();
        let b1: u64 = sizes_q1.iter().sum();
        prop_assert_eq!(total, b0 + b1);
        // Worker 1 holds everything; its offsets must be grouped: all of
        // query 4's region offsets precede query 5's.
        let offs = &per_worker[&1];
        let (q0_offs, q1_offs) = offs.offsets.split_at(h0.len());
        let max0 = q0_offs.iter().max().copied().unwrap_or(0);
        let min1 = q1_offs.iter().min().copied().unwrap_or(u64::MAX);
        prop_assert!(max0 < min1, "query extents interleaved");
    }

    /// merge_sorted_hits is equivalent to concatenate-and-sort.
    #[test]
    fn merge_equals_sort_of_concat(
        a in prop::collection::vec((0u64..100, 1u64..50), 0..20),
        b in prop::collection::vec((0u64..100, 1u64..50), 0..20),
    ) {
        let mk = |v: &[(u64, u64)]| -> Vec<Hit> {
            let mut h: Vec<Hit> = v.iter().map(|&(s, z)| Hit { score: s, size: z }).collect();
            h.sort_by(hit_order);
            h
        };
        let ha = mk(&a);
        let hb = mk(&b);
        let merged = merge_sorted_hits(&ha, &hb);
        let mut reference = [ha, hb].concat();
        reference.sort_by(hit_order);
        // Same multiset in a hit_order-compatible order.
        prop_assert_eq!(merged.len(), reference.len());
        for (x, y) in merged.iter().zip(&reference) {
            prop_assert_eq!(hit_order(x, y), std::cmp::Ordering::Equal);
        }
    }
}
