//! Failure-recovery analysis.
//!
//! The paper motivates writing results out frequently: "More frequently
//! writing out the results also allows users to resume a failed
//! application run at the appropriate input query" (§2). This module
//! quantifies that trade-off: given the batch-commit timeline of a run,
//! it computes how much work survives a crash at any instant and what a
//! restart must redo.

use s3a_des::SimTime;

/// When each batch's results became durable (written and synced).
///
/// Recorded by the master during the run; batch ids are in commit order.
#[derive(Debug, Clone, Default)]
pub struct CommitLog {
    entries: Vec<CommitEntry>,
}

/// One durable batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEntry {
    /// Batch id (query group).
    pub batch: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Result bytes committed.
    pub bytes: u64,
    /// File offset where the batch's extent starts.
    pub base: u64,
    /// Virtual time at which the batch was durable on disk.
    pub committed_at: SimTime,
}

impl CommitLog {
    /// Record a batch commit (called in commit order).
    pub fn push(&mut self, entry: CommitEntry) {
        if let Some(last) = self.entries.last() {
            assert!(
                entry.committed_at >= last.committed_at,
                "commits must be recorded in time order"
            );
        }
        self.entries.push(entry);
    }

    /// All commits, in time order.
    pub fn entries(&self) -> &[CommitEntry] {
        &self.entries
    }

    /// Batches durable at (or before) `t`.
    pub fn committed_by(&self, t: SimTime) -> usize {
        self.entries
            .iter()
            .take_while(|e| e.committed_at <= t)
            .count()
    }

    /// Bytes durable at `t`.
    pub fn bytes_committed_by(&self, t: SimTime) -> u64 {
        self.entries
            .iter()
            .take_while(|e| e.committed_at <= t)
            .map(|e| e.bytes)
            .sum()
    }

    /// Queries whose results survive a crash at `t` (a restart resumes
    /// from the next query, as mpiBLAST 1.4 does).
    pub fn resumable_queries_at(&self, t: SimTime) -> usize {
        self.entries
            .iter()
            .take_while(|e| e.committed_at <= t)
            .map(|e| e.queries)
            .sum()
    }

    /// Analysis of a crash at time `t` during a run that would have taken
    /// `overall` and processed `total_queries`.
    pub fn crash_at(&self, t: SimTime, overall: SimTime, total_queries: usize) -> CrashReport {
        let t = t.min(overall);
        let saved = self.resumable_queries_at(t);
        let lost_queries = total_queries - saved;
        // Work performed before the crash that a restart repeats: the
        // fraction of the run spent on queries not yet durable. First
        // order: time since the last commit (or since start).
        let last_commit = self
            .entries
            .iter()
            .take_while(|e| e.committed_at <= t)
            .last()
            .map(|e| e.committed_at)
            .unwrap_or(SimTime::ZERO);
        CrashReport {
            at: t,
            resumable_queries: saved,
            lost_queries,
            lost_time: t - last_commit,
        }
    }
}

/// What a crash at a given moment costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// When the crash happened.
    pub at: SimTime,
    /// Queries whose output survives on disk.
    pub resumable_queries: usize,
    /// Queries a restart must redo.
    pub lost_queries: usize,
    /// Wall time since the last durable commit — progress that is redone.
    pub lost_time: SimTime,
}

/// Expected redo time for a crash at a uniformly random instant of the
/// run (the mean of `lost_time` over the run's duration).
pub fn expected_lost_time(log: &CommitLog, overall: SimTime) -> SimTime {
    // Between consecutive commits, lost_time ramps linearly from 0 to the
    // gap; the expectation is sum(gap^2 / 2) / overall.
    if overall.is_zero() {
        return SimTime::ZERO;
    }
    let mut points: Vec<SimTime> = vec![SimTime::ZERO];
    points.extend(
        log.entries()
            .iter()
            .map(|e| e.committed_at)
            .filter(|&t| t <= overall),
    );
    points.push(overall);
    // s3a-lint: allow(float-accum) -- derived report metric (expected lost time), never fed back into the virtual clock
    let total_ns: f64 = points
        .windows(2)
        .map(|w| {
            let gap = (w[1].saturating_sub(w[0])).as_nanos() as f64;
            gap * gap / 2.0
        })
        .sum();
    SimTime::from_nanos((total_ns / overall.as_nanos() as f64).round() as u64)
}

/// Shared, simulation-side recorder that turns distributed batch
/// completions into a [`CommitLog`]. The master registers *which ranks*
/// must write each batch; each writer reports completion after its
/// write+sync; the batch commits when the last one finishes (immediately,
/// for MW, where the master — rank 0 — is the only writer). Tracking
/// writer identity (not just a count) lets the master see exactly which
/// batches a crashed worker still owed and hand those writes to a
/// survivor, which completes them *on the dead rank's behalf*.
#[derive(Clone, Default)]
pub struct CommitTracker {
    inner: std::rc::Rc<std::cell::RefCell<TrackerInner>>,
}

#[derive(Default)]
struct TrackerInner {
    log: Vec<CommitEntry>,
    pending: std::collections::BTreeMap<usize, PendingBatch>,
}

struct PendingBatch {
    writers: Vec<usize>,
    queries: usize,
    bytes: u64,
    base: u64,
}

impl CommitTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a batch whose extent starts at `base` with the given
    /// outstanding writer ranks. A batch with no writers (no results) is
    /// durable immediately.
    pub fn expect(
        &self,
        batch: usize,
        writers: Vec<usize>,
        queries: usize,
        bytes: u64,
        base: u64,
        now: SimTime,
    ) {
        let mut t = self.inner.borrow_mut();
        if writers.is_empty() {
            t.log.push(CommitEntry {
                batch,
                queries,
                bytes,
                base,
                committed_at: now,
            });
        } else {
            t.pending.insert(
                batch,
                PendingBatch {
                    writers,
                    queries,
                    bytes,
                    base,
                },
            );
        }
    }

    /// Rank `writer`'s share of `batch` is durable (written by the rank
    /// itself, or by a survivor repairing after its crash).
    pub fn complete_by(&self, batch: usize, writer: usize, now: SimTime) {
        let mut t = self.inner.borrow_mut();
        let p = t
            .pending
            .get_mut(&batch)
            .unwrap_or_else(|| panic!("completion for undeclared batch {batch}"));
        let pos = p
            .writers
            .iter()
            .position(|&w| w == writer)
            .unwrap_or_else(|| {
                panic!("rank {writer} is not an outstanding writer of batch {batch}")
            });
        p.writers.swap_remove(pos);
        if p.writers.is_empty() {
            let p = t.pending.remove(&batch).unwrap();
            t.log.push(CommitEntry {
                batch,
                queries: p.queries,
                bytes: p.bytes,
                base: p.base,
                committed_at: now,
            });
        }
    }

    /// Batches still awaiting a durable write from `writer`, ascending.
    pub fn unfinished_for(&self, writer: usize) -> Vec<usize> {
        let t = self.inner.borrow();
        let mut out: Vec<usize> = t
            .pending
            .iter()
            .filter(|(_, p)| p.writers.contains(&writer))
            .map(|(&b, _)| b)
            .collect();
        out.sort_unstable();
        out
    }

    /// True when no declared batch is still awaiting a writer.
    pub fn pending_empty(&self) -> bool {
        self.inner.borrow().pending.is_empty()
    }

    /// Has this batch ever been declared (pending or already durable)?
    /// A shard successor uses this to tell laid-out batches — whose
    /// pending writes the surviving workers will still complete — from
    /// batches that died with their owner and must be rebuilt.
    pub fn is_known(&self, batch: usize) -> bool {
        let t = self.inner.borrow();
        t.pending.contains_key(&batch) || t.log.iter().any(|e| e.batch == batch)
    }

    /// Extract the commit log (entries sorted by commit time).
    pub fn finish(&self) -> CommitLog {
        let mut t = self.inner.borrow_mut();
        assert!(
            t.pending.is_empty(),
            "batches never committed: {:?}",
            t.pending.keys().collect::<Vec<_>>()
        );
        let mut entries = std::mem::take(&mut t.log);
        entries.sort_by_key(|e| (e.committed_at, e.batch));
        let mut log = CommitLog::default();
        for e in entries {
            log.push(e);
        }
        log
    }
}

/// Where a killed run can restart from: the durable, gapless prefix of
/// the output file plus the batches it covers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumePoint {
    /// Batches whose output survives in the durable prefix (ascending).
    pub done_batches: Vec<usize>,
    /// First byte the restarted run must produce; everything below is on
    /// disk and verified contiguous.
    pub base_offset: u64,
}

/// Compute the restart point of a run killed at `at`.
///
/// Batches may commit out of file order (free-running workers finish
/// late-assigned batches first), so the durable set can have holes. A
/// restart can only trust the longest extent prefix that is contiguous
/// from byte 0 — a committed batch above a hole is redone, because the
/// hole's batch will rewrite the bytes in between on the second run.
pub fn restart_point(log: &CommitLog, at: SimTime) -> ResumePoint {
    let mut durable: Vec<&CommitEntry> = log
        .entries()
        .iter()
        .take_while(|e| e.committed_at <= at)
        .collect();
    durable.sort_by_key(|e| e.base);
    let mut point = ResumePoint::default();
    for e in durable {
        if e.base != point.base_offset {
            break; // hole (or overlap): the prefix ends here
        }
        point.done_batches.push(e.batch);
        point.base_offset += e.bytes;
    }
    point.done_batches.sort_unstable();
    point
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for CommitTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitTracker").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn log3() -> CommitLog {
        let mut log = CommitLog::default();
        log.push(CommitEntry {
            batch: 0,
            queries: 2,
            bytes: 100,
            base: 0,
            committed_at: s(10),
        });
        log.push(CommitEntry {
            batch: 1,
            queries: 2,
            bytes: 150,
            base: 100,
            committed_at: s(25),
        });
        log.push(CommitEntry {
            batch: 2,
            queries: 2,
            bytes: 120,
            base: 250,
            committed_at: s(60),
        });
        log
    }

    #[test]
    fn committed_by_counts_prefix() {
        let log = log3();
        assert_eq!(log.committed_by(s(5)), 0);
        assert_eq!(log.committed_by(s(10)), 1);
        assert_eq!(log.committed_by(s(30)), 2);
        assert_eq!(log.committed_by(s(100)), 3);
        assert_eq!(log.bytes_committed_by(s(30)), 250);
        assert_eq!(log.resumable_queries_at(s(30)), 4);
    }

    #[test]
    fn crash_report_accounts_for_lost_work() {
        let log = log3();
        let r = log.crash_at(s(30), s(60), 6);
        assert_eq!(r.resumable_queries, 4);
        assert_eq!(r.lost_queries, 2);
        assert_eq!(r.lost_time, s(5)); // last commit at 25
                                       // Crash before any commit loses everything.
        let r0 = log.crash_at(s(9), s(60), 6);
        assert_eq!(r0.resumable_queries, 0);
        assert_eq!(r0.lost_queries, 6);
        assert_eq!(r0.lost_time, s(9));
    }

    #[test]
    fn crash_time_clamped_to_run() {
        let log = log3();
        let r = log.crash_at(s(1000), s(60), 6);
        assert_eq!(r.at, s(60));
        assert_eq!(r.resumable_queries, 6);
        assert_eq!(r.lost_queries, 0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_commit_rejected() {
        let mut log = log3();
        log.push(CommitEntry {
            batch: 3,
            queries: 1,
            bytes: 1,
            base: 370,
            committed_at: s(1),
        });
    }

    #[test]
    fn expected_lost_time_favours_frequent_commits() {
        // One commit halfway vs none at all.
        let mut sparse = CommitLog::default();
        sparse.push(CommitEntry {
            batch: 0,
            queries: 1,
            bytes: 1,
            base: 0,
            committed_at: s(30),
        });
        let none = CommitLog::default();
        let e_sparse = expected_lost_time(&sparse, s(60));
        let e_none = expected_lost_time(&none, s(60));
        assert!(e_sparse < e_none);
        assert_eq!(e_none, s(30)); // uniform crash over [0,60): mean 30
                                   // Frequent commits shrink it further.
        let dense = log3();
        assert!(expected_lost_time(&dense, s(60)) < e_sparse);
    }

    #[test]
    fn tracker_commits_when_last_writer_finishes() {
        let tr = CommitTracker::new();
        tr.expect(0, vec![1, 2], 1, 50, 0, s(1));
        tr.expect(1, vec![], 1, 0, 50, s(2)); // empty batch commits immediately
        tr.complete_by(0, 2, s(5));
        assert!(!tr.pending_empty());
        tr.complete_by(0, 1, s(9));
        assert!(tr.pending_empty());
        let log = tr.finish();
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[0].batch, 1);
        assert_eq!(log.entries()[1].committed_at, s(9));
        assert_eq!(log.entries()[1].base, 0);
    }

    #[test]
    #[should_panic(expected = "never committed")]
    fn tracker_detects_missing_completions() {
        let tr = CommitTracker::new();
        tr.expect(0, vec![1], 1, 10, 0, s(0));
        tr.finish();
    }

    #[test]
    #[should_panic(expected = "not an outstanding writer")]
    fn tracker_rejects_unknown_writer() {
        let tr = CommitTracker::new();
        tr.expect(0, vec![1], 1, 10, 0, s(0));
        tr.complete_by(0, 7, s(1));
    }

    #[test]
    fn tracker_reports_a_dead_workers_debts() {
        let tr = CommitTracker::new();
        tr.expect(0, vec![1, 2], 1, 10, 0, s(0));
        tr.expect(1, vec![2], 1, 10, 10, s(0));
        tr.expect(2, vec![1], 1, 10, 20, s(0));
        tr.complete_by(2, 1, s(1));
        assert_eq!(tr.unfinished_for(1), vec![0]);
        assert_eq!(tr.unfinished_for(2), vec![0, 1]);
        // A survivor clears rank 2's debts on its behalf.
        tr.complete_by(0, 1, s(2));
        tr.complete_by(0, 2, s(3));
        tr.complete_by(1, 2, s(3));
        assert!(tr.unfinished_for(2).is_empty());
        assert_eq!(tr.finish().entries().len(), 3);
    }

    #[test]
    fn restart_point_takes_contiguous_prefix() {
        let log = log3();
        // Killed between commits 2 and 3: two batches durable, contiguous.
        let p = restart_point(&log, s(30));
        assert_eq!(p.done_batches, vec![0, 1]);
        assert_eq!(p.base_offset, 250);
        // Killed before anything committed.
        assert_eq!(restart_point(&log, s(5)), ResumePoint::default());
        // Killed after the end: everything durable.
        let p = restart_point(&log, s(100));
        assert_eq!(p.done_batches, vec![0, 1, 2]);
        assert_eq!(p.base_offset, 370);
    }

    #[test]
    fn restart_point_stops_at_extent_hole() {
        // Batch 2 (extent [250,370)) committed before batch 1 ([100,250))
        // — free-running workers finish out of order. A crash after batch
        // 2's commit but before batch 1's can only trust batch 0's bytes.
        let mut log = CommitLog::default();
        log.push(CommitEntry {
            batch: 0,
            queries: 1,
            bytes: 100,
            base: 0,
            committed_at: s(10),
        });
        log.push(CommitEntry {
            batch: 2,
            queries: 1,
            bytes: 120,
            base: 250,
            committed_at: s(20),
        });
        log.push(CommitEntry {
            batch: 1,
            queries: 1,
            bytes: 150,
            base: 100,
            committed_at: s(40),
        });
        let p = restart_point(&log, s(25));
        assert_eq!(p.done_batches, vec![0]);
        assert_eq!(p.base_offset, 100);
        // Once batch 1 lands the hole closes and all three count.
        let p = restart_point(&log, s(40));
        assert_eq!(p.done_batches, vec![0, 1, 2]);
        assert_eq!(p.base_offset, 370);
    }

    #[test]
    fn empty_run_is_degenerate() {
        let log = CommitLog::default();
        assert_eq!(expected_lost_time(&log, SimTime::ZERO), SimTime::ZERO);
        assert_eq!(log.committed_by(s(1)), 0);
    }
}
