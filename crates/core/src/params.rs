//! Simulation parameters: the I/O strategy under test, the workload, and
//! the modeled testbed.

use s3a_des::SimTime;
use s3a_faults::FaultParams;
use s3a_mpi::MpiConfig;
use s3a_net::{Bandwidth, NetConfig};
use s3a_pvfs::PvfsConfig;
use s3a_workload::{ArrivalProcess, WorkloadParams};

use crate::resume::ResumePoint;

/// Most tenants a service run may model. Per-tenant latency series carry
/// `&'static` metric names in the observability registry, so the tenant
/// space is a small fixed set rather than an open-ended one.
pub const MAX_TENANTS: usize = 8;

/// The result-writing strategy (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Master-writing: workers ship scores *and* result data to the
    /// master, which writes each completed batch contiguously (§2.1,
    /// mpiBLAST-style).
    Mw,
    /// Worker-writing with POSIX noncontiguous I/O: one independent write
    /// per result region (§2.3).
    WwPosix,
    /// Worker-writing with PVFS2 list I/O: region lists batched per
    /// file-system request (§2.3).
    WwList,
    /// Worker-writing with collective two-phase I/O (§2.2,
    /// pioBLAST-style).
    WwColl,
    /// Worker-writing with list I/O plus a forced synchronization after
    /// every batch — the "collective implemented with list I/O" the
    /// paper's conclusion proposes as a better collective method.
    WwCollList,
    /// Worker-writing with ROMIO-style data sieving (Thakur, Gropp &
    /// Lusk): per covering block of at most `ind_wr_buffer_size` bytes,
    /// lock the block, read it back, patch the holes, and write it out
    /// as one contiguous request — real ROMIO's independent
    /// noncontiguous path, which the paper's WW-POSIX deliberately
    /// leaves unoptimized.
    WwSieve,
}

impl Strategy {
    /// All strategies the paper evaluates, in its presentation order.
    pub const PAPER_SET: [Strategy; 4] = [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwColl,
    ];

    /// The paper's strategies plus the data-sieving extension — the set
    /// the repro harness runs end to end.
    pub const EXTENDED_SET: [Strategy; 5] = [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwColl,
        Strategy::WwSieve,
    ];

    /// True for the strategies in which workers write their own results.
    pub fn workers_write(self) -> bool {
        !matches!(self, Strategy::Mw)
    }

    /// True when the strategy itself forces workers to synchronize around
    /// each batch's I/O regardless of the `query_sync` option.
    pub fn inherently_synchronizing(self) -> bool {
        matches!(self, Strategy::WwColl | Strategy::WwCollList)
    }

    /// Short label used in reports (matches the paper's terminology).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Mw => "MW",
            Strategy::WwPosix => "WW-POSIX",
            Strategy::WwList => "WW-List",
            Strategy::WwColl => "WW-Coll",
            Strategy::WwCollList => "WW-CollList",
            Strategy::WwSieve => "WW-DS",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the master picks the next task when a worker asks for work in
/// service mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Serve admitted queries strictly in arrival order.
    #[default]
    Fifo,
    /// Shortest job first: among admitted queries, dispatch the one with
    /// the smallest total result volume (the simulator's size oracle
    /// stands in for a production size estimator). Classic tail-latency
    /// winner under heavy-tailed job sizes; starves the largest jobs
    /// under overload.
    Sjf,
    /// Fair share across tenants: pick the tenant with the least result
    /// bytes dispatched so far, then its earliest-arrived query.
    FairShare,
}

impl SchedPolicy {
    /// Every policy, in presentation order.
    pub const ALL: [SchedPolicy; 3] = [SchedPolicy::Fifo, SchedPolicy::Sjf, SchedPolicy::FairShare];

    /// Short label used in reports and CSV rows.
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "FIFO",
            SchedPolicy::Sjf => "SJF",
            SchedPolicy::FairShare => "FAIR",
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Service-mode knobs: the arrival stream, the scheduling policy, and the
/// admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceParams {
    /// How simulated clients submit queries over virtual time.
    pub arrivals: ArrivalProcess,
    /// Master-side scheduling policy.
    pub policy: SchedPolicy,
    /// Tenants sharing the service (`1..=MAX_TENANTS`); each arrival is
    /// attributed to one tenant by the seeded stream.
    pub tenants: usize,
    /// Bounded admission queue: most queries that may sit admitted but
    /// not yet dispatched. An arrival that finds the queue full is shed
    /// (counted, never run) instead of growing the backlog without bound.
    pub queue_capacity: usize,
    /// Seed for the arrival stream (independent of the workload seed, so
    /// the same queries can be replayed under a different traffic trace).
    pub arrival_seed: u64,
    /// Idle back-off: how long a worker waits after a `Wait` assignment
    /// before asking for work again (no arrival may be due yet).
    pub poll_interval: SimTime,
}

impl Default for ServiceParams {
    fn default() -> Self {
        ServiceParams {
            arrivals: ArrivalProcess::Poisson { rate: 4.0 },
            policy: SchedPolicy::Fifo,
            tenants: 2,
            queue_capacity: 64,
            arrival_seed: 7,
            poll_interval: SimTime::from_millis(5),
        }
    }
}

/// What one run models: a closed batch (the paper's setting) or an
/// open-loop service under client traffic.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RunMode {
    /// All queries are present at time zero; the run measures makespan.
    #[default]
    Batch,
    /// Queries arrive over virtual time; the run measures per-query
    /// latency under admission control and a scheduling policy.
    Service(ServiceParams),
}

/// How the search is partitioned across workers (paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Segmentation {
    /// Database segmentation (the paper's focus): queries are replicated,
    /// database fragments are searched on demand by any worker.
    #[default]
    Database,
    /// Query segmentation: the database is replicated (or streamed from
    /// the file system when it exceeds worker memory) and whole queries
    /// are distributed — the approach the paper's introduction argues
    /// stops scaling as databases outgrow memory.
    Query,
}

/// The modeled search-time and cluster constants. Defaults reproduce the
/// paper's Feynman/PVFS2 testbed behaviour; see EXPERIMENTS.md for the
/// calibration notes.
#[derive(Debug, Clone, Copy)]
pub struct Testbed {
    /// Interconnect model (Myrinet-2000-like).
    pub net: NetConfig,
    /// MPI layer configuration (protocol thresholds, ranks per node).
    pub mpi: MpiConfig,
    /// File system model (16 PVFS2 servers, 64 KiB strips).
    pub pvfs: PvfsConfig,
    /// Fixed startup cost of searching one (query, fragment) task at
    /// compute speed 1 (the paper's "constant startup cost").
    pub compute_startup: SimTime,
    /// Search time per byte of result produced, at compute speed 1 (the
    /// paper's "linear time based on the size of the result").
    pub compute_per_result_byte: SimTime,
    /// Worker-side cost of merging one hit into the per-query result list
    /// (the Merge Results phase; the master's merge is free, as in §3).
    pub merge_per_hit: SimTime,
    /// Maximum result-send operations a worker keeps in flight before
    /// waiting on the oldest (bounded send buffering).
    pub max_outstanding_result_sends: usize,
    /// Memory available for caching database data on one worker (the
    /// paper's nodes had 1 GB); only query-segmentation runs consult it.
    pub worker_memory: u64,
}

impl Default for Testbed {
    fn default() -> Self {
        let net = NetConfig {
            latency: SimTime::from_micros(8),
            bandwidth: Bandwidth::mib_per_sec(240.0),
            per_message_overhead: SimTime::from_micros(150),
        };
        Testbed {
            net,
            mpi: MpiConfig {
                net,
                eager_threshold: 16 * 1024,
                header_bytes: 64,
                ranks_per_node: 2,
            },
            pvfs: PvfsConfig::default(),
            compute_startup: SimTime::from_millis(30),
            compute_per_result_byte: SimTime::from_nanos(1250),
            merge_per_hit: SimTime::from_micros(2),
            max_outstanding_result_sends: 8,
            worker_memory: 1024 * 1024 * 1024,
        }
    }
}

/// Everything that defines one S3aSim run.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Total MPI processes (`num_masters` masters + the rest workers);
    /// the paper sweeps 2–96.
    pub procs: usize,
    /// Master ranks (`0..num_masters`). The default 1 reproduces the
    /// paper's single master exactly; more shards partition the query
    /// space, home workers round-robin, and steal tasks between shards
    /// (rank 0 doubles as the coordinator).
    pub num_masters: usize,
    /// Sharded mode only: split every `(query, fragment)` task into this
    /// many sub-fragment tasks so work stealing has fine grain to move
    /// (1 = whole fragments, the classic grain).
    pub subfragment_factor: usize,
    /// The I/O strategy under test.
    pub strategy: Strategy,
    /// The "query sync" option: force all workers to synchronize after
    /// each batch's I/O (§3.3).
    pub query_sync: bool,
    /// Relative compute speed; >1 models faster hardware or better search
    /// algorithms (the paper sweeps 0.1–25.6).
    pub compute_speed: f64,
    /// Write results after every `n` queries (paper default 1; a value of
    /// `>= workload.queries` reproduces mpiBLAST 1.2 / pioBLAST
    /// write-at-end behaviour).
    pub write_every_n_queries: usize,
    /// Two-phase collective aggregator count (0 = one aggregator per
    /// node, ROMIO's default).
    pub cb_nodes: usize,
    /// Two-phase collective buffer size per aggregator per round.
    pub cb_buffer_size: u64,
    /// Data-sieving buffer size for WW-DS independent noncontiguous
    /// writes (ROMIO's `ind_wr_buffer_size`; its default is 512 KiB).
    pub ind_wr_buffer_size: u64,
    /// Work-partitioning scheme (database segmentation is the paper's
    /// subject; query segmentation reproduces the introduction's
    /// motivation).
    pub segmentation: Segmentation,
    /// MW only: overlap the master's writes with task distribution using
    /// nonblocking I/O (one batch in flight — the paper notes blocking
    /// I/O is the norm "to avoid overloading the memory of the master",
    /// so the overlap is bounded to one batch's worth of buffering).
    pub mw_nonblocking_io: bool,
    /// Record a per-rank phase timeline (MPE/Jumpshot-style; see
    /// [`crate::trace`]).
    pub trace: bool,
    /// Record request-level observability: per-request lifecycle spans,
    /// collective exchange rounds, queue-depth series, and the metrics
    /// registry (see [`crate::observe`]). Off by default — a disabled sink
    /// costs nothing on the hot path.
    pub observe: bool,
    /// Arm the simulated-cluster race sanitizer (`SimSanitizer`): flag
    /// unlocked overlapping concurrent writes, reads of foreign unflushed
    /// bytes, and partial collectives. Pure bookkeeping in virtual time —
    /// a clean run's report is bit-identical with the sanitizer on or
    /// off. Off by default.
    pub sanitize: bool,
    /// Deterministic fault injection: worker crashes, message faults, and
    /// file-server misbehaviour (all off by default).
    pub faults: FaultParams,
    /// Restart from a prior run's durable checkpoint: the listed batches
    /// are skipped and output starts at the recorded base offset.
    pub resume_from: Option<ResumePoint>,
    /// Batch (default) or open-loop service mode.
    pub mode: RunMode,
    /// The synthetic search workload.
    pub workload: WorkloadParams,
    /// Cluster and compute-model constants.
    pub testbed: Testbed,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            procs: 16,
            num_masters: 1,
            subfragment_factor: 1,
            strategy: Strategy::WwList,
            query_sync: false,
            compute_speed: 1.0,
            write_every_n_queries: 1,
            // Calibrated aggregator count: reproduces the modest two-phase
            // throughput the paper measured through ROMIO's default
            // collective-buffering configuration (see EXPERIMENTS.md).
            cb_nodes: 6,
            cb_buffer_size: 4 * 1024 * 1024,
            ind_wr_buffer_size: 512 * 1024,
            segmentation: Segmentation::Database,
            mw_nonblocking_io: false,
            trace: false,
            observe: false,
            sanitize: false,
            faults: FaultParams::default(),
            resume_from: None,
            mode: RunMode::Batch,
            workload: WorkloadParams::default(),
            testbed: Testbed::default(),
        }
    }
}

impl SimParams {
    /// Number of worker processes.
    pub fn workers(&self) -> usize {
        self.procs.saturating_sub(self.num_masters)
    }

    /// Is this a sharded-master run (more than one master rank)?
    pub fn sharded(&self) -> bool {
        self.num_masters > 1
    }

    /// Time to search one task that produces `result_bytes` of output.
    pub fn compute_time(&self, result_bytes: u64) -> SimTime {
        self.compute_time_multi(result_bytes, 1)
    }

    /// Compute time for a task equivalent to `startups` fragment searches
    /// producing `result_bytes` in total (a query-segmentation task scans
    /// every fragment, paying the startup cost once per fragment).
    pub fn compute_time_multi(&self, result_bytes: u64, startups: usize) -> SimTime {
        assert!(self.compute_speed > 0.0, "compute speed must be positive");
        let base = self.testbed.compute_startup.as_secs_f64() * startups as f64
            + self.testbed.compute_per_result_byte.as_secs_f64() * result_bytes as f64;
        SimTime::from_secs_f64(base / self.compute_speed)
    }

    /// The service-mode parameters, when this run is a service run.
    pub fn service(&self) -> Option<&ServiceParams> {
        match &self.mode {
            RunMode::Batch => None,
            RunMode::Service(sp) => Some(sp),
        }
    }

    /// Is this an open-loop service run?
    pub fn is_service(&self) -> bool {
        matches!(self.mode, RunMode::Service(_))
    }

    /// Queries per write batch for a workload of `nq` queries. Service
    /// runs always write per query — each query's reply time is its own
    /// batch commit — while batch runs group `write_every_n_queries`.
    pub fn batch_granularity(&self, nq: usize) -> usize {
        if self.is_service() {
            1
        } else {
            self.write_every_n_queries.min(nq)
        }
    }

    /// Bytes a query-segmentation worker must re-read from the file
    /// system for every query (the part of the database that does not fit
    /// in its memory).
    pub fn db_reload_bytes(&self) -> u64 {
        self.workload
            .database_bytes
            .saturating_sub(self.testbed.worker_memory)
    }

    /// Start building a parameter set from the paper defaults. Every
    /// setter is infallible; [`SimParamsBuilder::build`] checks the
    /// combination and returns a typed [`ParamError`] instead of
    /// panicking.
    pub fn builder() -> SimParamsBuilder {
        SimParamsBuilder::default()
    }

    /// Check the parameter combination, returning a typed error for every
    /// nonsense configuration (fewer than 2 procs, zero batch size, ...).
    pub fn try_validate(&self) -> Result<(), ParamError> {
        if self.procs < 2 {
            return Err(ParamError::TooFewProcs { procs: self.procs });
        }
        // NaN must be rejected too, hence the explicit is_nan check.
        if self.compute_speed.is_nan() || self.compute_speed <= 0.0 {
            return Err(ParamError::NonPositiveComputeSpeed {
                speed: self.compute_speed,
            });
        }
        if self.write_every_n_queries < 1 {
            return Err(ParamError::ZeroBatchSize);
        }
        if self.cb_buffer_size == 0 {
            return Err(ParamError::ZeroCbBufferSize);
        }
        if self.ind_wr_buffer_size == 0 {
            return Err(ParamError::ZeroIndWrBuffer);
        }
        let pv = &self.testbed.pvfs;
        if pv.replicas == 0 {
            return Err(ParamError::ZeroReplicas);
        }
        if pv.write_quorum == 0 || pv.write_quorum > pv.replicas {
            return Err(ParamError::InvalidWriteQuorum {
                quorum: pv.write_quorum,
                replicas: pv.replicas,
            });
        }
        let domains = s3a_pvfs::effective_domains(pv.servers, pv.failure_domains);
        if pv.replicas > domains {
            return Err(ParamError::ReplicasExceedDomains {
                replicas: pv.replicas,
                domains,
            });
        }
        if self.faults.max_io_retries == 0 {
            return Err(ParamError::ZeroRetryLimit);
        }
        if self.num_masters == 0 {
            return Err(ParamError::ZeroMasters);
        }
        if self.sharded() {
            if self.workers() == 0 {
                return Err(ParamError::MastersNeedWorker {
                    masters: self.num_masters,
                    procs: self.procs,
                });
            }
            if self.query_sync || self.strategy.inherently_synchronizing() {
                return Err(ParamError::ShardsNeedFreeRunningWorkers {
                    strategy: self.strategy,
                    query_sync: self.query_sync,
                });
            }
            if self.segmentation == Segmentation::Query {
                return Err(ParamError::ShardsQuerySegUnsupported);
            }
            if self.is_service() {
                return Err(ParamError::ShardsServiceUnsupported);
            }
            if self.resume_from.is_some() {
                return Err(ParamError::ShardsResumeUnsupported);
            }
            if self.faults.crashes() {
                return Err(ParamError::ShardsWorkerCrashesUnsupported);
            }
        }
        if self.subfragment_factor == 0 {
            return Err(ParamError::ZeroSubfragmentFactor);
        }
        if self.subfragment_factor > 1 && !self.sharded() {
            return Err(ParamError::SubfragmentsNeedShards);
        }
        if self.faults.master_crashes() {
            if !self.sharded() {
                return Err(ParamError::MasterCrashesNeedShards);
            }
            for &(rank, _) in &self.faults.master_crashes {
                if !(1..self.num_masters).contains(&rank) {
                    return Err(ParamError::CrashRankNotStandbyMaster {
                        rank,
                        masters: self.num_masters,
                    });
                }
            }
            if self.faults.heartbeat_interval >= self.faults.detection_timeout {
                return Err(ParamError::HeartbeatNotUnderTimeout {
                    interval: self.faults.heartbeat_interval,
                    timeout: self.faults.detection_timeout,
                });
            }
        }
        if self.faults.crashes() {
            if self.query_sync || self.strategy.inherently_synchronizing() {
                return Err(ParamError::CrashesNeedFreeRunningWorkers {
                    strategy: self.strategy,
                    query_sync: self.query_sync,
                });
            }
            if self.faults.worker_crashes.len() >= self.workers() {
                return Err(ParamError::NoSurvivingWorker {
                    crashes: self.faults.worker_crashes.len(),
                    workers: self.workers(),
                });
            }
            for &(rank, _) in &self.faults.worker_crashes {
                if !(1..self.procs).contains(&rank) {
                    return Err(ParamError::CrashRankNotWorker {
                        rank,
                        procs: self.procs,
                    });
                }
            }
            if self.faults.heartbeat_interval >= self.faults.detection_timeout {
                return Err(ParamError::HeartbeatNotUnderTimeout {
                    interval: self.faults.heartbeat_interval,
                    timeout: self.faults.detection_timeout,
                });
            }
        }
        if let Some(sp) = self.service() {
            let rates = match sp.arrivals {
                ArrivalProcess::Poisson { rate } => [rate, rate],
                ArrivalProcess::Bursty {
                    base_rate,
                    burst_rate,
                    ..
                } => [base_rate, burst_rate],
                ArrivalProcess::Diurnal {
                    trough_rate,
                    peak_rate,
                    ..
                } => [trough_rate, peak_rate],
            };
            for rate in rates {
                if rate.is_nan() || rate <= 0.0 {
                    return Err(ParamError::ZeroArrivalRate { rate });
                }
            }
            let shape: Option<(&'static str, f64)> = match &sp.arrivals {
                ArrivalProcess::Poisson { .. } => None,
                ArrivalProcess::Bursty { mean_dwell, .. } => Some(("mean_dwell", *mean_dwell)),
                ArrivalProcess::Diurnal { period, .. } => Some(("period", *period)),
            };
            if let Some((what, value)) = shape {
                if value.is_nan() || value <= 0.0 {
                    return Err(ParamError::NonPositiveArrivalShape { what, value });
                }
            }
            if sp.queue_capacity == 0 {
                return Err(ParamError::ZeroServiceQueue);
            }
            if sp.tenants == 0 || sp.tenants > MAX_TENANTS {
                return Err(ParamError::TenantsOutOfRange {
                    tenants: sp.tenants,
                    max: MAX_TENANTS,
                });
            }
            if sp.poll_interval == SimTime::ZERO {
                return Err(ParamError::ZeroPollInterval);
            }
            if self.faults.crashes() {
                return Err(ParamError::ServiceCrashesUnsupported);
            }
            if self.resume_from.is_some() {
                return Err(ParamError::ServiceResumeUnsupported);
            }
        }
        Ok(())
    }
}

/// Why a parameter combination was rejected — one variant per invariant
/// the old panicking `validate()` asserted.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// Fewer than 2 processes: a run needs at least 1 master + 1 worker.
    TooFewProcs {
        /// The rejected process count.
        procs: usize,
    },
    /// Compute speed must be positive (and finite enough to compare).
    NonPositiveComputeSpeed {
        /// The rejected multiplier.
        speed: f64,
    },
    /// `write_every_n_queries` must be at least 1.
    ZeroBatchSize,
    /// The two-phase collective buffer cannot be empty.
    ZeroCbBufferSize,
    /// The data-sieving buffer cannot be empty.
    ZeroIndWrBuffer,
    /// Crash injection needs free-running workers: query-sync and
    /// collective strategies recover via checkpoint-restart instead.
    CrashesNeedFreeRunningWorkers {
        /// The synchronizing strategy (or any strategy with query-sync).
        strategy: Strategy,
        /// Whether the query-sync option triggered the rejection.
        query_sync: bool,
    },
    /// Every worker was scheduled to crash; at least one must survive.
    NoSurvivingWorker {
        /// Crashes scheduled.
        crashes: usize,
        /// Workers available.
        workers: usize,
    },
    /// A crash was scheduled for a rank outside `1..procs`.
    CrashRankNotWorker {
        /// The offending rank.
        rank: usize,
        /// Total processes (valid worker ranks are `1..procs`).
        procs: usize,
    },
    /// The heartbeat interval must undercut the detection timeout or the
    /// detector can never distinguish silence from death.
    HeartbeatNotUnderTimeout {
        /// Configured heartbeat interval.
        interval: SimTime,
        /// Configured detection timeout.
        timeout: SimTime,
    },
    /// The replication factor cannot be zero — even an unreplicated file
    /// has its one primary copy.
    ZeroReplicas,
    /// The write quorum must satisfy `1 <= w <= replicas`.
    InvalidWriteQuorum {
        /// The rejected quorum.
        quorum: usize,
        /// The configured replication factor.
        replicas: usize,
    },
    /// Replica placement needs at least as many failure domains as
    /// replicas — otherwise two copies would share a domain.
    ReplicasExceedDomains {
        /// The configured replication factor.
        replicas: usize,
        /// Effective failure-domain count (`0` config = one per server).
        domains: usize,
    },
    /// The I/O retry limit cannot be zero: a single outage tick would
    /// fail every request instantly with no backoff at all.
    ZeroRetryLimit,
    /// A service-mode arrival rate must be positive and finite.
    ZeroArrivalRate {
        /// The rejected rate (queries per second).
        rate: f64,
    },
    /// A service-mode arrival-shape parameter (burst dwell, diurnal
    /// period) must be positive and finite.
    NonPositiveArrivalShape {
        /// Which parameter was rejected.
        what: &'static str,
        /// The rejected value (seconds).
        value: f64,
    },
    /// The service admission queue must hold at least one query —
    /// capacity zero would shed every arrival.
    ZeroServiceQueue,
    /// The tenant count must be in `1..=MAX_TENANTS` (per-tenant metric
    /// names are a small fixed set).
    TenantsOutOfRange {
        /// The rejected tenant count.
        tenants: usize,
        /// The largest supported count ([`MAX_TENANTS`]).
        max: usize,
    },
    /// The service idle poll interval cannot be zero: an idle worker
    /// would re-request work at the same virtual instant forever.
    ZeroPollInterval,
    /// Service mode does not support worker-crash injection (message and
    /// server faults are fine); crash recovery is a batch-mode facility.
    ServiceCrashesUnsupported,
    /// Service mode does not support resuming from a checkpoint: arrivals
    /// are a traffic trace, not a resumable batch.
    ServiceResumeUnsupported,
    /// `num_masters` must be at least 1.
    ZeroMasters,
    /// A sharded run still needs at least one worker rank beyond its
    /// masters.
    MastersNeedWorker {
        /// Configured master count.
        masters: usize,
        /// Total processes.
        procs: usize,
    },
    /// Sharded masters need free-running workers: query-sync and
    /// collective strategies synchronize the whole worker set, which a
    /// partitioned query space cannot provide.
    ShardsNeedFreeRunningWorkers {
        /// The synchronizing strategy (or any strategy with query-sync).
        strategy: Strategy,
        /// Whether the query-sync option triggered the rejection.
        query_sync: bool,
    },
    /// Sharded masters partition the query space across database
    /// segments; query segmentation partitions the opposite axis.
    ShardsQuerySegUnsupported,
    /// Service mode keeps the single-master admission loop.
    ShardsServiceUnsupported,
    /// Sharded runs cannot resume from a single-master checkpoint.
    ShardsResumeUnsupported,
    /// Worker-crash injection is a single-master facility; sharded runs
    /// inject master crashes instead.
    ShardsWorkerCrashesUnsupported,
    /// `subfragment_factor` must be at least 1.
    ZeroSubfragmentFactor,
    /// Sub-fragment decomposition only exists to give work stealing
    /// grain, so it requires `num_masters > 1`.
    SubfragmentsNeedShards,
    /// A master-crash schedule needs a sharded run to act on.
    MasterCrashesNeedShards,
    /// A master crash was scheduled for a rank that is not a standby
    /// master (`1..num_masters`; rank 0 is the coordinator and must
    /// survive).
    CrashRankNotStandbyMaster {
        /// The offending rank.
        rank: usize,
        /// Configured master count (valid crash ranks are `1..masters`).
        masters: usize,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::TooFewProcs { procs } => {
                write!(f, "need at least 1 master + 1 worker, got {procs} procs")
            }
            ParamError::NonPositiveComputeSpeed { speed } => {
                write!(f, "compute speed must be positive, got {speed}")
            }
            ParamError::ZeroBatchSize => write!(f, "batch size must be >= 1"),
            ParamError::ZeroCbBufferSize => write!(f, "cb_buffer_size must be nonzero"),
            ParamError::ZeroIndWrBuffer => write!(f, "ind_wr_buffer_size must be nonzero"),
            ParamError::CrashesNeedFreeRunningWorkers {
                strategy,
                query_sync,
            } => write!(
                f,
                "crash injection needs free-running workers: {} recovers via \
                 checkpoint-restart instead",
                if *query_sync {
                    "query-sync".to_string()
                } else {
                    format!("the {strategy} collective strategy")
                }
            ),
            ParamError::NoSurvivingWorker { crashes, workers } => write!(
                f,
                "at least one worker must survive the injected crashes \
                 ({crashes} crashes for {workers} workers)"
            ),
            ParamError::CrashRankNotWorker { rank, procs } => {
                write!(f, "crash rank {rank} is not a worker (1..{procs})")
            }
            ParamError::HeartbeatNotUnderTimeout { interval, timeout } => write!(
                f,
                "heartbeat interval {interval} must undercut the detection \
                 timeout {timeout}"
            ),
            ParamError::ZeroReplicas => write!(f, "replicas must be >= 1"),
            ParamError::InvalidWriteQuorum { quorum, replicas } => write!(
                f,
                "write quorum must satisfy 1 <= w <= replicas, got w={quorum} \
                 with r={replicas}"
            ),
            ParamError::ReplicasExceedDomains { replicas, domains } => write!(
                f,
                "replicas ({replicas}) exceed the {domains} effective failure \
                 domains — two copies would share a domain"
            ),
            ParamError::ZeroRetryLimit => write!(f, "retry limit must be >= 1"),
            ParamError::ZeroArrivalRate { rate } => {
                write!(f, "arrival rate must be positive, got {rate}")
            }
            ParamError::NonPositiveArrivalShape { what, value } => {
                write!(f, "arrival {what} must be positive, got {value}")
            }
            ParamError::ZeroServiceQueue => {
                write!(f, "service admission queue capacity must be >= 1")
            }
            ParamError::TenantsOutOfRange { tenants, max } => {
                write!(f, "tenants must be in 1..={max}, got {tenants}")
            }
            ParamError::ZeroPollInterval => {
                write!(f, "service poll interval must be nonzero")
            }
            ParamError::ServiceCrashesUnsupported => write!(
                f,
                "service mode does not support worker-crash injection; \
                 use batch mode for crash-recovery experiments"
            ),
            ParamError::ServiceResumeUnsupported => write!(
                f,
                "service mode cannot resume from a checkpoint; arrivals \
                 are a traffic trace, not a resumable batch"
            ),
            ParamError::ZeroMasters => write!(f, "num_masters must be >= 1"),
            ParamError::MastersNeedWorker { masters, procs } => {
                write!(f, "{masters} masters leave no worker rank in {procs} procs")
            }
            ParamError::ShardsNeedFreeRunningWorkers {
                strategy,
                query_sync,
            } => write!(
                f,
                "sharded masters need free-running workers: {} synchronizes \
                 the whole worker set",
                if *query_sync {
                    "query-sync".to_string()
                } else {
                    format!("the {strategy} collective strategy")
                }
            ),
            ParamError::ShardsQuerySegUnsupported => write!(
                f,
                "sharded masters partition the query space; query \
                 segmentation partitions the opposite axis"
            ),
            ParamError::ShardsServiceUnsupported => {
                write!(f, "service mode keeps the single-master admission loop")
            }
            ParamError::ShardsResumeUnsupported => write!(
                f,
                "sharded runs cannot resume from a single-master checkpoint"
            ),
            ParamError::ShardsWorkerCrashesUnsupported => write!(
                f,
                "worker-crash injection is a single-master facility; \
                 sharded runs inject master crashes instead"
            ),
            ParamError::ZeroSubfragmentFactor => {
                write!(f, "subfragment_factor must be >= 1")
            }
            ParamError::SubfragmentsNeedShards => write!(
                f,
                "subfragment_factor > 1 requires num_masters > 1 (the finer \
                 grain only exists for work stealing)"
            ),
            ParamError::MasterCrashesNeedShards => write!(
                f,
                "master-crash schedules need a sharded run (num_masters > 1)"
            ),
            ParamError::CrashRankNotStandbyMaster { rank, masters } => write!(
                f,
                "master crash rank {rank} is not a standby master \
                 (1..{masters}; rank 0 is the coordinator)"
            ),
        }
    }
}

impl std::error::Error for ParamError {}

/// Fluent constructor for [`SimParams`]: every setter overrides one field
/// of the paper-default configuration, and [`SimParamsBuilder::build`]
/// performs the validation the old panicking `validate()` did — returning
/// a typed [`ParamError`] instead.
///
/// ```
/// use s3asim::{SimParams, Strategy};
/// let params = SimParams::builder()
///     .procs(32)
///     .strategy(Strategy::WwList)
///     .query_sync(true)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(params.procs, 32);
/// assert!(SimParams::builder().procs(1).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimParamsBuilder {
    params: SimParams,
}

impl SimParamsBuilder {
    /// Total MPI processes (1 master + `procs - 1` workers).
    pub fn procs(mut self, procs: usize) -> Self {
        self.params.procs = procs;
        self
    }

    /// The result-writing strategy under test.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.params.strategy = strategy;
        self
    }

    /// Master shard count (ranks `0..n`; 1 = the paper's single master).
    pub fn num_masters(mut self, n: usize) -> Self {
        self.params.num_masters = n;
        self
    }

    /// Sub-fragment tasks per `(query, fragment)` in sharded mode.
    pub fn subfragment_factor(mut self, k: usize) -> Self {
        self.params.subfragment_factor = k;
        self
    }

    /// Force all workers to synchronize after each batch's I/O (§3.3).
    pub fn query_sync(mut self, on: bool) -> Self {
        self.params.query_sync = on;
        self
    }

    /// Relative compute speed (the paper sweeps 0.1–25.6).
    pub fn compute_speed(mut self, speed: f64) -> Self {
        self.params.compute_speed = speed;
        self
    }

    /// Write results after every `n` queries.
    pub fn write_every_n_queries(mut self, n: usize) -> Self {
        self.params.write_every_n_queries = n;
        self
    }

    /// Two-phase collective aggregator count (0 = one per node).
    pub fn cb_nodes(mut self, n: usize) -> Self {
        self.params.cb_nodes = n;
        self
    }

    /// Two-phase collective buffer size per aggregator per round.
    pub fn cb_buffer_size(mut self, bytes: u64) -> Self {
        self.params.cb_buffer_size = bytes;
        self
    }

    /// Data-sieving buffer size for WW-DS noncontiguous writes.
    pub fn ind_wr_buffer_size(mut self, bytes: u64) -> Self {
        self.params.ind_wr_buffer_size = bytes;
        self
    }

    /// Work-partitioning scheme (database vs. query segmentation).
    pub fn segmentation(mut self, seg: Segmentation) -> Self {
        self.params.segmentation = seg;
        self
    }

    /// MW only: overlap the master's writes with task distribution.
    pub fn mw_nonblocking_io(mut self, on: bool) -> Self {
        self.params.mw_nonblocking_io = on;
        self
    }

    /// Record a per-rank phase timeline.
    pub fn trace(mut self, on: bool) -> Self {
        self.params.trace = on;
        self
    }

    /// Record request-level observability (spans, series, metrics).
    pub fn observe(mut self, on: bool) -> Self {
        self.params.observe = on;
        self
    }

    /// Arm the simulated-cluster race sanitizer.
    pub fn sanitize(mut self, on: bool) -> Self {
        self.params.sanitize = on;
        self
    }

    /// Replication factor `r`: copies of every PVFS block, each in a
    /// distinct failure domain. 1 = the paper's unreplicated store.
    pub fn replicas(mut self, r: usize) -> Self {
        self.params.testbed.pvfs.replicas = r;
        self
    }

    /// Write quorum `w <= r`: block copies that must land before a write
    /// reports success.
    pub fn write_quorum(mut self, w: usize) -> Self {
        self.params.testbed.pvfs.write_quorum = w;
        self
    }

    /// Simulated failure domains the PVFS servers are grouped into
    /// (0 = every server its own domain).
    pub fn failure_domains(mut self, domains: usize) -> Self {
        self.params.testbed.pvfs.failure_domains = domains;
        self
    }

    /// Background checksum-scrub period (`SimTime::ZERO` disables it).
    pub fn scrub_interval(mut self, interval: SimTime) -> Self {
        self.params.testbed.pvfs.scrub_interval = interval;
        self
    }

    /// I/O retry budget for server-outage windows — replaces the
    /// schedule's default retry constant. Zero is rejected at build time.
    pub fn retry_limit(mut self, retries: u32) -> Self {
        self.params.faults.max_io_retries = retries;
        self
    }

    /// Backoff between I/O retries during a server outage.
    pub fn backoff_base(mut self, backoff: SimTime) -> Self {
        self.params.faults.io_retry_backoff = backoff;
        self
    }

    /// Deterministic fault injection plan.
    ///
    /// Overwrites the whole plan — call [`SimParamsBuilder::retry_limit`]
    /// / [`SimParamsBuilder::backoff_base`] *after* this to adjust the
    /// retry policy of an injected plan.
    pub fn faults(mut self, faults: FaultParams) -> Self {
        self.params.faults = faults;
        self
    }

    /// Resume from a prior run's durable checkpoint.
    pub fn resume_from(mut self, resume: ResumePoint) -> Self {
        self.params.resume_from = Some(resume);
        self
    }

    /// Batch (default) or open-loop service mode.
    pub fn mode(mut self, mode: RunMode) -> Self {
        self.params.mode = mode;
        self
    }

    /// Run as an open-loop service with these knobs (shorthand for
    /// [`SimParamsBuilder::mode`] with [`RunMode::Service`]).
    pub fn service(mut self, service: ServiceParams) -> Self {
        self.params.mode = RunMode::Service(service);
        self
    }

    /// Mutate the service knobs in place, switching to service mode if
    /// the builder was still in batch mode (keeps the other
    /// [`ServiceParams`] defaults).
    pub fn with_service(mut self, f: impl FnOnce(&mut ServiceParams)) -> Self {
        let mut sp = match self.params.mode {
            RunMode::Service(sp) => sp,
            RunMode::Batch => ServiceParams::default(),
        };
        f(&mut sp);
        self.params.mode = RunMode::Service(sp);
        self
    }

    /// The synthetic search workload.
    pub fn workload(mut self, workload: WorkloadParams) -> Self {
        self.params.workload = workload;
        self
    }

    /// Mutate the workload in place (keeps the other workload defaults).
    pub fn with_workload(mut self, f: impl FnOnce(&mut WorkloadParams)) -> Self {
        f(&mut self.params.workload);
        self
    }

    /// Cluster and compute-model constants.
    pub fn testbed(mut self, testbed: Testbed) -> Self {
        self.params.testbed = testbed;
        self
    }

    /// Mutate the testbed in place (keeps the other testbed defaults).
    pub fn with_testbed(mut self, f: impl FnOnce(&mut Testbed)) -> Self {
        f(&mut self.params.testbed);
        self
    }

    /// Validate the combination and produce the parameter set.
    pub fn build(self) -> Result<SimParams, ParamError> {
        self.params.try_validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_scales_inversely_with_speed() {
        let mut p = SimParams {
            compute_speed: 1.0,
            ..SimParams::default()
        };
        let t1 = p.compute_time(80_000);
        p.compute_speed = 2.0;
        let t2 = p.compute_time(80_000);
        p.compute_speed = 0.5;
        let t05 = p.compute_time(80_000);
        assert!(t2 < t1 && t1 < t05);
        let ratio = t05.as_secs_f64() / t2.as_secs_f64();
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn compute_time_linear_in_result_bytes() {
        let p = SimParams::default();
        let t0 = p.compute_time(0);
        let t1 = p.compute_time(100_000);
        let t2 = p.compute_time(200_000);
        assert_eq!(t0, p.testbed.compute_startup);
        let d1 = t1 - t0;
        let d2 = t2 - t1;
        assert_eq!(d1, d2);
    }

    #[test]
    fn mean_task_time_matches_paper_anchor() {
        // ~81 KB mean task output → ~0.13 s at speed 1, so 63 workers
        // spend ≈ 5.4 s each (≈ 54 s at speed 0.1, the paper's number).
        let p = SimParams::default();
        let t = p.compute_time(81_000).as_secs_f64();
        assert!((0.10..0.17).contains(&t), "mean task compute {t}");
    }

    #[test]
    fn strategy_properties() {
        assert!(!Strategy::Mw.workers_write());
        for s in [
            Strategy::WwPosix,
            Strategy::WwList,
            Strategy::WwColl,
            Strategy::WwSieve,
        ] {
            assert!(s.workers_write());
        }
        assert!(Strategy::WwColl.inherently_synchronizing());
        assert!(Strategy::WwCollList.inherently_synchronizing());
        assert!(!Strategy::WwList.inherently_synchronizing());
        assert!(!Strategy::WwSieve.inherently_synchronizing());
        assert_eq!(Strategy::PAPER_SET.len(), 4);
        assert_eq!(Strategy::EXTENDED_SET.len(), 5);
        assert!(Strategy::EXTENDED_SET.starts_with(&Strategy::PAPER_SET));
        assert_eq!(Strategy::Mw.to_string(), "MW");
        assert_eq!(Strategy::WwSieve.to_string(), "WW-DS");
    }

    #[test]
    fn validate_rejects_single_proc() {
        let p = SimParams {
            procs: 1,
            ..SimParams::default()
        };
        let err = p.try_validate().unwrap_err();
        assert_eq!(err, ParamError::TooFewProcs { procs: 1 });
        assert!(err.to_string().contains("at least 1 master"));
    }

    #[test]
    fn builder_defaults_match_default_params() {
        let built = SimParams::builder().build().expect("defaults are valid");
        let dflt = SimParams::default();
        assert_eq!(built.procs, dflt.procs);
        assert_eq!(built.strategy, dflt.strategy);
        assert_eq!(built.compute_speed, dflt.compute_speed);
        assert_eq!(built.write_every_n_queries, dflt.write_every_n_queries);
        assert_eq!(built.cb_nodes, dflt.cb_nodes);
        assert_eq!(built.segmentation, dflt.segmentation);
    }

    #[test]
    fn builder_rejects_too_few_procs() {
        for procs in [0usize, 1] {
            assert_eq!(
                SimParams::builder().procs(procs).build().unwrap_err(),
                ParamError::TooFewProcs { procs }
            );
        }
    }

    #[test]
    fn builder_rejects_nonpositive_compute_speed() {
        for speed in [0.0, -1.5, f64::NAN] {
            let err = SimParams::builder()
                .compute_speed(speed)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ParamError::NonPositiveComputeSpeed { .. }),
                "speed {speed}: {err:?}"
            );
        }
    }

    #[test]
    fn builder_rejects_zero_batch_size() {
        assert_eq!(
            SimParams::builder()
                .write_every_n_queries(0)
                .build()
                .unwrap_err(),
            ParamError::ZeroBatchSize
        );
    }

    #[test]
    fn builder_rejects_zero_cb_buffer() {
        assert_eq!(
            SimParams::builder().cb_buffer_size(0).build().unwrap_err(),
            ParamError::ZeroCbBufferSize
        );
    }

    #[test]
    fn builder_rejects_zero_sieve_buffer() {
        assert_eq!(
            SimParams::builder()
                .ind_wr_buffer_size(0)
                .build()
                .unwrap_err(),
            ParamError::ZeroIndWrBuffer
        );
    }

    fn one_crash() -> FaultParams {
        FaultParams {
            worker_crashes: vec![(3, SimTime::from_secs(1))],
            ..FaultParams::default()
        }
    }

    #[test]
    fn builder_rejects_crashes_under_sync_or_collectives() {
        let err = SimParams::builder()
            .faults(one_crash())
            .query_sync(true)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ParamError::CrashesNeedFreeRunningWorkers {
                query_sync: true,
                ..
            }
        ));
        let err = SimParams::builder()
            .faults(one_crash())
            .strategy(Strategy::WwColl)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ParamError::CrashesNeedFreeRunningWorkers {
                strategy: Strategy::WwColl,
                query_sync: false,
            }
        ));
    }

    #[test]
    fn builder_rejects_crashing_every_worker() {
        let faults = FaultParams {
            worker_crashes: vec![(1, SimTime::ZERO), (2, SimTime::ZERO)],
            ..FaultParams::default()
        };
        assert_eq!(
            SimParams::builder()
                .procs(3)
                .faults(faults)
                .build()
                .unwrap_err(),
            ParamError::NoSurvivingWorker {
                crashes: 2,
                workers: 2
            }
        );
    }

    #[test]
    fn builder_rejects_crash_rank_outside_workers() {
        for rank in [0usize, 16, 99] {
            let faults = FaultParams {
                worker_crashes: vec![(rank, SimTime::ZERO)],
                ..FaultParams::default()
            };
            assert_eq!(
                SimParams::builder().faults(faults).build().unwrap_err(),
                ParamError::CrashRankNotWorker { rank, procs: 16 }
            );
        }
    }

    #[test]
    fn builder_rejects_heartbeat_at_or_over_timeout() {
        let mut faults = one_crash();
        faults.detection_timeout = faults.heartbeat_interval;
        let err = SimParams::builder().faults(faults).build().unwrap_err();
        assert!(matches!(err, ParamError::HeartbeatNotUnderTimeout { .. }));
    }

    #[test]
    fn builder_accepts_a_valid_crash_plan() {
        let p = SimParams::builder()
            .procs(8)
            .faults(one_crash())
            .build()
            .expect("valid crash plan");
        assert!(p.faults.crashes());
    }

    #[test]
    fn param_errors_render_the_old_messages() {
        // The panicking shim must keep the message fragments callers (and
        // the old tests) matched on.
        assert!(ParamError::TooFewProcs { procs: 1 }
            .to_string()
            .contains("at least 1 master + 1 worker"));
        assert!(ParamError::ZeroBatchSize
            .to_string()
            .contains("batch size must be >= 1"));
        assert!(ParamError::CrashRankNotWorker { rank: 9, procs: 4 }
            .to_string()
            .contains("crash rank 9 is not a worker (1..4)"));
    }

    #[test]
    fn builder_rejects_bad_replication_configs() {
        assert_eq!(
            SimParams::builder().replicas(0).build().unwrap_err(),
            ParamError::ZeroReplicas
        );
        assert_eq!(
            SimParams::builder()
                .replicas(2)
                .write_quorum(3)
                .build()
                .unwrap_err(),
            ParamError::InvalidWriteQuorum {
                quorum: 3,
                replicas: 2
            }
        );
        assert_eq!(
            SimParams::builder()
                .replicas(2)
                .write_quorum(0)
                .build()
                .unwrap_err(),
            ParamError::InvalidWriteQuorum {
                quorum: 0,
                replicas: 2
            }
        );
        // 16 servers in 4 domains cannot hold 5 domain-disjoint copies.
        assert_eq!(
            SimParams::builder()
                .replicas(5)
                .write_quorum(1)
                .failure_domains(4)
                .build()
                .unwrap_err(),
            ParamError::ReplicasExceedDomains {
                replicas: 5,
                domains: 4
            }
        );
    }

    #[test]
    fn builder_rejects_zero_retry_limit() {
        assert_eq!(
            SimParams::builder().retry_limit(0).build().unwrap_err(),
            ParamError::ZeroRetryLimit
        );
    }

    #[test]
    fn builder_replication_and_retry_setters_land_in_params() {
        let p = SimParams::builder()
            .replicas(3)
            .write_quorum(2)
            .failure_domains(4)
            .scrub_interval(SimTime::from_secs(5))
            .retry_limit(7)
            .backoff_base(SimTime::from_millis(3))
            .build()
            .expect("valid replicated config");
        assert_eq!(p.testbed.pvfs.replicas, 3);
        assert_eq!(p.testbed.pvfs.write_quorum, 2);
        assert_eq!(p.testbed.pvfs.failure_domains, 4);
        assert_eq!(p.testbed.pvfs.scrub_interval, SimTime::from_secs(5));
        assert_eq!(p.faults.max_io_retries, 7);
        assert_eq!(p.faults.io_retry_backoff, SimTime::from_millis(3));
    }

    #[test]
    fn builder_rejects_bad_service_configs() {
        let err = SimParams::builder()
            .with_service(|s| s.arrivals = ArrivalProcess::Poisson { rate: 0.0 })
            .build()
            .unwrap_err();
        assert_eq!(err, ParamError::ZeroArrivalRate { rate: 0.0 });
        let err = SimParams::builder()
            .with_service(|s| {
                s.arrivals = ArrivalProcess::Bursty {
                    base_rate: 1.0,
                    burst_rate: -2.0,
                    mean_dwell: 1.0,
                }
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ParamError::ZeroArrivalRate { rate: -2.0 });
        let err = SimParams::builder()
            .with_service(|s| {
                s.arrivals = ArrivalProcess::Diurnal {
                    trough_rate: 1.0,
                    peak_rate: 2.0,
                    period: 0.0,
                }
            })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ParamError::NonPositiveArrivalShape {
                what: "period",
                value: 0.0
            }
        );
        assert_eq!(
            SimParams::builder()
                .with_service(|s| s.queue_capacity = 0)
                .build()
                .unwrap_err(),
            ParamError::ZeroServiceQueue
        );
        for tenants in [0usize, MAX_TENANTS + 1] {
            assert_eq!(
                SimParams::builder()
                    .with_service(|s| s.tenants = tenants)
                    .build()
                    .unwrap_err(),
                ParamError::TenantsOutOfRange {
                    tenants,
                    max: MAX_TENANTS
                }
            );
        }
        assert_eq!(
            SimParams::builder()
                .with_service(|s| s.poll_interval = SimTime::ZERO)
                .build()
                .unwrap_err(),
            ParamError::ZeroPollInterval
        );
        assert_eq!(
            SimParams::builder()
                .procs(8)
                .faults(one_crash())
                .service(ServiceParams::default())
                .build()
                .unwrap_err(),
            ParamError::ServiceCrashesUnsupported
        );
        assert_eq!(
            SimParams::builder()
                .resume_from(ResumePoint::default())
                .service(ServiceParams::default())
                .build()
                .unwrap_err(),
            ParamError::ServiceResumeUnsupported
        );
    }

    #[test]
    fn service_mode_helpers_and_defaults() {
        let batch = SimParams::builder().build().expect("valid");
        assert!(!batch.is_service());
        assert!(batch.service().is_none());
        assert_eq!(batch.mode, RunMode::Batch);
        // Batch granularity unchanged by the mode machinery.
        assert_eq!(batch.batch_granularity(20), 1);
        let grouped = SimParams::builder()
            .write_every_n_queries(5)
            .build()
            .expect("valid");
        assert_eq!(grouped.batch_granularity(20), 5);
        assert_eq!(grouped.batch_granularity(3), 3);

        let svc = SimParams::builder()
            .service(ServiceParams::default())
            .write_every_n_queries(5)
            .build()
            .expect("service defaults are valid");
        assert!(svc.is_service());
        let sp = svc.service().expect("service params");
        assert_eq!(sp.policy, SchedPolicy::Fifo);
        assert_eq!(sp.tenants, 2);
        // Service runs always write per query.
        assert_eq!(svc.batch_granularity(20), 1);
    }

    #[test]
    fn sched_policy_labels() {
        assert_eq!(SchedPolicy::ALL.len(), 3);
        assert_eq!(SchedPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(SchedPolicy::Sjf.to_string(), "SJF");
        assert_eq!(SchedPolicy::FairShare.to_string(), "FAIR");
    }

    #[test]
    fn builder_setters_cover_every_field() {
        let p = SimParams::builder()
            .procs(4)
            .strategy(Strategy::Mw)
            .query_sync(true)
            .compute_speed(2.0)
            .write_every_n_queries(3)
            .cb_nodes(2)
            .cb_buffer_size(1024)
            .ind_wr_buffer_size(64 * 1024)
            .segmentation(Segmentation::Query)
            .mw_nonblocking_io(true)
            .trace(true)
            .observe(true)
            .sanitize(true)
            .with_workload(|w| w.queries = 2)
            .with_testbed(|t| t.pvfs.servers = 4)
            .build()
            .expect("valid");
        assert_eq!(p.procs, 4);
        assert_eq!(p.strategy, Strategy::Mw);
        assert!(p.query_sync);
        assert_eq!(p.compute_speed, 2.0);
        assert_eq!(p.write_every_n_queries, 3);
        assert_eq!(p.cb_nodes, 2);
        assert_eq!(p.cb_buffer_size, 1024);
        assert_eq!(p.ind_wr_buffer_size, 64 * 1024);
        assert_eq!(p.segmentation, Segmentation::Query);
        assert!(p.mw_nonblocking_io);
        assert!(p.trace);
        assert!(p.observe);
        assert!(p.sanitize);
        assert_eq!(p.workload.queries, 2);
        assert_eq!(p.testbed.pvfs.servers, 4);
    }
}
