//! Simulation parameters: the I/O strategy under test, the workload, and
//! the modeled testbed.

use s3a_des::SimTime;
use s3a_faults::FaultParams;
use s3a_mpi::MpiConfig;
use s3a_net::{Bandwidth, NetConfig};
use s3a_pvfs::PvfsConfig;
use s3a_workload::WorkloadParams;

use crate::resume::ResumePoint;

/// The result-writing strategy (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Master-writing: workers ship scores *and* result data to the
    /// master, which writes each completed batch contiguously (§2.1,
    /// mpiBLAST-style).
    Mw,
    /// Worker-writing with POSIX noncontiguous I/O: one independent write
    /// per result region (§2.3).
    WwPosix,
    /// Worker-writing with PVFS2 list I/O: region lists batched per
    /// file-system request (§2.3).
    WwList,
    /// Worker-writing with collective two-phase I/O (§2.2,
    /// pioBLAST-style).
    WwColl,
    /// Worker-writing with list I/O plus a forced synchronization after
    /// every batch — the "collective implemented with list I/O" the
    /// paper's conclusion proposes as a better collective method.
    WwCollList,
}

impl Strategy {
    /// All strategies the paper evaluates, in its presentation order.
    pub const PAPER_SET: [Strategy; 4] = [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwColl,
    ];

    /// True for the strategies in which workers write their own results.
    pub fn workers_write(self) -> bool {
        !matches!(self, Strategy::Mw)
    }

    /// True when the strategy itself forces workers to synchronize around
    /// each batch's I/O regardless of the `query_sync` option.
    pub fn inherently_synchronizing(self) -> bool {
        matches!(self, Strategy::WwColl | Strategy::WwCollList)
    }

    /// Short label used in reports (matches the paper's terminology).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Mw => "MW",
            Strategy::WwPosix => "WW-POSIX",
            Strategy::WwList => "WW-List",
            Strategy::WwColl => "WW-Coll",
            Strategy::WwCollList => "WW-CollList",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the search is partitioned across workers (paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Segmentation {
    /// Database segmentation (the paper's focus): queries are replicated,
    /// database fragments are searched on demand by any worker.
    #[default]
    Database,
    /// Query segmentation: the database is replicated (or streamed from
    /// the file system when it exceeds worker memory) and whole queries
    /// are distributed — the approach the paper's introduction argues
    /// stops scaling as databases outgrow memory.
    Query,
}

/// The modeled search-time and cluster constants. Defaults reproduce the
/// paper's Feynman/PVFS2 testbed behaviour; see EXPERIMENTS.md for the
/// calibration notes.
#[derive(Debug, Clone, Copy)]
pub struct Testbed {
    /// Interconnect model (Myrinet-2000-like).
    pub net: NetConfig,
    /// MPI layer configuration (protocol thresholds, ranks per node).
    pub mpi: MpiConfig,
    /// File system model (16 PVFS2 servers, 64 KiB strips).
    pub pvfs: PvfsConfig,
    /// Fixed startup cost of searching one (query, fragment) task at
    /// compute speed 1 (the paper's "constant startup cost").
    pub compute_startup: SimTime,
    /// Search time per byte of result produced, at compute speed 1 (the
    /// paper's "linear time based on the size of the result").
    pub compute_per_result_byte: SimTime,
    /// Worker-side cost of merging one hit into the per-query result list
    /// (the Merge Results phase; the master's merge is free, as in §3).
    pub merge_per_hit: SimTime,
    /// Maximum result-send operations a worker keeps in flight before
    /// waiting on the oldest (bounded send buffering).
    pub max_outstanding_result_sends: usize,
    /// Memory available for caching database data on one worker (the
    /// paper's nodes had 1 GB); only query-segmentation runs consult it.
    pub worker_memory: u64,
}

impl Default for Testbed {
    fn default() -> Self {
        let net = NetConfig {
            latency: SimTime::from_micros(8),
            bandwidth: Bandwidth::mib_per_sec(240.0),
            per_message_overhead: SimTime::from_micros(150),
        };
        Testbed {
            net,
            mpi: MpiConfig {
                net,
                eager_threshold: 16 * 1024,
                header_bytes: 64,
                ranks_per_node: 2,
            },
            pvfs: PvfsConfig::default(),
            compute_startup: SimTime::from_millis(30),
            compute_per_result_byte: SimTime::from_nanos(1250),
            merge_per_hit: SimTime::from_micros(2),
            max_outstanding_result_sends: 8,
            worker_memory: 1024 * 1024 * 1024,
        }
    }
}

/// Everything that defines one S3aSim run.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Total MPI processes (1 master + `procs - 1` workers); the paper
    /// sweeps 2–96.
    pub procs: usize,
    /// The I/O strategy under test.
    pub strategy: Strategy,
    /// The "query sync" option: force all workers to synchronize after
    /// each batch's I/O (§3.3).
    pub query_sync: bool,
    /// Relative compute speed; >1 models faster hardware or better search
    /// algorithms (the paper sweeps 0.1–25.6).
    pub compute_speed: f64,
    /// Write results after every `n` queries (paper default 1; a value of
    /// `>= workload.queries` reproduces mpiBLAST 1.2 / pioBLAST
    /// write-at-end behaviour).
    pub write_every_n_queries: usize,
    /// Two-phase collective aggregator count (0 = one aggregator per
    /// node, ROMIO's default).
    pub cb_nodes: usize,
    /// Two-phase collective buffer size per aggregator per round.
    pub cb_buffer_size: u64,
    /// Work-partitioning scheme (database segmentation is the paper's
    /// subject; query segmentation reproduces the introduction's
    /// motivation).
    pub segmentation: Segmentation,
    /// MW only: overlap the master's writes with task distribution using
    /// nonblocking I/O (one batch in flight — the paper notes blocking
    /// I/O is the norm "to avoid overloading the memory of the master",
    /// so the overlap is bounded to one batch's worth of buffering).
    pub mw_nonblocking_io: bool,
    /// Record a per-rank phase timeline (MPE/Jumpshot-style; see
    /// [`crate::trace`]).
    pub trace: bool,
    /// Deterministic fault injection: worker crashes, message faults, and
    /// file-server misbehaviour (all off by default).
    pub faults: FaultParams,
    /// Restart from a prior run's durable checkpoint: the listed batches
    /// are skipped and output starts at the recorded base offset.
    pub resume_from: Option<ResumePoint>,
    /// The synthetic search workload.
    pub workload: WorkloadParams,
    /// Cluster and compute-model constants.
    pub testbed: Testbed,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            procs: 16,
            strategy: Strategy::WwList,
            query_sync: false,
            compute_speed: 1.0,
            write_every_n_queries: 1,
            // Calibrated aggregator count: reproduces the modest two-phase
            // throughput the paper measured through ROMIO's default
            // collective-buffering configuration (see EXPERIMENTS.md).
            cb_nodes: 6,
            cb_buffer_size: 4 * 1024 * 1024,
            segmentation: Segmentation::Database,
            mw_nonblocking_io: false,
            trace: false,
            faults: FaultParams::default(),
            resume_from: None,
            workload: WorkloadParams::default(),
            testbed: Testbed::default(),
        }
    }
}

impl SimParams {
    /// Number of worker processes.
    pub fn workers(&self) -> usize {
        self.procs.saturating_sub(1)
    }

    /// Time to search one task that produces `result_bytes` of output.
    pub fn compute_time(&self, result_bytes: u64) -> SimTime {
        self.compute_time_multi(result_bytes, 1)
    }

    /// Compute time for a task equivalent to `startups` fragment searches
    /// producing `result_bytes` in total (a query-segmentation task scans
    /// every fragment, paying the startup cost once per fragment).
    pub fn compute_time_multi(&self, result_bytes: u64, startups: usize) -> SimTime {
        assert!(self.compute_speed > 0.0, "compute speed must be positive");
        let base = self.testbed.compute_startup.as_secs_f64() * startups as f64
            + self.testbed.compute_per_result_byte.as_secs_f64() * result_bytes as f64;
        SimTime::from_secs_f64(base / self.compute_speed)
    }

    /// Bytes a query-segmentation worker must re-read from the file
    /// system for every query (the part of the database that does not fit
    /// in its memory).
    pub fn db_reload_bytes(&self) -> u64 {
        self.workload
            .database_bytes
            .saturating_sub(self.testbed.worker_memory)
    }

    /// Validate the parameter combination, panicking with a clear message
    /// on nonsense (fewer than 2 procs, zero batch size, ...).
    pub fn validate(&self) {
        assert!(self.procs >= 2, "need at least 1 master + 1 worker");
        assert!(self.compute_speed > 0.0, "compute speed must be positive");
        assert!(self.write_every_n_queries >= 1, "batch size must be >= 1");
        assert!(self.cb_buffer_size > 0, "cb_buffer_size must be nonzero");
        if self.faults.crashes() {
            assert!(
                !self.query_sync && !self.strategy.inherently_synchronizing(),
                "crash injection needs free-running workers: query-sync and \
                 collective strategies recover via checkpoint-restart instead"
            );
            assert!(
                self.faults.worker_crashes.len() < self.workers(),
                "at least one worker must survive the injected crashes"
            );
            for &(rank, _) in &self.faults.worker_crashes {
                assert!(
                    (1..self.procs).contains(&rank),
                    "crash rank {rank} is not a worker (1..{})",
                    self.procs
                );
            }
            assert!(
                self.faults.heartbeat_interval < self.faults.detection_timeout,
                "heartbeat interval must undercut the detection timeout"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_scales_inversely_with_speed() {
        let mut p = SimParams {
            compute_speed: 1.0,
            ..SimParams::default()
        };
        let t1 = p.compute_time(80_000);
        p.compute_speed = 2.0;
        let t2 = p.compute_time(80_000);
        p.compute_speed = 0.5;
        let t05 = p.compute_time(80_000);
        assert!(t2 < t1 && t1 < t05);
        let ratio = t05.as_secs_f64() / t2.as_secs_f64();
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn compute_time_linear_in_result_bytes() {
        let p = SimParams::default();
        let t0 = p.compute_time(0);
        let t1 = p.compute_time(100_000);
        let t2 = p.compute_time(200_000);
        assert_eq!(t0, p.testbed.compute_startup);
        let d1 = t1 - t0;
        let d2 = t2 - t1;
        assert_eq!(d1, d2);
    }

    #[test]
    fn mean_task_time_matches_paper_anchor() {
        // ~81 KB mean task output → ~0.13 s at speed 1, so 63 workers
        // spend ≈ 5.4 s each (≈ 54 s at speed 0.1, the paper's number).
        let p = SimParams::default();
        let t = p.compute_time(81_000).as_secs_f64();
        assert!((0.10..0.17).contains(&t), "mean task compute {t}");
    }

    #[test]
    fn strategy_properties() {
        assert!(!Strategy::Mw.workers_write());
        for s in [Strategy::WwPosix, Strategy::WwList, Strategy::WwColl] {
            assert!(s.workers_write());
        }
        assert!(Strategy::WwColl.inherently_synchronizing());
        assert!(Strategy::WwCollList.inherently_synchronizing());
        assert!(!Strategy::WwList.inherently_synchronizing());
        assert_eq!(Strategy::PAPER_SET.len(), 4);
        assert_eq!(Strategy::Mw.to_string(), "MW");
    }

    #[test]
    #[should_panic(expected = "at least 1 master")]
    fn validate_rejects_single_proc() {
        let p = SimParams {
            procs: 1,
            ..SimParams::default()
        };
        p.validate();
    }
}
