//! Master-side result bookkeeping: batch completion tracking, global
//! score-order merging, and file-offset assignment.
//!
//! The output-file layout contract (shared with the workers):
//!
//! * batches occupy consecutive file extents in *completion* order;
//! * within a batch, queries appear in ascending query order;
//! * within a query, results appear in `(score desc, size desc)` order —
//!   the order BLAST-style tools present hits in;
//! * each worker receives, per batch, the file offsets of exactly its own
//!   results, ordered the same way the worker ordered them locally, so a
//!   flat `zip(local hits, offsets)` yields its write regions.

use std::collections::BTreeMap;

use s3a_pvfs::Region;
use s3a_workload::Hit;

use crate::protocol::{hit_order, merge_sorted_hits};

/// Accumulates one batch's results as score messages arrive.
#[derive(Debug)]
pub struct BatchState {
    /// Batch index.
    pub batch: usize,
    /// Query ids in this batch (ascending).
    queries: Vec<usize>,
    /// Tasks not yet reported.
    remaining_tasks: usize,
    /// `per_query[i][worker]` = that worker's merged hits for queries[i],
    /// sorted by [`hit_order`].
    per_query: Vec<BTreeMap<usize, Vec<Hit>>>,
    /// Every `(query, fragment, worker)` report received, so a dead
    /// worker's contributions can be revoked and its tasks requeued.
    reported: Vec<(usize, usize, usize)>,
}

impl BatchState {
    /// Create the state for `batch` covering `queries`, expecting
    /// `fragments` task reports per query.
    pub fn new(batch: usize, queries: Vec<usize>, fragments: usize) -> Self {
        let n = queries.len();
        BatchState {
            batch,
            queries,
            remaining_tasks: n * fragments,
            per_query: (0..n).map(|_| BTreeMap::new()).collect(),
            reported: Vec::new(),
        }
    }

    /// Record the hits of task `(query, fragment)` from `worker`. `hits`
    /// must be sorted by [`hit_order`] (workers sort before sending,
    /// offloading the master).
    pub fn record(&mut self, query: usize, fragment: usize, worker: usize, hits: &[Hit]) {
        assert!(
            self.remaining_tasks > 0,
            "batch {} over-reported",
            self.batch
        );
        self.remaining_tasks -= 1;
        self.reported.push((query, fragment, worker));
        if hits.is_empty() {
            return;
        }
        let qi = self
            .queries
            .iter()
            .position(|&q| q == query)
            .unwrap_or_else(|| panic!("query {query} not in batch {}", self.batch));
        let slot = self.per_query[qi].entry(worker).or_default();
        if slot.is_empty() {
            slot.extend_from_slice(hits);
        } else {
            *slot = merge_sorted_hits(slot, hits);
        }
    }

    /// Erase every contribution `worker` made to this (incomplete) batch,
    /// returning the `(query, fragment)` tasks that must be redone by a
    /// survivor. Used when the worker died before the batch's results
    /// reached the master durably (WW strategies: the score message
    /// carried no data, so the result bytes died with the worker).
    pub fn revoke(&mut self, worker: usize) -> Vec<(usize, usize)> {
        let mut redo = Vec::new();
        self.reported.retain(|&(q, f, w)| {
            if w == worker {
                redo.push((q, f));
                false
            } else {
                true
            }
        });
        self.remaining_tasks += redo.len();
        for qmap in &mut self.per_query {
            qmap.remove(&worker);
        }
        redo
    }

    /// True once every task of every query in the batch has reported.
    pub fn is_complete(&self) -> bool {
        self.remaining_tasks == 0
    }

    /// Total result bytes in the batch.
    pub fn total_bytes(&self) -> u64 {
        self.per_query
            .iter()
            .flat_map(|m| m.values())
            .flatten()
            .map(|h| h.size)
            .sum()
    }

    /// Workers holding at least one result in this batch, ascending.
    pub fn contributing_workers(&self) -> Vec<usize> {
        let mut ws: Vec<usize> = self
            .per_query
            .iter()
            .flat_map(|m| m.keys().copied())
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }

    /// Assign file offsets for the whole batch starting at `base`.
    ///
    /// Returns `(per-worker write plans, total bytes)`. Each worker's
    /// offset list concatenates its queries in ascending order; within a
    /// query the offsets follow the worker's local `(score desc, size
    /// desc)` hit order — i.e. the exact order the worker will zip them
    /// with. The plan also carries the concrete file regions (so the
    /// master can hand a dead worker's write to a survivor) and the task
    /// count behind them (for the repair cost model).
    pub fn assign_offsets(&self, base: u64) -> (BTreeMap<usize, WorkerPlan>, u64) {
        let mut per_worker: BTreeMap<usize, WorkerPlan> = BTreeMap::new();
        let mut cursor = base;
        for qmap in &self.per_query {
            // Globally order this query's hits across workers.
            let mut all: Vec<(usize, Hit)> = qmap
                .iter()
                .flat_map(|(&w, hits)| hits.iter().map(move |&h| (w, h)))
                .collect();
            all.sort_by(|(wa, a), (wb, b)| hit_order(a, b).then(wa.cmp(wb)));
            for (w, h) in all {
                let plan = per_worker.entry(w).or_default();
                plan.offsets.push(cursor);
                plan.regions.push(Region::new(cursor, h.size));
                plan.bytes += h.size;
                cursor += h.size;
            }
        }
        for &(_, _, w) in &self.reported {
            if let Some(plan) = per_worker.get_mut(&w) {
                plan.tasks += 1;
            }
        }
        (per_worker, cursor - base)
    }
}

/// One worker's share of a completed batch's output layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerPlan {
    /// File offsets in the worker's local merged hit order.
    pub offsets: Vec<u64>,
    /// The same write targets as `(offset, len)` regions.
    pub regions: Vec<Region>,
    /// `(query, fragment)` tasks this worker reported into the batch.
    pub tasks: usize,
    /// Total bytes of the worker's share.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(score: u64, size: u64) -> Hit {
        Hit { score, size }
    }

    #[test]
    fn completion_counts_tasks() {
        let mut b = BatchState::new(0, vec![0, 1], 2);
        assert!(!b.is_complete());
        b.record(0, 0, 1, &[h(5, 10)]);
        b.record(0, 1, 2, &[]);
        b.record(1, 0, 1, &[h(7, 20)]);
        assert!(!b.is_complete());
        b.record(1, 1, 2, &[h(6, 30)]);
        assert!(b.is_complete());
        assert_eq!(b.total_bytes(), 60);
        assert_eq!(b.contributing_workers(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "over-reported")]
    fn over_reporting_panics() {
        let mut b = BatchState::new(0, vec![0], 1);
        b.record(0, 0, 1, &[]);
        b.record(0, 0, 1, &[]);
    }

    #[test]
    fn offsets_follow_global_score_order() {
        let mut b = BatchState::new(0, vec![3], 2);
        // Worker 1: scores 9 (sz 10), 5 (sz 20); worker 2: score 7 (sz 30).
        b.record(3, 0, 1, &[h(9, 10), h(5, 20)]);
        b.record(3, 1, 2, &[h(7, 30)]);
        let (per_worker, total) = b.assign_offsets(1000);
        assert_eq!(total, 60);
        // Global layout: w1@1000 (sz10), w2@1010 (sz30), w1@1040 (sz20).
        assert_eq!(per_worker[&1].offsets, vec![1000, 1040]);
        assert_eq!(per_worker[&2].offsets, vec![1010]);
        // Plans mirror the offsets as concrete regions with task counts.
        assert_eq!(
            per_worker[&1].regions,
            vec![Region::new(1000, 10), Region::new(1040, 20)]
        );
        assert_eq!(per_worker[&1].tasks, 1);
        assert_eq!(per_worker[&1].bytes, 30);
        assert_eq!(per_worker[&2].bytes, 30);
    }

    #[test]
    fn offsets_span_queries_in_ascending_order() {
        let mut b = BatchState::new(0, vec![0, 1], 1);
        b.record(1, 0, 1, &[h(100, 5)]); // higher score but later query
        b.record(0, 0, 1, &[h(1, 7)]);
        let (per_worker, total) = b.assign_offsets(0);
        assert_eq!(total, 12);
        // Query 0's results come first regardless of score.
        assert_eq!(per_worker[&1].offsets, vec![0, 7]);
    }

    #[test]
    fn multi_fragment_merge_matches_worker_order() {
        // A worker reports two fragments of the same query; the master's
        // merged per-worker order must equal the worker's own merge.
        let f1 = vec![h(9, 1), h(4, 2)];
        let f2 = vec![h(7, 3), h(2, 4)];
        let mut b = BatchState::new(0, vec![0], 2);
        b.record(0, 0, 5, &f1);
        b.record(0, 1, 5, &f2);
        let worker_local = merge_sorted_hits(&f1, &f2);
        let (per_worker, _) = b.assign_offsets(0);
        // Reconstruct the master's layout: offsets are ascending in global
        // score order and all hits belong to worker 5, so zipping the
        // worker's local order with the returned list must give sizes
        // consistent with the cumulative layout.
        let offsets = &per_worker[&5].offsets;
        assert_eq!(offsets.len(), worker_local.len());
        let mut expect = 0u64;
        for (off, hit) in offsets.iter().zip(&worker_local) {
            assert_eq!(*off, expect, "layout mismatch");
            expect += hit.size;
        }
        assert_eq!(per_worker[&5].tasks, 2);
    }

    #[test]
    fn empty_batch_assigns_nothing() {
        let mut b = BatchState::new(0, vec![0], 1);
        b.record(0, 0, 1, &[]);
        assert!(b.is_complete());
        let (per_worker, total) = b.assign_offsets(0);
        assert!(per_worker.is_empty());
        assert_eq!(total, 0);
        assert!(b.contributing_workers().is_empty());
    }

    #[test]
    fn score_ties_resolved_identically_both_sides() {
        // Two workers with the same score: layout uses (score, size,
        // worker) while each worker only sees its own hits — sizes equal
        // ties are harmless, different sizes order deterministically.
        let mut b = BatchState::new(0, vec![0], 2);
        b.record(0, 0, 1, &[h(5, 10)]);
        b.record(0, 1, 2, &[h(5, 30)]);
        let (per_worker, total) = b.assign_offsets(0);
        assert_eq!(total, 40);
        // size 30 sorts first (desc size).
        assert_eq!(per_worker[&2].offsets, vec![0]);
        assert_eq!(per_worker[&1].offsets, vec![30]);
    }

    #[test]
    fn revoke_requeues_a_dead_workers_tasks() {
        let mut b = BatchState::new(0, vec![0, 1], 2);
        b.record(0, 0, 1, &[h(5, 10)]);
        b.record(0, 1, 2, &[h(4, 20)]);
        b.record(1, 0, 1, &[h(3, 5)]);
        // Worker 1 dies with one task of the batch still unreported.
        let redo = b.revoke(1);
        assert_eq!(redo, vec![(0, 0), (1, 0)]);
        assert!(!b.is_complete());
        assert_eq!(b.contributing_workers(), vec![2]);
        // A survivor redoes the revoked tasks plus the never-reported one.
        b.record(0, 0, 3, &[h(5, 10)]);
        b.record(1, 0, 3, &[h(3, 5)]);
        b.record(1, 1, 3, &[]);
        assert!(b.is_complete());
        let (per_worker, total) = b.assign_offsets(0);
        assert_eq!(total, 35);
        assert!(!per_worker.contains_key(&1));
        assert_eq!(per_worker[&3].tasks, 3);
    }
}
