//! Parallel sweep execution.
//!
//! A sweep is a list of independent simulation points — every
//! `(procs, speed, strategy, sync)` combination is its own deterministic
//! run with its own [`s3a_des::Sim`], so the points can execute on a pool
//! of OS threads without any shared simulation state. The `Rc`-based
//! engine never crosses a thread boundary: each worker thread builds,
//! drives, and tears down one complete simulation per point, and only the
//! plain-data [`RunReport`] travels back.
//!
//! Result assembly is deterministic and execution-order-independent:
//! reports are stored into a slot indexed by the point's position in the
//! input list, so the assembled [`Sweep`] is byte-identical to a serial
//! run of the same points regardless of thread count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::params::{SimParams, Strategy};
use crate::phase::PHASES;
use crate::report::RunReport;
use crate::runner::{try_run, SimError};

// The executor hands `&SimParams` to worker threads and carries
// `RunReport`s back; both must stay plain data (no `Rc` smuggled in).
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<SimParams>();
    assert_send::<RunReport>();
    assert_send::<SimError>();
};

/// One run's coordinates within a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Total processes.
    pub procs: usize,
    /// Compute-speed multiplier.
    pub speed: f64,
    /// Strategy under test.
    pub strategy: Strategy,
    /// Query-sync option.
    pub sync: bool,
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} procs={} speed={} sync={}",
            self.strategy, self.procs, self.speed, self.sync
        )
    }
}

/// How a sweep executes: worker-thread count and progress reporting.
///
/// The default runs quietly on the auto thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// Worker threads to run points on. `0` means auto: the
    /// `S3ASIM_THREADS` environment variable if set, otherwise
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Print one progress line per point to stderr as it starts.
    pub progress: bool,
}

impl SweepOptions {
    /// Options for a serial, quiet run (the reference path the parallel
    /// executor must match byte-for-byte).
    pub fn serial() -> Self {
        SweepOptions {
            threads: 1,
            progress: false,
        }
    }

    /// Resolve `threads == 0` to the auto thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            default_threads()
        }
    }
}

/// The auto thread count: `S3ASIM_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("S3ASIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run every parameter set and return the reports in input order.
///
/// Points are claimed from a shared counter by `threads` worker threads;
/// each claimed point runs a complete, isolated simulation via
/// [`try_run`] (which also verifies the output file). Reports land in a
/// per-index slot, so the returned order — and therefore every downstream
/// table and CSV — is independent of which thread finished first. With
/// `threads <= 1` (or a single parameter set) no threads are spawned at
/// all.
pub fn run_batch(params: &[SimParams], threads: usize) -> Result<Vec<RunReport>, SimError> {
    run_batch_with(params, threads, |_| {})
}

/// [`run_batch`] with a per-point start hook (used for progress lines).
/// The hook runs on the worker thread that claims the point.
pub fn run_batch_with(
    params: &[SimParams],
    threads: usize,
    on_start: impl Fn(usize) + Sync,
) -> Result<Vec<RunReport>, SimError> {
    let threads = threads.clamp(1, params.len().max(1));
    if threads == 1 {
        return params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                on_start(i);
                try_run(p)
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunReport, SimError>>>> =
        params.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(p) = params.get(i) else { break };
                on_start(i);
                let result = try_run(p);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// A sweep's worth of completed runs.
pub struct Sweep {
    /// Human-readable name ("process scaling", ...).
    pub name: &'static str,
    /// The coordinates and their reports, in input order.
    pub runs: Vec<(Point, RunReport)>,
}

impl Sweep {
    /// Execute `points` (mapped to parameters by `to_params`) across the
    /// configured thread pool and assemble the completed sweep.
    ///
    /// Every point's report is verified; the first failure aborts the
    /// sweep with a [`SimError`] naming the offending point.
    pub fn run(
        name: &'static str,
        points: Vec<Point>,
        to_params: impl Fn(Point) -> SimParams + Sync,
        opts: SweepOptions,
    ) -> Result<Sweep, SimError> {
        let params: Vec<SimParams> = points.iter().map(|&p| to_params(p)).collect();
        let total = points.len();
        let reports = run_batch_with(&params, opts.effective_threads(), |i| {
            if opts.progress {
                eprintln!("[{}/{}] {}", i + 1, total, points[i]);
            }
        })
        .map_err(|e| match e {
            // Deadlocks and invalid params carry their own diagnosis; a
            // verification failure is only useful with its coordinates.
            SimError::Verification(msg) => SimError::Verification(format!("sweep '{name}': {msg}")),
            other => other,
        })?;
        Ok(Sweep {
            name,
            runs: points.into_iter().zip(reports).collect(),
        })
    }

    /// Fetch one run.
    pub fn get(&self, procs: usize, speed: f64, strategy: Strategy, sync: bool) -> &RunReport {
        self.runs
            .iter()
            .find(|(p, _)| {
                p.procs == procs && p.speed == speed && p.strategy == strategy && p.sync == sync
            })
            .map(|(_, r)| r)
            .unwrap_or_else(|| {
                panic!("no run for {strategy} procs={procs} speed={speed} sync={sync}")
            })
    }

    /// Render the Figure 2/5-style overall-time table: one row per x-axis
    /// value, one column per (strategy, sync).
    pub fn overall_table(&self, xaxis: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "# {} — overall execution time (s)", self.name);
        let _ = write!(s, "{xaxis:>8}");
        // One column per (strategy, sync) pair the sweep actually ran, in
        // first-appearance order — sparse sweeps (e.g. the two-strategy
        // data-sieving suite) render without phantom columns.
        let mut columns: Vec<(Strategy, bool)> = Vec::new();
        for (p, _) in &self.runs {
            if !columns.contains(&(p.strategy, p.sync)) {
                columns.push((p.strategy, p.sync));
            }
        }
        for &(strategy, sync) in &columns {
            let _ = write!(
                s,
                " {:>14}",
                format!("{}{}", strategy, if sync { "/sync" } else { "" })
            );
        }
        let _ = writeln!(s);
        let mut xs: Vec<(usize, f64)> = self.runs.iter().map(|(p, _)| (p.procs, p.speed)).collect();
        xs.dedup();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs.dedup();
        for (procs, speed) in xs {
            if xaxis == "procs" {
                let _ = write!(s, "{procs:>8}");
            } else {
                let _ = write!(s, "{speed:>8}");
            }
            for &(strategy, sync) in &columns {
                let r = self.get(procs, speed, strategy, sync);
                let _ = write!(s, " {:>14.2}", r.overall.as_secs_f64());
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Render a Figure 3/4/6/7-style phase breakdown table for one
    /// strategy and sync mode (worker-process means, stacked phases).
    pub fn phase_table(&self, strategy: Strategy, sync: bool, xaxis: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# {} — {} ({}) worker phase breakdown (s)",
            self.name,
            strategy,
            if sync { "sync" } else { "no-sync" }
        );
        let _ = write!(s, "{xaxis:>8}");
        for p in PHASES {
            let _ = write!(s, " {:>12}", p.name().replace(' ', "-"));
        }
        let _ = writeln!(s, " {:>12}", "overall");
        for (point, r) in self
            .runs
            .iter()
            .filter(|(p, _)| p.strategy == strategy && p.sync == sync)
        {
            if xaxis == "procs" {
                let _ = write!(s, "{:>8}", point.procs);
            } else {
                let _ = write!(s, "{:>8}", point.speed);
            }
            for p in PHASES {
                let _ = write!(s, " {:>12.3}", r.worker_mean.get(p).as_secs_f64());
            }
            let _ = writeln!(s, " {:>12.2}", r.overall.as_secs_f64());
        }
        s
    }

    /// All runs as CSV (header + one row per run). Header and rows come
    /// from the same typed [`crate::Columns`] definition, so they can
    /// never disagree.
    pub fn csv(&self) -> String {
        let mut s = String::new();
        for (i, (_, r)) in self.runs.iter().enumerate() {
            let cols = r.columns();
            if i == 0 {
                s.push_str(&cols.header());
                s.push('\n');
            }
            s.push_str(&cols.row());
            s.push('\n');
        }
        s
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3a_workload::WorkloadParams;

    fn tiny(p: Point) -> SimParams {
        SimParams {
            procs: p.procs,
            strategy: p.strategy,
            query_sync: p.sync,
            compute_speed: p.speed,
            workload: WorkloadParams {
                queries: 2,
                fragments: 8,
                min_results: 40,
                max_results: 80,
                ..WorkloadParams::default()
            },
            ..SimParams::default()
        }
    }

    fn tiny_points() -> Vec<Point> {
        let mut points = Vec::new();
        for strategy in [Strategy::Mw, Strategy::WwList, Strategy::WwColl] {
            for procs in [3usize, 5] {
                points.push(Point {
                    procs,
                    speed: 1.0,
                    strategy,
                    sync: false,
                });
            }
        }
        points
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let serial = Sweep::run("t", tiny_points(), tiny, SweepOptions::serial()).unwrap();
        let parallel = Sweep::run(
            "t",
            tiny_points(),
            tiny,
            SweepOptions {
                threads: 4,
                progress: false,
            },
        )
        .unwrap();
        assert_eq!(serial.csv(), parallel.csv());
        for ((ps, rs), (pp, rp)) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(ps, pp);
            assert_eq!(rs.overall, rp.overall);
            assert_eq!(rs.engine, rp.engine);
        }
    }

    #[test]
    fn run_batch_preserves_input_order() {
        let params: Vec<SimParams> = tiny_points().into_iter().map(tiny).collect();
        let reports = run_batch(&params, 3).unwrap();
        assert_eq!(reports.len(), params.len());
        for (p, r) in params.iter().zip(&reports) {
            assert_eq!(r.procs, p.procs);
            assert_eq!(r.strategy, p.strategy);
        }
    }

    #[test]
    fn run_batch_surfaces_invalid_params() {
        let p = tiny(Point {
            procs: 1,
            speed: 1.0,
            strategy: Strategy::WwList,
            sync: false,
        });
        let err = run_batch(std::slice::from_ref(&p), 2).unwrap_err();
        assert!(matches!(err, SimError::InvalidParams(_)), "{err:?}");
    }

    #[test]
    fn thread_knobs_resolve() {
        assert_eq!(SweepOptions::serial().effective_threads(), 1);
        assert!(SweepOptions::default().effective_threads() >= 1);
        assert!(default_threads() >= 1);
    }
}
