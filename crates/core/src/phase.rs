//! Per-process phase accounting (§3 of the paper).
//!
//! S3aSim attributes every moment of a process's run to one of eight
//! phases; the evaluation figures are stacked bars of these phases. The
//! [`PhaseTimer`] accrues virtual time into phases; whatever is left when
//! the run ends is "Other".

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::rc::Rc;

use s3a_des::{Sim, SimTime};

/// The timing phases of §3, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Distributing/receiving the input variables.
    Setup,
    /// Work-request/assignment traffic (and waiting for it).
    DataDistribution,
    /// The modeled search itself (always 0 on the master).
    Compute,
    /// Worker-side merging of per-query results (parallel I/O only).
    MergeResults,
    /// Moving scores (and results, for MW) between workers and master.
    GatherResults,
    /// Writes to the output file (and their syncs).
    Io,
    /// End-of-run barrier and, with query sync on, the per-batch barriers.
    Sync,
    /// Fault-tolerance overhead: waiting out failure detection and
    /// performing repair work for crashed peers (zero in fault-free runs).
    Recovery,
    /// Everything not attributed above.
    Other,
}

/// All phases, indexable order.
pub const PHASES: [Phase; 9] = [
    Phase::Setup,
    Phase::DataDistribution,
    Phase::Compute,
    Phase::MergeResults,
    Phase::GatherResults,
    Phase::Io,
    Phase::Sync,
    Phase::Recovery,
    Phase::Other,
];

impl Phase {
    /// Dense index of this phase in [`PHASES`].
    pub fn index(self) -> usize {
        match self {
            Phase::Setup => 0,
            Phase::DataDistribution => 1,
            Phase::Compute => 2,
            Phase::MergeResults => 3,
            Phase::GatherResults => 4,
            Phase::Io => 5,
            Phase::Sync => 6,
            Phase::Recovery => 7,
            Phase::Other => 8,
        }
    }

    /// Human-readable name (matches the paper's figure legends).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "Setup",
            Phase::DataDistribution => "Data Distribution",
            Phase::Compute => "Compute",
            Phase::MergeResults => "Merge Results",
            Phase::GatherResults => "Gather Results",
            Phase::Io => "I/O",
            Phase::Sync => "Sync",
            Phase::Recovery => "Recovery",
            Phase::Other => "Other",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A process's accumulated time per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    times: [SimTime; 9],
}

impl PhaseBreakdown {
    /// Time accrued in `phase`.
    pub fn get(&self, phase: Phase) -> SimTime {
        self.times[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> SimTime {
        self.times.iter().copied().sum()
    }

    /// Add `dt` to `phase`.
    pub fn add(&mut self, phase: Phase, dt: SimTime) {
        self.times[phase.index()] += dt;
    }

    /// Set `Other` so the breakdown sums to `overall` (no-op if already
    /// over).
    pub fn close_to(&mut self, overall: SimTime) {
        let accounted: SimTime = PHASES
            .iter()
            .filter(|p| !matches!(p, Phase::Other))
            .map(|&p| self.get(p))
            .sum();
        self.times[Phase::Other.index()] = overall.saturating_sub(accounted);
    }

    /// Element-wise mean of several breakdowns (used for the "worker
    /// process" averages the figures plot).
    pub fn mean(items: &[PhaseBreakdown]) -> PhaseBreakdown {
        if items.is_empty() {
            return PhaseBreakdown::default();
        }
        let mut out = PhaseBreakdown::default();
        for p in PHASES {
            let sum: SimTime = items.iter().map(|b| b.get(p)).sum();
            out.times[p.index()] = sum / items.len() as u64;
        }
        out
    }
}

/// Accrues virtual time into a [`PhaseBreakdown`] for one process,
/// optionally mirroring every interval into a [`crate::trace::TraceSink`].
#[derive(Clone)]
pub struct PhaseTimer {
    sim: Sim,
    acc: Rc<RefCell<PhaseBreakdown>>,
    rank: usize,
    sink: crate::trace::TraceSink,
}

impl PhaseTimer {
    /// Create a timer bound to `sim`'s clock (tracing disabled).
    pub fn new(sim: &Sim) -> Self {
        Self::with_trace(sim, 0, crate::trace::TraceSink::disabled())
    }

    /// Create a timer that also records `(rank, phase, start, end)`
    /// intervals into `sink`.
    pub fn with_trace(sim: &Sim, rank: usize, sink: crate::trace::TraceSink) -> Self {
        PhaseTimer {
            sim: sim.clone(),
            acc: Rc::new(RefCell::new(PhaseBreakdown::default())),
            rank,
            sink,
        }
    }

    /// Run `fut`, attributing its elapsed virtual time to `phase`.
    pub async fn track<F: Future>(&self, phase: Phase, fut: F) -> F::Output {
        let t0 = self.sim.now();
        let out = fut.await;
        let t1 = self.sim.now();
        self.acc.borrow_mut().add(phase, t1 - t0);
        self.sink.record(self.rank, phase, t0, t1);
        out
    }

    /// Attribute an already-measured duration ending now to `phase`.
    pub fn add(&self, phase: Phase, dt: SimTime) {
        let now = self.sim.now();
        self.add_interval(phase, now.saturating_sub(dt), now);
    }

    /// Attribute the measured interval `[start, end)` to `phase`. Use
    /// this instead of two [`PhaseTimer::add`] calls when one awaited
    /// operation splits into consecutive sub-phases: retroactive `add`s
    /// would both end "now" and overlap on the trace timeline.
    pub fn add_interval(&self, phase: Phase, start: SimTime, end: SimTime) {
        self.acc.borrow_mut().add(phase, end.saturating_sub(start));
        self.sink.record(self.rank, phase, start, end);
    }

    /// Snapshot of the accumulated breakdown.
    pub fn snapshot(&self) -> PhaseBreakdown {
        *self.acc.borrow()
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for PhaseTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseTimer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Compute, SimTime::from_secs(3));
        b.add(Phase::Io, SimTime::from_secs(2));
        b.add(Phase::Compute, SimTime::from_secs(1));
        assert_eq!(b.get(Phase::Compute), SimTime::from_secs(4));
        assert_eq!(b.total(), SimTime::from_secs(6));
    }

    #[test]
    fn close_to_fills_other() {
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Compute, SimTime::from_secs(3));
        b.close_to(SimTime::from_secs(10));
        assert_eq!(b.get(Phase::Other), SimTime::from_secs(7));
        assert_eq!(b.total(), SimTime::from_secs(10));
        // Over-accounted: Other clamps at zero.
        let mut c = PhaseBreakdown::default();
        c.add(Phase::Io, SimTime::from_secs(12));
        c.close_to(SimTime::from_secs(10));
        assert_eq!(c.get(Phase::Other), SimTime::ZERO);
    }

    #[test]
    fn mean_averages_elementwise() {
        let mut a = PhaseBreakdown::default();
        a.add(Phase::Io, SimTime::from_secs(4));
        let mut b = PhaseBreakdown::default();
        b.add(Phase::Io, SimTime::from_secs(2));
        b.add(Phase::Sync, SimTime::from_secs(2));
        let m = PhaseBreakdown::mean(&[a, b]);
        assert_eq!(m.get(Phase::Io), SimTime::from_secs(3));
        assert_eq!(m.get(Phase::Sync), SimTime::from_secs(1));
        assert_eq!(PhaseBreakdown::mean(&[]), PhaseBreakdown::default());
    }

    #[test]
    fn timer_tracks_virtual_time() {
        let sim = Sim::new();
        let timer = PhaseTimer::new(&sim);
        let t = timer.clone();
        let s = sim.clone();
        sim.spawn("p", async move {
            t.track(Phase::Compute, s.sleep(SimTime::from_secs(5)))
                .await;
            t.track(Phase::Io, s.sleep(SimTime::from_secs(2))).await;
            t.add(Phase::Sync, SimTime::from_millis(500));
        });
        sim.run().unwrap();
        let b = timer.snapshot();
        assert_eq!(b.get(Phase::Compute), SimTime::from_secs(5));
        assert_eq!(b.get(Phase::Io), SimTime::from_secs(2));
        assert_eq!(b.get(Phase::Sync), SimTime::from_millis(500));
    }
}
