//! The master process (Algorithm 1 of the paper).
//!
//! The master distributes `(query, fragment)` tasks on demand, gathers
//! scores (plus result data under MW), merges them, and — batch by batch
//! — either writes the output itself (MW) or tells each worker where to
//! write (`WW-*`). It is deliberately single-threaded and blocking in the
//! same places the paper's pseudo-code blocks: most importantly, while
//! the MW master writes, it cannot answer work requests.

use std::rc::Rc;

use s3a_des::{JoinHandle, Sim};
use s3a_mpi::{waitall_sends, Comm, RecvRequest, SendRequest, Source};
use s3a_mpiio::File;
use s3a_workload::Workload;

use crate::offsets::BatchState;
use crate::resume::CommitTracker;
use crate::params::{SimParams, Strategy};
use crate::phase::{Phase, PhaseBreakdown, PhaseTimer};
use crate::trace::TraceSink;
use crate::protocol::{
    Assign, OffsetsMsg, ScoresMsg, ASSIGN_BYTES, TAG_ASSIGN, TAG_OFFSETS, TAG_SCORES,
    TAG_WORK_REQ,
};

/// Run the master on `comm` (the world communicator, rank 0). `file` must
/// be opened on a master-only communicator; it is used only by MW.
pub async fn run_master(
    sim: Sim,
    comm: Comm,
    params: Rc<SimParams>,
    workload: Rc<Workload>,
    file: File,
    trace: TraceSink,
    commits: CommitTracker,
) -> PhaseBreakdown {
    let timer = PhaseTimer::with_trace(&sim, 0, trace);

    // Step 1: distribute input variables.
    timer
        .track(Phase::Setup, comm.bcast(0, Some(()), 1024))
        .await;

    let nworkers = comm.size() - 1;
    let nq = workload.queries.len();
    let nf = workload.params.fragments;
    let gran = params.write_every_n_queries.min(nq);
    let nbatches = nq.div_ceil(gran);

    let tasks: Vec<(usize, usize)> = (0..nq)
        .flat_map(|q| (0..nf).map(move |f| (q, f)))
        .collect();
    let mut next_task = 0usize;
    let mut done_workers = 0usize;

    let mut batches: Vec<Option<BatchState>> = (0..nbatches)
        .map(|b| {
            let queries: Vec<usize> = (b * gran..((b + 1) * gran).min(nq)).collect();
            Some(BatchState::new(b, queries, nf))
        })
        .collect();
    let mut batches_left = nbatches;
    let mut cursor = 0u64;

    let mut pending_scores: Vec<RecvRequest> = Vec::new();
    let mut offset_sends: Vec<SendRequest> = Vec::new();
    // MW with nonblocking I/O: at most one batch write in flight.
    let mut pending_io: Option<JoinHandle<()>> = None;

    let notify_all = params.strategy.inherently_synchronizing() || params.query_sync;

    loop {
        // Steps 10–19: drain any results that have arrived, then handle
        // batches that are now complete.
        let mut k = 0;
        while k < pending_scores.len() {
            match pending_scores[k].test() {
                Some(msg) => {
                    let req = pending_scores.swap_remove(k);
                    drop(req);
                    record_scores(&mut batches, msg, gran);
                }
                None => k += 1,
            }
        }

        #[allow(clippy::needless_range_loop)] // b is the batch id, not just an index
        for b in 0..nbatches {
            let complete = batches[b].as_ref().is_some_and(BatchState::is_complete);
            if !complete {
                continue;
            }
            let batch = batches[b].take().expect("checked above");
            batches_left -= 1;
            let (per_worker, total) = batch.assign_offsets(cursor);
            let base = cursor;
            cursor += total;
            let batch_queries = ((b + 1) * gran).min(nq) - b * gran;
            if params.strategy == Strategy::Mw {
                commits.expect(b, usize::from(total > 0), batch_queries, total, sim.now());
            } else {
                commits.expect(
                    b,
                    batch.contributing_workers().len(),
                    batch_queries,
                    total,
                    sim.now(),
                );
            }

            match params.strategy {
                Strategy::Mw => {
                    // Step 18: the master writes the batch contiguously and
                    // syncs. With blocking I/O (the default, as in the
                    // paper) it cannot serve requests meanwhile; with the
                    // nonblocking option the write proceeds in the
                    // background and only the *previous* batch's
                    // completion is awaited (bounded buffering).
                    if total > 0 {
                        if params.mw_nonblocking_io {
                            if let Some(h) = pending_io.take() {
                                timer.track(Phase::Io, h.join()).await;
                            }
                            let fh = file.handle().clone();
                            let ep = file.endpoint();
                            let commits2 = commits.clone();
                            let sim3 = sim.clone();
                            pending_io = Some(sim.spawn("mw-bg-io", async move {
                                fh.write_contiguous(ep, base, total).await;
                                fh.sync(ep).await;
                                commits2.complete_one(b, sim3.now());
                            }));
                        } else {
                            timer.track(Phase::Io, file.write_at(base, total)).await;
                            timer.track(Phase::Io, file.sync()).await;
                            commits.complete_one(b, sim.now());
                        }
                    }
                    if params.query_sync {
                        for w in 1..=nworkers {
                            let msg = OffsetsMsg {
                                batch: b,
                                offsets: Vec::new(),
                            };
                            let bytes = msg.wire_bytes();
                            offset_sends.push(comm.isend(w, TAG_OFFSETS, msg, bytes));
                        }
                    }
                }
                _ => {
                    // Step 15: hand out the location lists.
                    let targets: Vec<usize> = if notify_all {
                        (1..=nworkers).collect()
                    } else {
                        batch.contributing_workers()
                    };
                    for w in targets {
                        let offsets = per_worker.get(&w).cloned().unwrap_or_default();
                        let msg = OffsetsMsg { batch: b, offsets };
                        let bytes = msg.wire_bytes();
                        offset_sends.push(comm.isend(w, TAG_OFFSETS, msg, bytes));
                    }
                }
            }
        }

        // Steps 3–9: answer one work request, or wind down.
        if next_task < tasks.len() || done_workers < nworkers {
            let req = timer
                .track(
                    Phase::DataDistribution,
                    comm.recv(Source::Any, TAG_WORK_REQ),
                )
                .await;
            let w = req.status.source;
            if next_task < tasks.len() {
                let (q, f) = tasks[next_task];
                next_task += 1;
                // Step 8: post the receive for this task's scores first so
                // the progress engine can match it whenever it arrives.
                pending_scores.push(comm.irecv(w, TAG_SCORES));
                timer
                    .track(
                        Phase::DataDistribution,
                        comm.send(
                            w,
                            TAG_ASSIGN,
                            Assign::Task {
                                query: q,
                                fragment: f,
                            },
                            ASSIGN_BYTES,
                        ),
                    )
                    .await;
            } else {
                timer
                    .track(
                        Phase::DataDistribution,
                        comm.send(w, TAG_ASSIGN, Assign::Done, ASSIGN_BYTES),
                    )
                    .await;
                done_workers += 1;
            }
        } else if let Some(req) = pending_scores.pop() {
            // Everything is scheduled; block for the stragglers' results.
            let msg = timer.track(Phase::GatherResults, req.wait()).await;
            record_scores(&mut batches, msg, gran);
        } else if batches_left == 0 {
            break;
        } else {
            unreachable!("no pending results but {batches_left} batches incomplete");
        }
    }

    if let Some(h) = pending_io.take() {
        timer.track(Phase::Io, h.join()).await;
    }
    timer
        .track(Phase::GatherResults, waitall_sends(&offset_sends))
        .await;
    // Step 20/21: final synchronization before exit.
    timer.track(Phase::Sync, comm.barrier()).await;

    let mut bd = timer.snapshot();
    bd.close_to(sim.now());
    bd
}

fn record_scores(batches: &mut [Option<BatchState>], msg: s3a_mpi::Message, gran: usize) {
    let (scores, status) = msg.into_parts::<ScoresMsg>();
    let b = scores.query / gran;
    batches[b]
        .as_mut()
        .unwrap_or_else(|| panic!("scores for already-written batch {b}"))
        .record(scores.query, status.source, &scores.hits);
}
