//! The master process (Algorithm 1 of the paper).
//!
//! The master distributes `(query, fragment)` tasks on demand, gathers
//! scores (plus result data under MW), merges them, and — batch by batch
//! — either writes the output itself (MW) or tells each worker where to
//! write (`WW-*`). It is deliberately single-threaded and blocking in the
//! same places the paper's pseudo-code blocks: most importantly, while
//! the MW master writes, it cannot answer work requests.
//!
//! With crash injection armed the master switches to a polling event loop
//! that additionally watches worker heartbeats: a worker silent for
//! longer than the detection timeout is declared dead, its in-flight and
//! revoked tasks are requeued for survivors, and any writes it still owed
//! for already-laid-out batches are handed to a survivor as repair
//! bundles — so the run completes with the exact same output extents a
//! fault-free run would produce.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use s3a_des::{JoinHandle, Sim, SimTime, Sleep};
use s3a_faults::FaultKind;
use s3a_mpi::{waitall_sends, Comm, Message, ReadyQueue, RecvRequest, SendRequest, Source};
use s3a_mpiio::File;
use s3a_pvfs::Region;
use s3a_workload::Workload;

use crate::failure_detector::Liveness;
use crate::offsets::{BatchState, WorkerPlan};
use crate::params::{SchedPolicy, SimParams, Strategy};
use crate::phase::{Phase, PhaseBreakdown, PhaseTimer};
use crate::protocol::{
    Assign, OffsetsMsg, ScoresMsg, ASSIGN_BYTES, TAG_ASSIGN, TAG_HEARTBEAT, TAG_OFFSETS,
    TAG_SCORES, TAG_WORK_REQ,
};
use crate::resume::CommitTracker;
use crate::runner::FaultCtx;
use crate::service::{ServedEvent, ServiceTracker, ShedEvent};
use crate::trace::TraceSink;

/// Scheduling state shared by the fault-free and fault-tolerant paths,
/// prepared once (resume-aware) after setup.
struct MasterState {
    nworkers: usize,
    nq: usize,
    gran: usize,
    nbatches: usize,
    /// Undistributed tasks; the faulty path also pushes requeued ones.
    tasks: VecDeque<(usize, usize)>,
    /// `None` = already written (completed this run, or durable from the
    /// checkpoint a resumed run starts from).
    batches: Vec<Option<BatchState>>,
    batches_left: usize,
    /// Next free byte of the output file.
    cursor: u64,
}

impl MasterState {
    fn prepare(params: &SimParams, workload: &Workload, nworkers: usize) -> MasterState {
        let nq = workload.queries.len();
        let nf = workload.params.fragments;
        let gran = params.write_every_n_queries.min(nq);
        let nbatches = nq.div_ceil(gran);
        let resume = params.resume_from.clone().unwrap_or_default();

        let batches: Vec<Option<BatchState>> = (0..nbatches)
            .map(|b| {
                if resume.done_batches.contains(&b) {
                    None
                } else {
                    let queries: Vec<usize> = (b * gran..((b + 1) * gran).min(nq)).collect();
                    Some(BatchState::new(b, queries, nf))
                }
            })
            .collect();
        let batches_left = batches.iter().filter(|b| b.is_some()).count();
        let tasks: VecDeque<(usize, usize)> = (0..nq)
            .filter(|q| !resume.done_batches.contains(&(q / gran)))
            .flat_map(|q| (0..nf).map(move |f| (q, f)))
            .collect();

        MasterState {
            nworkers,
            nq,
            gran,
            nbatches,
            tasks,
            batches,
            batches_left,
            cursor: resume.base_offset,
        }
    }

    fn batch_queries(&self, b: usize) -> usize {
        ((b + 1) * self.gran).min(self.nq) - b * self.gran
    }
}

/// Completion-driven pool of the master's outstanding score receives.
///
/// The fault-free master used to `test()`-scan a `Vec<RecvRequest>` every
/// loop iteration — O(outstanding) per work request, quadratic over a run
/// and the dominant host cost at 10k workers. This pool drains in
/// O(completions) instead, fed by the transport's
/// [`RecvRequest::notify_ready`] hooks.
///
/// Byte-compatibility with the scan is load-bearing and deliberate:
///
/// * The *arrangement* of the old `Vec` leaks into simulated time through
///   the endgame's `pop()` — which request the master blocks on decides
///   when it resumes. `order` therefore mirrors the exact sequence of
///   `swap_remove`s the scan would have performed, and [`ScoreBoard::pop`]
///   returns exactly the request the old code would have popped.
/// * Within one drain, processing order cannot change state:
///   `record_scores` merges into per-query maps keyed by worker (equal
///   hits merge to equal contents either way) and otherwise only
///   decrements counters. The drain nevertheless visits ready positions
///   in exactly the scan's order.
/// * A hook fires at the same host instant the first successful `test()`
///   would have observed, so the set of messages consumed per drain is
///   identical.
struct ScoreBoard {
    /// token -> outstanding request (`None` = consumed or free).
    slots: Vec<Option<RecvRequest>>,
    free: Vec<u32>,
    /// Mirror of the old `pending_scores` vector: token at each position.
    order: Vec<u32>,
    /// token -> current position in `order` (valid while outstanding).
    pos: Vec<u32>,
    /// Tokens whose receive became consumable, in completion order.
    ready: ReadyQueue,
}

impl ScoreBoard {
    fn new() -> ScoreBoard {
        ScoreBoard {
            slots: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            pos: Vec::new(),
            ready: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn push(&mut self, req: RecvRequest) {
        let token = match self.free.pop() {
            Some(t) => t,
            None => {
                self.slots.push(None);
                self.pos.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        req.notify_ready(&self.ready, token);
        self.slots[token as usize] = Some(req);
        self.pos[token as usize] = self.order.len() as u32;
        self.order.push(token);
    }

    /// Remove `order[p]`, consume its message, and hand it to `f`.
    fn consume_at(&mut self, p: usize, f: &mut impl FnMut(Message)) {
        let t = self.order.swap_remove(p);
        if p < self.order.len() {
            self.pos[self.order[p] as usize] = p as u32;
        }
        let req = self.slots[t as usize].take().expect("token outstanding");
        self.free.push(t);
        f(req.test().expect("hook fired, message consumable"));
    }

    /// Consume every completed receive, replaying the old scan exactly:
    /// visit positions in ascending order; a swap_remove moves the last
    /// element down, and if that element is itself ready it is consumed
    /// at the same position before moving on (the scan re-tested the
    /// swapped-in element without advancing).
    fn drain(&mut self, mut f: impl FnMut(Message)) {
        let ready = std::mem::take(&mut *self.ready.borrow_mut());
        if ready.is_empty() {
            return;
        }
        let mut positions: Vec<u32> = Vec::with_capacity(ready.len());
        for t in ready {
            if self.slots[t as usize].is_some() {
                positions.push(self.pos[t as usize]);
            } else {
                // Consumed by the endgame `pop()` after its hook fired;
                // recycle the token now that its queue entry is spent.
                self.free.push(t);
            }
        }
        positions.sort_unstable();
        // Two pointers: `i` walks ready positions in ascending order; `j`
        // trims entries from the top as last elements get swapped down
        // (the largest pending position is always the candidate to move).
        let (mut i, mut j) = (0, positions.len());
        while i < j {
            let p = positions[i] as usize;
            i += 1;
            loop {
                self.consume_at(p, &mut f);
                // After the removal the vector's old last element sits at
                // `p` — consume it in place if it was ready too.
                if i < j && positions[j - 1] as usize == self.order.len() && p < self.order.len() {
                    j -= 1;
                } else {
                    break;
                }
            }
        }
    }

    /// The request the old code's `pending_scores.pop()` would return.
    fn pop(&mut self) -> Option<RecvRequest> {
        let t = self.order.pop()?;
        // The slot is recycled when the token's ready entry is observed
        // (every request's hook fires eventually), never here — so a
        // token can't be reused while a stale queue entry still names it.
        Some(self.slots[t as usize].take().expect("token outstanding"))
    }
}

/// Run the master on `comm` (the world communicator, rank 0). `file` must
/// be opened on a master-only communicator; it is used only by MW.
#[allow(clippy::too_many_arguments)]
pub async fn run_master(
    sim: Sim,
    comm: Comm,
    params: Rc<SimParams>,
    workload: Rc<Workload>,
    file: File,
    trace: TraceSink,
    commits: CommitTracker,
    faults: Option<FaultCtx>,
    service: Option<ServiceTracker>,
) -> PhaseBreakdown {
    let timer = PhaseTimer::with_trace(&sim, 0, trace);

    // Step 1: distribute input variables.
    timer
        .track(Phase::Setup, comm.bcast(0, Some(()), 1024))
        .await;

    let crash_mode = faults
        .as_ref()
        .is_some_and(|f| f.schedule.params().crashes());
    if let Some(svc) = &service {
        // Service mode never combines with crashes (rejected by
        // validation), so the final barrier is always reachable.
        run_master_service(
            &sim, &comm, &params, &workload, &file, &timer, &commits, svc,
        )
        .await;
        timer.track(Phase::Sync, comm.barrier()).await;
    } else if crash_mode {
        let st = MasterState::prepare(&params, &workload, comm.size() - 1);
        let ctx = faults.as_ref().expect("checked above");
        run_master_faulty(&sim, &comm, &params, st, &file, &timer, &commits, ctx).await;
    } else {
        let st = MasterState::prepare(&params, &workload, comm.size() - 1);
        run_master_normal(&sim, &comm, &params, st, &file, &timer, &commits).await;
        // Step 20/21: final synchronization before exit (fault-free runs
        // only — a dead worker can never arrive at a barrier).
        timer.track(Phase::Sync, comm.barrier()).await;
    }

    let mut bd = timer.snapshot();
    bd.close_to(sim.now());
    bd
}

async fn run_master_normal(
    sim: &Sim,
    comm: &Comm,
    params: &SimParams,
    mut st: MasterState,
    file: &File,
    timer: &PhaseTimer,
    commits: &CommitTracker,
) {
    let mut done_workers = 0usize;
    let mut pending_scores = ScoreBoard::new();
    let mut offset_sends: Vec<SendRequest> = Vec::new();
    // MW with nonblocking I/O: at most one batch write in flight.
    let mut pending_io: Option<JoinHandle<()>> = None;

    let notify_all = params.strategy.inherently_synchronizing() || params.query_sync;

    loop {
        // Steps 10–19: drain any results that have arrived, then handle
        // batches that are now complete.
        pending_scores.drain(|msg| record_scores(&mut st.batches, msg, st.gran));

        for b in 0..st.nbatches {
            let complete = st.batches[b].as_ref().is_some_and(BatchState::is_complete);
            if !complete {
                continue;
            }
            let batch = st.batches[b].take().expect("checked above");
            st.batches_left -= 1;
            let (plans, total) = batch.assign_offsets(st.cursor);
            let base = st.cursor;
            st.cursor += total;
            let batch_queries = st.batch_queries(b);

            match params.strategy {
                Strategy::Mw => {
                    let writers = if total > 0 { vec![0] } else { Vec::new() };
                    commits.expect(b, writers, batch_queries, total, base, sim.now());
                    // Step 18: the master writes the batch contiguously and
                    // syncs. With blocking I/O (the default, as in the
                    // paper) it cannot serve requests meanwhile; with the
                    // nonblocking option the write proceeds in the
                    // background and only the *previous* batch's
                    // completion is awaited (bounded buffering).
                    if total > 0 {
                        if params.mw_nonblocking_io {
                            if let Some(h) = pending_io.take() {
                                timer.track(Phase::Io, h.join()).await;
                            }
                            let fh = file.handle().clone();
                            let ep = file.endpoint();
                            let commits2 = commits.clone();
                            let sim3 = sim.clone();
                            pending_io = Some(sim.spawn("mw-bg-io", async move {
                                fh.write_contiguous(ep, base, total)
                                    .await
                                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                                fh.sync(ep)
                                    .await
                                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                                commits2.complete_by(b, 0, sim3.now());
                            }));
                        } else {
                            timer
                                .track(Phase::Io, file.write_at(base, total))
                                .await
                                .unwrap_or_else(|e| crate::runner::io_failure(e));
                            timer
                                .track(Phase::Io, file.sync())
                                .await
                                .unwrap_or_else(|e| crate::runner::io_failure(e));
                            commits.complete_by(b, 0, sim.now());
                        }
                    }
                    if params.query_sync {
                        for w in 1..=st.nworkers {
                            let msg = OffsetsMsg {
                                batch: b,
                                offsets: Vec::new(),
                            };
                            let bytes = msg.wire_bytes();
                            offset_sends.push(comm.isend(w, TAG_OFFSETS, msg, bytes));
                        }
                    }
                }
                _ => {
                    commits.expect(
                        b,
                        batch.contributing_workers(),
                        batch_queries,
                        total,
                        base,
                        sim.now(),
                    );
                    // Step 15: hand out the location lists.
                    let targets: Vec<usize> = if notify_all {
                        (1..=st.nworkers).collect()
                    } else {
                        batch.contributing_workers()
                    };
                    for w in targets {
                        let offsets = plans.get(&w).map(|p| p.offsets.clone()).unwrap_or_default();
                        let msg = OffsetsMsg { batch: b, offsets };
                        let bytes = msg.wire_bytes();
                        offset_sends.push(comm.isend(w, TAG_OFFSETS, msg, bytes));
                    }
                }
            }
        }

        // Steps 3–9: answer one work request, or wind down.
        if !st.tasks.is_empty() || done_workers < st.nworkers {
            let req = timer
                .track(
                    Phase::DataDistribution,
                    comm.recv(Source::Any, TAG_WORK_REQ),
                )
                .await;
            let w = req.status.source;
            if let Some((q, f)) = st.tasks.pop_front() {
                // Step 8: post the receive for this task's scores first so
                // the progress engine can match it whenever it arrives.
                pending_scores.push(comm.irecv(w, TAG_SCORES));
                timer
                    .track(
                        Phase::DataDistribution,
                        comm.send(
                            w,
                            TAG_ASSIGN,
                            Assign::Task {
                                query: q,
                                fragment: f,
                            },
                            ASSIGN_BYTES,
                        ),
                    )
                    .await;
            } else {
                timer
                    .track(
                        Phase::DataDistribution,
                        comm.send(w, TAG_ASSIGN, Assign::Done, ASSIGN_BYTES),
                    )
                    .await;
                done_workers += 1;
            }
        } else if let Some(req) = pending_scores.pop() {
            // Everything is scheduled; block for the stragglers' results.
            let msg = timer.track(Phase::GatherResults, req.wait()).await;
            record_scores(&mut st.batches, msg, st.gran);
        } else if st.batches_left == 0 {
            break;
        } else {
            unreachable!(
                "no pending results but {} batches incomplete",
                st.batches_left
            );
        }
    }

    if let Some(h) = pending_io.take() {
        timer.track(Phase::Io, h.join()).await;
    }
    timer
        .track(Phase::GatherResults, waitall_sends(&offset_sends))
        .await;
}

/// Per-query scheduling state in service mode, created at admission.
struct SvcQuery {
    tenant: usize,
    arrival: SimTime,
    admitted: SimTime,
    /// Set when the first fragment is handed to a worker.
    dispatched: Option<SimTime>,
    /// Total result bytes (the SJF size oracle).
    bytes: u64,
    /// Next fragment to hand out; the query is fully dispatched at `nf`.
    next_fragment: usize,
}

/// Suspends the service master until its mailbox sees activity, the next
/// client arrival is due, or a poll tick elapses. Same single-mailbox
/// argument as [`NextEvent`]: one watch registration covers every wake
/// source.
struct SvcEvent<'a> {
    wr: &'a RecvRequest,
    scores: &'a [RecvRequest],
    sleep: Sleep,
}

impl Future for SvcEvent<'_> {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.wr.ready() || this.scores.iter().any(|r| r.ready()) {
            return Poll::Ready(());
        }
        this.wr.watch();
        Pin::new(&mut this.sleep).poll(cx)
    }
}

/// The open-loop service master: admit arriving queries into a bounded
/// queue (shedding when it is full), pick the next task by the configured
/// scheduling policy, and flush each query's output the moment its last
/// fragment is merged (service runs write per query).
///
/// Event-driven polling like the crash-tolerant loop — the master must
/// keep observing the arrival clock even when no worker is asking for
/// work — but without heartbeats or repair: service mode rejects worker
/// crashes at validation.
#[allow(clippy::too_many_arguments)]
async fn run_master_service(
    sim: &Sim,
    comm: &Comm,
    params: &SimParams,
    workload: &Workload,
    file: &File,
    timer: &PhaseTimer,
    commits: &CommitTracker,
    svc: &ServiceTracker,
) {
    let sp = params.service().expect("service mode");
    let nworkers = comm.size() - 1;
    let nq = workload.queries.len();
    let nf = workload.params.fragments;
    // The arrival stream is drawn up front from its own seed: scheduling
    // can never perturb who arrives when.
    let arrivals = sp.arrivals.generate(nq, sp.tenants, sp.arrival_seed);
    let bytes_of: Vec<u64> = workload
        .queries
        .iter()
        .map(|q| q.hits.iter().flatten().map(|h| h.size).sum())
        .collect();

    // One batch per query: the reply is durable per query, which is what
    // per-query latency means.
    let mut batches: Vec<Option<BatchState>> = (0..nq)
        .map(|q| Some(BatchState::new(q, vec![q], nf)))
        .collect();
    let mut batches_left = nq;
    let mut cursor = 0u64;

    let mut queries: Vec<Option<SvcQuery>> = (0..nq).map(|_| None).collect();
    let mut next_arrival = 0usize;
    // Admitted queries not yet first-dispatched (the bounded queue).
    let mut queued = 0usize;
    // Fragments admitted but not yet handed out.
    let mut ready_fragments = 0usize;
    // Result bytes dispatched per tenant (the fair-share ledger).
    let mut tenant_bytes = vec![0u64; sp.tenants];
    // TAG_OFFSETS messages sent per worker, carried in the shutdown
    // assignment so workers know exactly how many to drain (shed queries
    // make the count underivable from the workload).
    let mut sent_offsets = vec![0usize; nworkers + 1];
    let mut done = vec![false; nworkers + 1];
    let mut pending_scores: Vec<RecvRequest> = Vec::new();
    let mut offset_sends: Vec<SendRequest> = Vec::new();
    // MW with nonblocking I/O: at most one query write in flight.
    let mut pending_io: Option<JoinHandle<()>> = None;
    let notify_all = params.strategy.inherently_synchronizing() || params.query_sync;

    let mut wr_rx = comm.irecv(Source::Any, TAG_WORK_REQ);

    loop {
        // Admission: process every client submission that is due. When the
        // master was blind for a while (an MW write), the backlog is
        // handled in arrival order, each against the queue depth at its
        // own admission instant — a full queue sheds honestly.
        while next_arrival < nq && SimTime::from_nanos(arrivals[next_arrival].at_ns) <= sim.now() {
            let a = arrivals[next_arrival];
            let q = next_arrival;
            next_arrival += 1;
            if queued >= sp.queue_capacity {
                svc.shed(ShedEvent {
                    query: q,
                    tenant: a.tenant,
                    arrival: SimTime::from_nanos(a.at_ns),
                });
                batches[q] = None;
                batches_left -= 1;
                continue;
            }
            queries[q] = Some(SvcQuery {
                tenant: a.tenant,
                arrival: SimTime::from_nanos(a.at_ns),
                admitted: sim.now(),
                dispatched: None,
                bytes: bytes_of[q],
                next_fragment: 0,
            });
            queued += 1;
            ready_fragments += nf;
            svc.queue_depth(queued);
        }

        // Drain results that have arrived.
        let mut k = 0;
        while k < pending_scores.len() {
            match pending_scores[k].test() {
                Some(msg) => {
                    let req = pending_scores.swap_remove(k);
                    drop(req);
                    record_scores(&mut batches, msg, 1);
                }
                None => k += 1,
            }
        }

        // Flush queries whose last fragment is merged: lay out the output,
        // write (MW) or notify the writers (WW), and record the lifecycle.
        for b in 0..nq {
            let complete = batches[b].as_ref().is_some_and(BatchState::is_complete);
            if !complete {
                continue;
            }
            let batch = batches[b].take().expect("checked above");
            batches_left -= 1;
            let (plans, total) = batch.assign_offsets(cursor);
            let base = cursor;
            cursor += total;
            let sq = queries[b].as_ref().expect("complete query was admitted");
            svc.serve(ServedEvent {
                query: b,
                tenant: sq.tenant,
                arrival: sq.arrival,
                admitted: sq.admitted,
                dispatched: sq.dispatched.expect("complete query was dispatched"),
                merged: sim.now(),
                bytes: sq.bytes,
            });

            match params.strategy {
                Strategy::Mw => {
                    let writers = if total > 0 { vec![0] } else { Vec::new() };
                    commits.expect(b, writers, 1, total, base, sim.now());
                    if total > 0 {
                        if params.mw_nonblocking_io {
                            if let Some(h) = pending_io.take() {
                                timer.track(Phase::Io, h.join()).await;
                            }
                            let fh = file.handle().clone();
                            let ep = file.endpoint();
                            let commits2 = commits.clone();
                            let sim3 = sim.clone();
                            pending_io = Some(sim.spawn("mw-bg-io", async move {
                                fh.write_contiguous(ep, base, total)
                                    .await
                                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                                fh.sync(ep)
                                    .await
                                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                                commits2.complete_by(b, 0, sim3.now());
                            }));
                        } else {
                            timer
                                .track(Phase::Io, file.write_at(base, total))
                                .await
                                .unwrap_or_else(|e| crate::runner::io_failure(e));
                            timer
                                .track(Phase::Io, file.sync())
                                .await
                                .unwrap_or_else(|e| crate::runner::io_failure(e));
                            commits.complete_by(b, 0, sim.now());
                        }
                    }
                    if params.query_sync {
                        for (w, sent) in sent_offsets.iter_mut().enumerate().skip(1) {
                            let msg = OffsetsMsg {
                                batch: b,
                                offsets: Vec::new(),
                            };
                            let bytes = msg.wire_bytes();
                            offset_sends.push(comm.isend(w, TAG_OFFSETS, msg, bytes));
                            *sent += 1;
                        }
                    }
                }
                _ => {
                    commits.expect(b, batch.contributing_workers(), 1, total, base, sim.now());
                    let targets: Vec<usize> = if notify_all {
                        (1..=nworkers).collect()
                    } else {
                        batch.contributing_workers()
                    };
                    for w in targets {
                        let offsets = plans.get(&w).map(|p| p.offsets.clone()).unwrap_or_default();
                        let msg = OffsetsMsg { batch: b, offsets };
                        let bytes = msg.wire_bytes();
                        offset_sends.push(comm.isend(w, TAG_OFFSETS, msg, bytes));
                        sent_offsets[w] += 1;
                    }
                }
            }
        }

        // The run is resolved once every arrival was admitted or shed,
        // every admitted fragment was dispatched and reported back, every
        // query's output was flushed, and every write is durable.
        let resolved = next_arrival == nq
            && ready_fragments == 0
            && pending_scores.is_empty()
            && batches_left == 0
            && commits.pending_empty();

        // Answer one work request.
        if let Some(m) = wr_rx.test() {
            let (_, status) = m.into_parts::<()>();
            let w = status.source;
            wr_rx = comm.irecv(Source::Any, TAG_WORK_REQ);
            let candidate = match sp.policy {
                // FIFO: arrival order is query-index order (the stream is
                // sorted and arrival i carries query i).
                SchedPolicy::Fifo => {
                    (0..nq).find(|&q| queries[q].as_ref().is_some_and(|s| s.next_fragment < nf))
                }
                // SJF: smallest total result volume first (the master
                // knows each query's size from the workload oracle).
                // Ties break FIFO: by arrival time, then query id — not
                // by whatever order the candidate scan happens to visit.
                SchedPolicy::Sjf => (0..nq)
                    .filter(|&q| queries[q].as_ref().is_some_and(|s| s.next_fragment < nf))
                    .min_by_key(|&q| {
                        let arrival = queries[q].as_ref().expect("filtered").arrival;
                        (bytes_of[q], arrival, q)
                    }),
                // Fair share: the tenant with the least dispatched bytes
                // goes first; FIFO within the tenant.
                SchedPolicy::FairShare => (0..nq)
                    .filter(|&q| queries[q].as_ref().is_some_and(|s| s.next_fragment < nf))
                    .min_by_key(|&q| {
                        let t = queries[q].as_ref().expect("filtered").tenant;
                        (tenant_bytes[t], t, q)
                    }),
            };
            let assign = if let Some(q) = candidate {
                let frag_bytes: u64 = workload.queries[q].hits[queries[q]
                    .as_ref()
                    .expect("candidate is admitted")
                    .next_fragment]
                    .iter()
                    .map(|h| h.size)
                    .sum();
                let sq = queries[q].as_mut().expect("candidate is admitted");
                let f = sq.next_fragment;
                sq.next_fragment += 1;
                if sq.dispatched.is_none() {
                    sq.dispatched = Some(sim.now());
                    queued -= 1;
                }
                tenant_bytes[sq.tenant] += frag_bytes;
                ready_fragments -= 1;
                pending_scores.push(comm.irecv(w, TAG_SCORES));
                Assign::Task {
                    query: q,
                    fragment: f,
                }
            } else if resolved {
                done[w] = true;
                Assign::Shutdown {
                    offsets: sent_offsets[w],
                }
            } else {
                Assign::Wait
            };
            let bytes = assign.wire_bytes();
            timer
                .track(
                    Phase::DataDistribution,
                    comm.send(w, TAG_ASSIGN, assign, bytes),
                )
                .await;
            continue;
        }

        if (1..=nworkers).all(|w| done[w]) {
            break;
        }

        // Idle: wake on mailbox activity, the next arrival, or a poll
        // tick (whichever is first).
        let mut delay = sp.poll_interval;
        if next_arrival < nq {
            let due = SimTime::from_nanos(arrivals[next_arrival].at_ns);
            delay = delay.min(due.saturating_sub(sim.now()));
        }
        timer
            .track(
                Phase::DataDistribution,
                SvcEvent {
                    wr: &wr_rx,
                    scores: &pending_scores,
                    sleep: sim.sleep(delay),
                },
            )
            .await;
    }

    if let Some(h) = pending_io.take() {
        timer.track(Phase::Io, h.join()).await;
    }
    timer
        .track(Phase::GatherResults, waitall_sends(&offset_sends))
        .await;
}

/// A dead worker's write obligation for one batch, handed to a survivor.
#[derive(Clone)]
struct RepairBundle {
    batch: usize,
    for_worker: usize,
    tasks: usize,
    bytes: u64,
    regions: Vec<Region>,
}

/// Suspends the master until its mailbox sees activity or a tick elapses.
/// All master-bound traffic (work requests, heartbeats, scores) lands in
/// one mailbox, so a single watch registration covers every wake source.
struct NextEvent<'a> {
    wr: &'a RecvRequest,
    hb: &'a RecvRequest,
    scores: &'a [(usize, RecvRequest)],
    sleep: Sleep,
}

impl Future for NextEvent<'_> {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.wr.ready() || this.hb.ready() || this.scores.iter().any(|(_, r)| r.ready()) {
            return Poll::Ready(());
        }
        this.wr.watch();
        Pin::new(&mut this.sleep).poll(cx)
    }
}

/// The crash-tolerant master loop. Event-driven polling instead of a
/// blocking receive: the master must keep observing heartbeats (and the
/// detection clock) even while no work request is in flight.
#[allow(clippy::too_many_arguments)]
async fn run_master_faulty(
    sim: &Sim,
    comm: &Comm,
    params: &SimParams,
    mut st: MasterState,
    file: &File,
    timer: &PhaseTimer,
    commits: &CommitTracker,
    ctx: &FaultCtx,
) {
    let fp = ctx.schedule.params().clone();
    let nworkers = st.nworkers;
    let tick = fp.heartbeat_interval;

    // Index 0 (the master itself) is unused in these per-rank tables.
    let mut alive = vec![true; nworkers + 1];
    let mut done = vec![false; nworkers + 1];
    let mut liveness = Liveness::new(nworkers + 1, sim.now(), fp.detection_timeout);
    let mut in_flight: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    let mut in_flight_repairs: BTreeMap<usize, Vec<RepairBundle>> = BTreeMap::new();
    let mut repairs: VecDeque<RepairBundle> = VecDeque::new();
    // Per-batch per-worker write layouts, kept so a casualty's share can
    // be reconstructed into a repair bundle.
    let mut saved_plans: BTreeMap<usize, BTreeMap<usize, WorkerPlan>> = BTreeMap::new();
    let mut pending_scores: Vec<(usize, RecvRequest)> = Vec::new();
    let mut offset_sends: Vec<SendRequest> = Vec::new();

    let mut wr_rx = comm.irecv(Source::Any, TAG_WORK_REQ);
    let mut hb_rx = comm.irecv(Source::Any, TAG_HEARTBEAT);

    loop {
        // Heartbeats refresh liveness.
        drain_heartbeats(comm, &mut hb_rx, &mut liveness, sim);

        // Results.
        let mut k = 0;
        while k < pending_scores.len() {
            if let Some(m) = pending_scores[k].1.test() {
                let (w, req) = pending_scores.swap_remove(k);
                drop(req);
                let (scores, _) = m.into_parts::<ScoresMsg>();
                if let Some(v) = in_flight.get_mut(&w) {
                    v.retain(|&t| t != (scores.query, scores.fragment));
                }
                let b = scores.query / st.gran;
                st.batches[b]
                    .as_mut()
                    .unwrap_or_else(|| panic!("scores for already-written batch {b}"))
                    .record(scores.query, scores.fragment, w, &scores.hits);
            } else {
                k += 1;
            }
        }

        // A repair is finished once its batch no longer owes the dead
        // rank's write (the survivor completes it through the shared
        // tracker, so no acknowledgement message is needed).
        for v in in_flight_repairs.values_mut() {
            v.retain(|r| commits.unfinished_for(r.for_worker).contains(&r.batch));
        }

        // Completed batches: lay out offsets, remember each worker's
        // share, write (MW) or notify the contributors (WW).
        for b in 0..st.nbatches {
            let complete = st.batches[b].as_ref().is_some_and(BatchState::is_complete);
            if !complete {
                continue;
            }
            let batch = st.batches[b].take().expect("checked above");
            st.batches_left -= 1;
            let (plans, total) = batch.assign_offsets(st.cursor);
            let base = st.cursor;
            st.cursor += total;
            let batch_queries = st.batch_queries(b);

            if params.strategy == Strategy::Mw {
                let writers = if total > 0 { vec![0] } else { Vec::new() };
                commits.expect(b, writers, batch_queries, total, base, sim.now());
                if total > 0 {
                    timer
                        .track(Phase::Io, file.write_at(base, total))
                        .await
                        .unwrap_or_else(|e| crate::runner::io_failure(e));
                    timer
                        .track(Phase::Io, file.sync())
                        .await
                        .unwrap_or_else(|e| crate::runner::io_failure(e));
                    commits.complete_by(b, 0, sim.now());
                }
            } else {
                let writers = batch.contributing_workers();
                commits.expect(b, writers.clone(), batch_queries, total, base, sim.now());
                // A writer that died a moment ago (not yet detected) gets
                // its message absorbed by the failed mailbox; detection
                // will turn its share into a repair bundle.
                for w in writers {
                    let plan = &plans[&w];
                    let msg = OffsetsMsg {
                        batch: b,
                        offsets: plan.offsets.clone(),
                    };
                    let bytes = msg.wire_bytes();
                    offset_sends.push(comm.isend(w, TAG_OFFSETS, msg, bytes));
                }
                saved_plans.insert(b, plans);
            }
        }

        // Failure detection: silence beyond the timeout is death. Drain
        // heartbeats again first — the MW write above can block the
        // master for longer than the timeout, and heartbeats that arrived
        // during its own blindness must not read as worker silence.
        drain_heartbeats(comm, &mut hb_rx, &mut liveness, sim);
        for w in 1..=nworkers {
            if alive[w] && !done[w] && liveness.silent(w, sim.now()) {
                on_death(
                    w,
                    sim,
                    params,
                    ctx,
                    &mut alive,
                    &mut st,
                    &mut in_flight,
                    &mut in_flight_repairs,
                    &mut repairs,
                    &saved_plans,
                    &mut pending_scores,
                    commits,
                );
            }
        }

        let resolved = st.tasks.is_empty()
            && repairs.is_empty()
            && in_flight.values().all(Vec::is_empty)
            && in_flight_repairs.values().all(Vec::is_empty)
            && st.batches_left == 0
            && commits.pending_empty();

        if (1..=nworkers).all(|w| !alive[w]) && !resolved {
            panic!("all workers failed; the run cannot complete");
        }

        // Work requests: repairs take priority over fresh tasks so the
        // output's durable prefix closes as early as possible.
        if let Some(m) = wr_rx.test() {
            let (_, status) = m.into_parts::<()>();
            let w = status.source;
            wr_rx = comm.irecv(Source::Any, TAG_WORK_REQ);
            if alive[w] && !done[w] {
                liveness.refresh(w, sim.now());
                let assign = if let Some(r) = repairs.pop_front() {
                    ctx.log.record(
                        sim.now(),
                        FaultKind::BatchRepaired {
                            batch: r.batch,
                            bytes: r.bytes,
                        },
                    );
                    in_flight_repairs.entry(w).or_default().push(r.clone());
                    Assign::Repair {
                        batch: r.batch,
                        for_worker: r.for_worker,
                        tasks: r.tasks,
                        bytes: r.bytes,
                        regions: r.regions,
                    }
                } else if let Some((q, f)) = st.tasks.pop_front() {
                    in_flight.entry(w).or_default().push((q, f));
                    pending_scores.push((w, comm.irecv(w, TAG_SCORES)));
                    Assign::Task {
                        query: q,
                        fragment: f,
                    }
                } else if resolved {
                    done[w] = true;
                    Assign::Done
                } else {
                    Assign::Wait
                };
                let bytes = assign.wire_bytes();
                timer
                    .track(
                        Phase::DataDistribution,
                        comm.send(w, TAG_ASSIGN, assign, bytes),
                    )
                    .await;
            }
            continue;
        }

        if (1..=nworkers).all(|w| done[w] || !alive[w]) {
            break;
        }

        // Idle: wait for mailbox activity, or a tick to re-check the
        // detection clock.
        timer
            .track(
                Phase::DataDistribution,
                NextEvent {
                    wr: &wr_rx,
                    hb: &hb_rx,
                    scores: &pending_scores,
                    sleep: sim.sleep(tick),
                },
            )
            .await;
    }

    debug_assert!(pending_scores.is_empty(), "scores pending after shutdown");
    timer
        .track(Phase::GatherResults, waitall_sends(&offset_sends))
        .await;
    // No final barrier: the dead cannot arrive at one.
}

/// Consume every queued heartbeat, refreshing the senders' liveness.
/// Called again right before the detection scan because loop iterations
/// can block (MW batch writes) for longer than the detection timeout.
/// The boundary rule itself lives in [`crate::failure_detector`].
fn drain_heartbeats(comm: &Comm, hb_rx: &mut RecvRequest, liveness: &mut Liveness, sim: &Sim) {
    while let Some(m) = hb_rx.test() {
        let (_, status) = m.into_parts::<()>();
        liveness.refresh(status.source, sim.now());
        *hb_rx = comm.irecv(Source::Any, TAG_HEARTBEAT);
    }
}

/// Declare worker `w` dead and fold its obligations back into the
/// schedule: in-flight and revoked tasks are requeued, owed batch writes
/// become repair bundles for survivors.
#[allow(clippy::too_many_arguments)]
fn on_death(
    w: usize,
    sim: &Sim,
    params: &SimParams,
    ctx: &FaultCtx,
    alive: &mut [bool],
    st: &mut MasterState,
    in_flight: &mut BTreeMap<usize, Vec<(usize, usize)>>,
    in_flight_repairs: &mut BTreeMap<usize, Vec<RepairBundle>>,
    repairs: &mut VecDeque<RepairBundle>,
    saved_plans: &BTreeMap<usize, BTreeMap<usize, WorkerPlan>>,
    pending_scores: &mut Vec<(usize, RecvRequest)>,
    commits: &CommitTracker,
) {
    let now = sim.now();
    alive[w] = false;
    ctx.log.record(now, FaultKind::WorkerDetected { rank: w });

    // A score message from the dead rank may still be on the wire. Leak
    // its posted receives rather than cancel them, so a rendezvous
    // transfer in flight can still match and complete; nobody reads it.
    let mut i = 0;
    while i < pending_scores.len() {
        if pending_scores[i].0 == w {
            let (_, req) = pending_scores.swap_remove(i);
            std::mem::forget(req);
        } else {
            i += 1;
        }
    }

    // Tasks assigned but never reported.
    for (q, f) in in_flight.remove(&w).unwrap_or_default() {
        ctx.log.record(
            now,
            FaultKind::TaskReassigned {
                query: q,
                fragment: f,
            },
        );
        st.tasks.push_back((q, f));
    }
    // Repairs it was performing for earlier casualties.
    for r in in_flight_repairs.remove(&w).unwrap_or_default() {
        repairs.push_back(r);
    }

    // WW: reported scores reference result data that only existed in the
    // dead worker's memory — revoke and redo them. (MW keeps them: the
    // data rode along with the scores and is safe at the master.)
    if params.strategy.workers_write() {
        for slot in st.batches.iter_mut().flatten() {
            for (q, f) in slot.revoke(w) {
                ctx.log.record(
                    now,
                    FaultKind::TaskReassigned {
                        query: q,
                        fragment: f,
                    },
                );
                st.tasks.push_back((q, f));
            }
        }
    }

    // Writes it still owed for batches whose layout was already fixed.
    for b in commits.unfinished_for(w) {
        let plan = saved_plans
            .get(&b)
            .and_then(|m| m.get(&w))
            .cloned()
            .unwrap_or_else(|| panic!("no saved plan for batch {b} writer {w}"));
        repairs.push_back(RepairBundle {
            batch: b,
            for_worker: w,
            tasks: plan.tasks,
            bytes: plan.bytes,
            regions: plan.regions,
        });
    }
}

fn record_scores(batches: &mut [Option<BatchState>], msg: Message, gran: usize) {
    let (scores, status) = msg.into_parts::<ScoresMsg>();
    let b = scores.query / gran;
    batches[b]
        .as_mut()
        .unwrap_or_else(|| panic!("scores for already-written batch {b}"))
        .record(scores.query, scores.fragment, status.source, &scores.hits);
}
