//! Message types and tags exchanged between the master and workers.

use s3a_mpi::Tag;
use s3a_pvfs::Region;
use s3a_workload::Hit;

/// Worker → master: request for work (Algorithm 2, step 3).
pub const TAG_WORK_REQ: Tag = 1;
/// Master → worker: task assignment or end-of-work (Algorithm 1, step 7).
pub const TAG_ASSIGN: Tag = 2;
/// Worker → master: scores (and, for MW, result data) for one task
/// (Algorithm 2, step 10).
pub const TAG_SCORES: Tag = 3;
/// Master → worker: write-location list for a completed batch (Algorithm
/// 1, step 15); doubles as the "batch written" notification in MW runs
/// with query sync.
pub const TAG_OFFSETS: Tag = 4;
/// Worker → master: liveness beacon, sent periodically by a sibling task
/// whenever crash injection is armed. Only its arrival time matters.
pub const TAG_HEARTBEAT: Tag = 5;

/// Wire size of a work request.
pub const WORK_REQ_BYTES: u64 = 16;
/// Wire size of an assignment message.
pub const ASSIGN_BYTES: u64 = 32;
/// Wire size of a heartbeat message.
pub const HEARTBEAT_BYTES: u64 = 8;
/// Wire bytes per hit in a scores message (score + size).
pub const SCORE_ENTRY_BYTES: u64 = 16;
/// Wire bytes per entry in an offset list (one 64-bit offset).
pub const OFFSET_ENTRY_BYTES: u64 = 8;

/// Master → worker response to a work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Assign {
    /// Search `query` against `fragment`.
    Task {
        /// Query index.
        query: usize,
        /// Database fragment index.
        fragment: usize,
    },
    /// No task is available right now, but the run is not over (tasks may
    /// be requeued if a peer dies). Re-request after a short sleep. Only
    /// sent when crash injection is armed.
    Wait,
    /// Write a dead peer's already-assigned output regions on its behalf
    /// (checkpoint repair). Only sent when crash injection is armed.
    Repair {
        /// Batch whose commit the dead worker still owed.
        batch: usize,
        /// The dead worker's rank (whose commit obligation this clears).
        for_worker: usize,
        /// Number of (query, fragment) results backing the regions (for
        /// the compute-cost model of re-deriving the data).
        tasks: usize,
        /// Total output bytes to write.
        bytes: u64,
        /// The exact file regions the dead worker was told to write.
        regions: Vec<Region>,
    },
    /// All queries have been scheduled; no more work will come. In
    /// service mode the master additionally tells the worker how many
    /// offset messages it will ultimately receive, because shed queries
    /// make that count impossible to derive locally from the workload.
    Done,
    /// Service-mode end-of-work: like [`Assign::Done`], but carries the
    /// total number of [`TAG_OFFSETS`] messages the master has sent (or
    /// will send) this worker, so the worker can drain exactly that many
    /// before leaving.
    Shutdown {
        /// Total offset messages addressed to this worker over the run.
        offsets: usize,
    },
}

impl Assign {
    /// Simulated wire size of this assignment.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Assign::Repair { regions, .. } => ASSIGN_BYTES + 16 * regions.len() as u64,
            _ => ASSIGN_BYTES,
        }
    }
}

/// Worker → master: the outcome of one (query, fragment) search, hits
/// sorted by descending score. In MW runs the simulated wire size also
/// covers the result data riding along with the scores.
#[derive(Debug, Clone)]
pub struct ScoresMsg {
    /// Query index.
    pub query: usize,
    /// Fragment index.
    pub fragment: usize,
    /// Hits, sorted by `(score desc, size desc)`.
    pub hits: Vec<Hit>,
}

/// Master → worker: where to write each of the worker's results for a
/// completed batch. Offsets are in the worker's local merged order. An
/// empty list is a pure synchronization notification.
#[derive(Debug, Clone)]
pub struct OffsetsMsg {
    /// Batch index (query group).
    pub batch: usize,
    /// One file offset per result the worker holds for this batch.
    pub offsets: Vec<u64>,
}

impl OffsetsMsg {
    /// Simulated wire size of this message.
    pub fn wire_bytes(&self) -> u64 {
        16 + OFFSET_ENTRY_BYTES * self.offsets.len() as u64
    }
}

/// Ordering used for all score-based sorting on both master and worker:
/// descending score, ties by descending size. Remaining ties are between
/// hits of identical size, so any order yields the same file layout.
pub fn hit_order(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    b.score.cmp(&a.score).then(b.size.cmp(&a.size))
}

/// Merge two lists already sorted by [`hit_order`] into one.
pub fn merge_sorted_hits(a: &[Hit], b: &[Hit]) -> Vec<Hit> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if hit_order(&a[i], &b[j]) != std::cmp::Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(score: u64, size: u64) -> Hit {
        Hit { score, size }
    }

    #[test]
    fn hit_order_desc_score_then_desc_size() {
        assert_eq!(hit_order(&h(10, 1), &h(5, 9)), std::cmp::Ordering::Less);
        assert_eq!(hit_order(&h(5, 9), &h(5, 1)), std::cmp::Ordering::Less);
        assert_eq!(hit_order(&h(5, 5), &h(5, 5)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn merge_keeps_global_order() {
        let a = vec![h(9, 1), h(5, 2), h(1, 3)];
        let b = vec![h(8, 1), h(5, 9), h(0, 1)];
        let m = merge_sorted_hits(&a, &b);
        let scores: Vec<u64> = m.iter().map(|x| x.score).collect();
        assert_eq!(scores, vec![9, 8, 5, 5, 1, 0]);
        // The score-5 tie is resolved by larger size first.
        assert_eq!(m[2].size, 9);
        assert_eq!(m[3].size, 2);
    }

    #[test]
    fn merge_with_empty() {
        let a = vec![h(3, 1)];
        assert_eq!(merge_sorted_hits(&a, &[]), a);
        assert_eq!(merge_sorted_hits(&[], &a), a);
    }

    #[test]
    fn offsets_wire_size() {
        let m = OffsetsMsg {
            batch: 0,
            offsets: vec![0; 10],
        };
        assert_eq!(m.wire_bytes(), 16 + 80);
    }
}
