//! Message types and tags exchanged between the master and workers.

use s3a_mpi::Tag;
use s3a_pvfs::Region;
use s3a_workload::Hit;

/// Worker → master: request for work (Algorithm 2, step 3).
pub const TAG_WORK_REQ: Tag = 1;
/// Master → worker: task assignment or end-of-work (Algorithm 1, step 7).
pub const TAG_ASSIGN: Tag = 2;
/// Worker → master: scores (and, for MW, result data) for one task
/// (Algorithm 2, step 10).
pub const TAG_SCORES: Tag = 3;
/// Master → worker: write-location list for a completed batch (Algorithm
/// 1, step 15); doubles as the "batch written" notification in MW runs
/// with query sync.
pub const TAG_OFFSETS: Tag = 4;
/// Worker → master: liveness beacon, sent periodically by a sibling task
/// whenever crash injection is armed. Only its arrival time matters.
pub const TAG_HEARTBEAT: Tag = 5;
/// Master → master: an idle shard asks a sibling for queued tasks.
pub const TAG_STEAL_REQ: Tag = 6;
/// Master → master: the victim's reply (possibly empty) to a steal
/// request.
pub const TAG_STEAL_RESP: Tag = 7;
/// Master → worker: control-plane message (re-homing after a master
/// death).
pub const TAG_CTRL: Tag = 8;
/// Worker → master: acknowledgement of a control message.
pub const TAG_CTRL_ACK: Tag = 9;
/// Standby master → coordinator: liveness beacon, sent whenever a
/// master-crash schedule is armed.
pub const TAG_MASTER_HB: Tag = 10;
/// Master ↔ coordinator: shard progress/quiesce state (see
/// [`ShardStatus`], [`ShardCtrl`]).
pub const TAG_STATUS: Tag = 11;

/// Wire size of a work request.
pub const WORK_REQ_BYTES: u64 = 16;
/// Wire size of an assignment message.
pub const ASSIGN_BYTES: u64 = 32;
/// Wire size of a heartbeat message.
pub const HEARTBEAT_BYTES: u64 = 8;
/// Wire bytes per hit in a scores message (score + size).
pub const SCORE_ENTRY_BYTES: u64 = 16;
/// Wire bytes per entry in an offset list (one 64-bit offset).
pub const OFFSET_ENTRY_BYTES: u64 = 8;
/// Wire size of a steal request, a shard status, or any fixed-size
/// control message.
pub const CTRL_BYTES: u64 = 24;
/// Wire bytes per `(query, sub-fragment)` task moved by a steal response
/// or purged by a re-home notice.
pub const TASK_ENTRY_BYTES: u64 = 16;

/// Master → worker response to a work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Assign {
    /// Search `query` against `fragment`.
    Task {
        /// Query index.
        query: usize,
        /// Database fragment index.
        fragment: usize,
    },
    /// No task is available right now, but the run is not over (tasks may
    /// be requeued if a peer dies). Re-request after a short sleep. Only
    /// sent when crash injection is armed.
    Wait,
    /// Write a dead peer's already-assigned output regions on its behalf
    /// (checkpoint repair). Only sent when crash injection is armed.
    Repair {
        /// Batch whose commit the dead worker still owed.
        batch: usize,
        /// The dead worker's rank (whose commit obligation this clears).
        for_worker: usize,
        /// Number of (query, fragment) results backing the regions (for
        /// the compute-cost model of re-deriving the data).
        tasks: usize,
        /// Total output bytes to write.
        bytes: u64,
        /// The exact file regions the dead worker was told to write.
        regions: Vec<Region>,
    },
    /// All queries have been scheduled; no more work will come. In
    /// service mode the master additionally tells the worker how many
    /// offset messages it will ultimately receive, because shed queries
    /// make that count impossible to derive locally from the workload.
    Done,
    /// Service-mode end-of-work: like [`Assign::Done`], but carries the
    /// total number of [`TAG_OFFSETS`] messages the master has sent (or
    /// will send) this worker, so the worker can drain exactly that many
    /// before leaving.
    Shutdown {
        /// Total offset messages addressed to this worker over the run.
        offsets: usize,
    },
    /// Sharded mode: search `query` against sub-fragment `fragment` (a
    /// `1/subfragment_factor` slice of a database fragment) and report to
    /// `owner`. When `ship` is set the result data rides along with the
    /// scores and the owning shard writes it (stolen tasks and all MW
    /// tasks); otherwise the worker merges locally as usual.
    ShardTask {
        /// Query index.
        query: usize,
        /// Sub-fragment index (`fragment * subfragment_factor + slice`).
        fragment: usize,
        /// World rank of the shard that owns the query's batch.
        owner: usize,
        /// Ship result data to the owner instead of merging locally.
        ship: bool,
    },
}

impl Assign {
    /// Simulated wire size of this assignment.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Assign::Repair { regions, .. } => ASSIGN_BYTES + 16 * regions.len() as u64,
            _ => ASSIGN_BYTES,
        }
    }
}

/// Worker → master: the outcome of one (query, fragment) search, hits
/// sorted by descending score. In MW runs the simulated wire size also
/// covers the result data riding along with the scores.
#[derive(Debug, Clone)]
pub struct ScoresMsg {
    /// Query index.
    pub query: usize,
    /// Fragment index (a sub-fragment index in sharded runs).
    pub fragment: usize,
    /// Hits, sorted by `(score desc, size desc)`.
    pub hits: Vec<Hit>,
    /// Sharded mode: the result data rides along and the receiving shard
    /// writes it itself (the sender keeps nothing). Always `false` on the
    /// single-master path.
    pub shipped: bool,
}

/// Master → master: an idle shard asks a sibling for queued tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealReq {
    /// World rank of the requesting shard.
    pub thief: usize,
}

/// Master → master: the victim's reply. Only tasks the victim itself
/// owns are lent (stolen tasks are never re-lent), so an unscored task
/// always keeps exactly one shard — its owner — unresolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StealResp {
    /// `(query, sub-fragment)` tasks handed over (possibly empty).
    pub tasks: Vec<(usize, usize)>,
    /// World rank of the owning (victim) shard.
    pub owner: usize,
}

impl StealResp {
    /// Simulated wire size of this message.
    pub fn wire_bytes(&self) -> u64 {
        CTRL_BYTES + TASK_ENTRY_BYTES * self.tasks.len() as u64
    }
}

/// Master → worker control-plane message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardCtrl {
    /// A master died; its batches now belong to `successor`. Workers
    /// homed to the dead shard re-home to `successor`; every worker
    /// discards local results for the `purge`d (rebuilt) batches and
    /// acknowledges with [`TAG_CTRL_ACK`].
    Rehome {
        /// The dead master's world rank.
        dead: usize,
        /// The adopting master's world rank.
        successor: usize,
        /// Batches being recomputed from scratch — local merges for these
        /// are stale and must be dropped.
        purge: Vec<usize>,
    },
}

impl ShardCtrl {
    /// Simulated wire size of this message.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ShardCtrl::Rehome { purge, .. } => CTRL_BYTES + 8 * purge.len() as u64,
        }
    }
}

/// Master ↔ coordinator traffic on [`TAG_STATUS`]: shard progress
/// reports and the two-phase shutdown quiesce (see DESIGN.md §"Sharded
/// master").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Shard → coordinator: progress report, stamped with the sender's
    /// failover epoch (stale-epoch reports are ignored).
    Report {
        /// Reporting shard's world rank.
        shard: usize,
        /// Failover epoch the report belongs to.
        epoch: u64,
        /// All batches this shard owns are complete and laid out.
        resolved: bool,
        /// The shard has a steal request in flight.
        stealing: bool,
    },
    /// Coordinator → shards: all shards look resolved — stop stealing
    /// and acknowledge when no steal response is outstanding.
    Prepare {
        /// Failover epoch the quiesce belongs to.
        epoch: u64,
    },
    /// Shard → coordinator: quiesced (no steal in flight, none will
    /// start).
    PrepareAck {
        /// Acknowledging shard's world rank.
        shard: usize,
        /// Failover epoch being acknowledged.
        epoch: u64,
    },
    /// Coordinator → shards: every shard is quiesced; answer `Done` to
    /// workers and exit when they have all left.
    AllDone,
    /// Coordinator → shards: a master died. Bumps the failover epoch,
    /// aborts any quiesce in progress, and re-routes the dead shard's
    /// batches to `successor`. Every surviving shard force-resends its
    /// status stamped with the new epoch.
    MasterDead {
        /// The dead master's world rank.
        dead: usize,
        /// The adopting master's world rank.
        successor: usize,
        /// The new failover epoch.
        epoch: u64,
    },
}

/// Master → worker: where to write each of the worker's results for a
/// completed batch. Offsets are in the worker's local merged order. An
/// empty list is a pure synchronization notification.
#[derive(Debug, Clone)]
pub struct OffsetsMsg {
    /// Batch index (query group).
    pub batch: usize,
    /// One file offset per result the worker holds for this batch.
    pub offsets: Vec<u64>,
}

impl OffsetsMsg {
    /// Simulated wire size of this message.
    pub fn wire_bytes(&self) -> u64 {
        16 + OFFSET_ENTRY_BYTES * self.offsets.len() as u64
    }
}

/// Ordering used for all score-based sorting on both master and worker:
/// descending score, ties by descending size. Remaining ties are between
/// hits of identical size, so any order yields the same file layout.
pub fn hit_order(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    b.score.cmp(&a.score).then(b.size.cmp(&a.size))
}

/// Merge two lists already sorted by [`hit_order`] into one.
pub fn merge_sorted_hits(a: &[Hit], b: &[Hit]) -> Vec<Hit> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if hit_order(&a[i], &b[j]) != std::cmp::Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(score: u64, size: u64) -> Hit {
        Hit { score, size }
    }

    #[test]
    fn hit_order_desc_score_then_desc_size() {
        assert_eq!(hit_order(&h(10, 1), &h(5, 9)), std::cmp::Ordering::Less);
        assert_eq!(hit_order(&h(5, 9), &h(5, 1)), std::cmp::Ordering::Less);
        assert_eq!(hit_order(&h(5, 5), &h(5, 5)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn merge_keeps_global_order() {
        let a = vec![h(9, 1), h(5, 2), h(1, 3)];
        let b = vec![h(8, 1), h(5, 9), h(0, 1)];
        let m = merge_sorted_hits(&a, &b);
        let scores: Vec<u64> = m.iter().map(|x| x.score).collect();
        assert_eq!(scores, vec![9, 8, 5, 5, 1, 0]);
        // The score-5 tie is resolved by larger size first.
        assert_eq!(m[2].size, 9);
        assert_eq!(m[3].size, 2);
    }

    #[test]
    fn merge_with_empty() {
        let a = vec![h(3, 1)];
        assert_eq!(merge_sorted_hits(&a, &[]), a);
        assert_eq!(merge_sorted_hits(&[], &a), a);
    }

    #[test]
    fn offsets_wire_size() {
        let m = OffsetsMsg {
            batch: 0,
            offsets: vec![0; 10],
        };
        assert_eq!(m.wire_bytes(), 16 + 80);
    }

    #[test]
    fn shard_wire_sizes() {
        let resp = StealResp {
            tasks: vec![(0, 0); 5],
            owner: 1,
        };
        assert_eq!(resp.wire_bytes(), CTRL_BYTES + 5 * TASK_ENTRY_BYTES);
        let empty = StealResp {
            tasks: Vec::new(),
            owner: 1,
        };
        assert_eq!(empty.wire_bytes(), CTRL_BYTES);
        let rehome = ShardCtrl::Rehome {
            dead: 1,
            successor: 2,
            purge: vec![3, 4],
        };
        assert_eq!(rehome.wire_bytes(), CTRL_BYTES + 16);
        // A shard task is an ordinary fixed-size assignment on the wire.
        let t = Assign::ShardTask {
            query: 0,
            fragment: 0,
            owner: 0,
            ship: true,
        };
        assert_eq!(t.wire_bytes(), ASSIGN_BYTES);
    }
}
