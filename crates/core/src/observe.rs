//! Exporters for the request-level observability recording: Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) and a
//! metrics CSV.
//!
//! Both exporters take `(label, report)` pairs so a trace file can hold
//! several runs side by side — e.g. the four paper strategies, one
//! process group per strategy. Output is deterministic: the same reports
//! always serialise to the same bytes (see `s3a_obs::chrome`).

use s3a_obs::chrome::ChromeTrace;
use s3a_obs::{Histogram, ObsReport, ObsSink, Track};

use crate::params::MAX_TENANTS;
use crate::report::{RunReport, ServiceReport};

/// Spacing between the pid blocks of consecutive runs in one trace file.
const PID_STRIDE: u64 = 10;

/// Export one or more runs as a Chrome `trace_event` JSON document. Each
/// run contributes two "processes" — `"<label> ranks"` (one track per MPI
/// rank: coarse phase intervals plus collective exchange rounds) and
/// `"<label> servers"` (one track per PVFS server: per-request lifecycle
/// spans, queue-depth and dirty-byte counter series).
///
/// Runs whose `obs` is `None` (observability disabled) still contribute
/// their coarse phase timeline when `trace` was recorded.
pub fn export_chrome(runs: &[(&str, &RunReport)]) -> String {
    let mut trace = ChromeTrace::new();
    let empty = ObsReport::default();
    for (i, (label, report)) in runs.iter().enumerate() {
        let phases: Vec<(usize, &'static str, s3a_des::SimTime, s3a_des::SimTime)> = report
            .trace
            .as_ref()
            .map(|t| {
                t.events()
                    .iter()
                    .map(|e| (e.rank, e.phase.name(), e.start, e.end))
                    .collect()
            })
            .unwrap_or_default();
        let obs = report.obs.as_ref().unwrap_or(&empty);
        trace.export_report(i as u64 * PID_STRIDE, label, obs, &phases);
    }
    trace.finish()
}

/// Export the metrics registries of one or more runs as CSV with columns
/// `run,kind,name,value,count,sum,min,max`: counters and gauges fill
/// `value`; histograms fill `count`/`sum`/`min`/`max` and leave `value`
/// empty.
pub fn export_metrics_csv(runs: &[(&str, &RunReport)]) -> String {
    let mut out = String::from("run,kind,name,value,count,sum,min,max\n");
    for (label, report) in runs {
        let Some(obs) = report.obs.as_ref() else {
            continue;
        };
        for (name, v) in &obs.metrics.counters {
            out.push_str(&format!("{label},counter,{name},{v},,,,\n"));
        }
        for (name, v) in &obs.metrics.gauges {
            out.push_str(&format!("{label},gauge,{name},{v},,,,\n"));
        }
        for (name, h) in &obs.metrics.histograms {
            out.push_str(&format!(
                "{label},histogram,{name},,{},{},{},{}\n",
                h.count, h.sum, h.min, h.max
            ));
        }
    }
    out
}

/// A short human-readable digest of one run's recording: top-level
/// counters plus the latency/size histograms with their log₂ bucket
/// spread. Used by the `repro` binary's trace summary output.
pub fn summarize(report: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let Some(obs) = report.obs.as_ref() else {
        s.push_str("  (observability disabled)\n");
        return s;
    };
    let servers = obs
        .tracks()
        .iter()
        .filter(|t| matches!(t, Track::Server(_)))
        .count();
    let _ = writeln!(
        s,
        "  {} spans, {} samples across {} tracks ({} server)",
        obs.spans.len(),
        obs.samples.len(),
        obs.tracks().len(),
        servers
    );
    for (name, v) in &obs.metrics.counters {
        let _ = writeln!(s, "  {name} = {v}");
    }
    for (name, h) in &obs.metrics.histograms {
        let _ = writeln!(
            s,
            "  {name}: n={} mean={:.0} min={} max={}",
            h.count,
            h.mean(),
            h.min,
            h.max
        );
    }
    s
}

/// Per-tenant latency histogram names (histogram names must be
/// `&'static str`, which is why tenant counts are capped at
/// [`MAX_TENANTS`]).
const TENANT_LATENCY: [&str; MAX_TENANTS] = [
    "svc.latency.t0",
    "svc.latency.t1",
    "svc.latency.t2",
    "svc.latency.t3",
    "svc.latency.t4",
    "svc.latency.t5",
    "svc.latency.t6",
    "svc.latency.t7",
];

/// Publish a service run's measurements into the observability recording:
/// one span per query lifecycle stage on the master's track (queued →
/// admitted → dispatched → merged → replied), log₂ latency histograms
/// (overall, scheduling wait, and per tenant), and the admission
/// counters. Called by the runner after the simulation, before the sink
/// is sealed — post-hoc publication never perturbs virtual time.
pub(crate) fn publish_service_obs(sink: &ObsSink, svc: &ServiceReport) {
    for r in &svc.queries {
        let args: [(&'static str, u64); 2] =
            [("query", r.query as u64), ("tenant", r.tenant as u64)];
        sink.span(Track::Rank(0), "svc.queued", r.arrival, r.admitted, &args);
        sink.span(Track::Rank(0), "svc.sched", r.admitted, r.dispatched, &args);
        sink.span(Track::Rank(0), "svc.run", r.dispatched, r.merged, &args);
        sink.span(Track::Rank(0), "svc.reply", r.merged, r.replied, &args);
        sink.observe_time("svc.latency", r.latency());
        sink.observe_time("svc.wait", r.wait());
        sink.observe_time(TENANT_LATENCY[r.tenant], r.latency());
    }
    sink.add("svc.offered", svc.offered as u64);
    sink.add("svc.admitted", svc.admitted as u64);
    sink.add("svc.shed", svc.shed as u64);
    sink.add("svc.completed", svc.completed as u64);
}

/// The non-empty log₂ buckets of a histogram as `(lower_bound, count)`
/// pairs — handy for rendering a textual latency distribution.
pub fn histogram_buckets(h: &Histogram) -> Vec<(u64, u64)> {
    h.buckets
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(i, c)| (Histogram::bucket_lo(i), *c))
        .collect()
}
