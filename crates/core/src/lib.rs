//! # s3asim — a sequence similarity search algorithm simulator
//!
//! A from-scratch Rust reproduction of **S3aSim** (Ching, Feng, Lin, Ma,
//! Choudhary: *Exploring I/O Strategies for Parallel Sequence-Search
//! Tools with S3aSim*, HPDC 2006): a master/worker database-segmentation
//! search skeleton used to compare result-writing strategies —
//! master-writing (MW), individual worker-writing with POSIX or list I/O
//! (WW-POSIX / WW-List), collective worker-writing (WW-Coll), and
//! ROMIO-style data sieving (WW-DS, the locked read-modify-write path
//! real ROMIO uses for independent noncontiguous writes) — on a
//! PVFS2-like parallel file system.
//!
//! The entire stack is simulated deterministically in virtual time on a
//! single thread: the discrete-event engine ([`s3a_des`]), the cluster
//! network ([`s3a_net`]), MPI ([`s3a_mpi`]), the parallel file system
//! ([`s3a_pvfs`]), and the MPI-IO layer ([`s3a_mpiio`]). A "96-process"
//! run therefore needs no cluster, finishes in seconds, and produces the
//! same result every time.
//!
//! ## Quickstart
//!
//! ```
//! use s3asim::{try_run, SimParams, Strategy};
//!
//! let params = SimParams::builder()
//!     .procs(8)
//!     .strategy(Strategy::WwList)
//!     .with_workload(|w| {
//!         w.queries = 4;
//!         w.fragments = 16;
//!         w.min_results = 50;
//!         w.max_results = 100;
//!     })
//!     .build()
//!     .expect("valid parameters");
//! // `try_run` verifies the output file (every result byte written
//! // exactly once, contiguously, flushed) before returning the report.
//! let report = try_run(&params).expect("run completes and verifies");
//! println!("{}", report.phase_table());
//! ```
//!
//! Whole evaluation sweeps run in parallel — one isolated simulation per
//! worker thread — through [`Sweep::run`] / [`run_batch`], with results
//! assembled deterministically in input order.

#[doc(hidden)]
pub mod chaos;
mod failure_detector;
mod master;
pub mod observe;
mod offsets;
mod params;
mod phase;
mod protocol;
mod report;
mod resume;
mod runner;
mod service;
mod shard;
pub mod sweep;
pub mod trace;
mod worker;

pub use observe::{export_chrome, export_metrics_csv};
pub use offsets::{BatchState, WorkerPlan};
pub use params::{
    ParamError, RunMode, SchedPolicy, Segmentation, ServiceParams, SimParams, SimParamsBuilder,
    Strategy, Testbed, MAX_TENANTS,
};
pub use phase::{Phase, PhaseBreakdown, PhaseTimer, PHASES};
pub use protocol::{hit_order, merge_sorted_hits, Assign, OffsetsMsg, ScoresMsg};
pub use report::{Columns, LatencyStats, QueryRecord, RunReport, ServiceReport};
pub use resume::{
    expected_lost_time, restart_point, CommitEntry, CommitLog, CommitTracker, CrashReport,
    ResumePoint,
};
pub use runner::{
    run, run_with_restart, try_run, try_run_with_restart, FaultCtx, IoFailure, RestartOutcome,
    SimError, DATABASE_FILE, OUTPUT_FILE,
};
pub use sweep::{default_threads, run_batch, run_batch_with, Point, Sweep, SweepOptions};
pub use trace::{Trace, TraceEvent, TraceSink};
pub use worker::WorkerStats;

// Re-export the fault-injection vocabulary, the observability vocabulary,
// and the engine's deadlock diagnosis so downstream code (bench, tests,
// examples) imports from one crate instead of four.
pub use s3a_des::{Deadlock, SimTime};
pub use s3a_faults::{
    DomainOutage, FaultEvent, FaultKind, FaultParams, FaultReport, ServerCorruption, ServerOutage,
    ServerSlowdown,
};
pub use s3a_obs::{CounterSample, Histogram, ObsReport, ObsSink, SpanEvent, Track};
pub use s3a_pvfs::{Hazard, HazardKind, PvfsError, SanitizerReport, SimSanitizer};
pub use s3a_workload::{Arrival, ArrivalProcess};
