//! # s3asim — a sequence similarity search algorithm simulator
//!
//! A from-scratch Rust reproduction of **S3aSim** (Ching, Feng, Lin, Ma,
//! Choudhary: *Exploring I/O Strategies for Parallel Sequence-Search
//! Tools with S3aSim*, HPDC 2006): a master/worker database-segmentation
//! search skeleton used to compare result-writing strategies —
//! master-writing (MW), individual worker-writing with POSIX or list I/O
//! (WW-POSIX / WW-List), and collective worker-writing (WW-Coll) — on a
//! PVFS2-like parallel file system.
//!
//! The entire stack is simulated deterministically in virtual time on a
//! single thread: the discrete-event engine ([`s3a_des`]), the cluster
//! network ([`s3a_net`]), MPI ([`s3a_mpi`]), the parallel file system
//! ([`s3a_pvfs`]), and the MPI-IO layer ([`s3a_mpiio`]). A "96-process"
//! run therefore needs no cluster, finishes in seconds, and produces the
//! same result every time.
//!
//! ## Quickstart
//!
//! ```
//! use s3asim::{run, SimParams, Strategy};
//! use s3a_workload::WorkloadParams;
//!
//! let params = SimParams {
//!     procs: 8,
//!     strategy: Strategy::WwList,
//!     workload: WorkloadParams {
//!         queries: 4,
//!         fragments: 16,
//!         min_results: 50,
//!         max_results: 100,
//!         ..WorkloadParams::default()
//!     },
//!     ..SimParams::default()
//! };
//! let report = run(&params);
//! report.verify().expect("output file is complete and exact");
//! println!("{}", report.phase_table());
//! ```

mod master;
mod offsets;
mod params;
mod phase;
mod protocol;
mod report;
mod resume;
mod runner;
pub mod trace;
mod worker;

pub use offsets::{BatchState, WorkerPlan};
pub use params::{Segmentation, SimParams, Strategy, Testbed};
pub use phase::{Phase, PhaseBreakdown, PhaseTimer, PHASES};
pub use protocol::{hit_order, merge_sorted_hits, Assign, OffsetsMsg, ScoresMsg};
pub use report::RunReport;
pub use resume::{
    expected_lost_time, restart_point, CommitEntry, CommitLog, CommitTracker, CrashReport,
    ResumePoint,
};
pub use runner::{run, run_with_restart, FaultCtx, RestartOutcome, DATABASE_FILE, OUTPUT_FILE};
pub use trace::{Trace, TraceEvent, TraceSink};
pub use worker::WorkerStats;

// Re-export the fault-injection vocabulary so downstream code (bench,
// tests) can configure schedules without naming the crate separately.
pub use s3a_faults::{
    FaultEvent, FaultKind, FaultParams, FaultReport, ServerOutage, ServerSlowdown,
};
