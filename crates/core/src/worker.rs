//! The worker process (Algorithm 2 of the paper).
//!
//! A worker loops: request work → search a `(query, fragment)` task →
//! merge its sorted hits into its per-query lists (parallel I/O only) →
//! isend scores (plus result data under MW) to the master — while
//! opportunistically checking for location lists from the master and
//! writing any batches whose offsets have arrived. Individual worker-
//! writing strategies keep taking new tasks while waiting for location
//! lists; the collective strategy must stop and synchronize, which is
//! exactly the cost the paper sets out to measure.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use s3a_des::Sim;
use s3a_mpi::{Comm, Message, SendRequest};
use s3a_mpiio::{File, WriteMethod};
use s3a_pvfs::{FileHandle, Region};
use s3a_workload::{Hit, Workload};

use crate::params::{Segmentation, SimParams, Strategy};
use crate::resume::CommitTracker;
use crate::phase::{Phase, PhaseBreakdown, PhaseTimer};
use crate::trace::TraceSink;
use crate::protocol::{
    merge_sorted_hits, Assign, OffsetsMsg, ScoresMsg, SCORE_ENTRY_BYTES, TAG_ASSIGN,
    TAG_OFFSETS, TAG_SCORES, TAG_WORK_REQ, WORK_REQ_BYTES,
};

struct WorkerState {
    /// Merged hits per batch, keyed by query (ascending), each list in
    /// `(score desc, size desc)` order.
    local: Vec<BTreeMap<usize, Vec<Hit>>>,
    /// Batches for which this worker holds at least one result.
    have_results: Vec<bool>,
    /// Offset messages handled so far.
    offsets_handled: usize,
    /// Counters reported back to the runner.
    stats: WorkerStats,
}

/// Per-worker activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// (query, fragment) tasks this worker searched.
    pub tasks: usize,
    /// Result regions this worker wrote (0 under MW).
    pub regions_written: usize,
    /// Result bytes this worker wrote (0 under MW).
    pub bytes_written: u64,
}

/// Run a worker. `comm` is the world communicator; `workers_comm` spans
/// all workers (used for query-sync barriers); `file` is opened on the
/// workers' communicator and carries every worker-writing I/O path.
#[allow(clippy::too_many_arguments)]
pub async fn run_worker(
    sim: Sim,
    comm: Comm,
    workers_comm: Comm,
    params: Rc<SimParams>,
    workload: Rc<Workload>,
    file: File,
    database: Option<FileHandle>,
    trace: TraceSink,
    commits: CommitTracker,
) -> (PhaseBreakdown, WorkerStats) {
    let timer = PhaseTimer::with_trace(&sim, comm.rank(), trace);

    // Step 1: receive input variables.
    timer
        .track(Phase::Setup, comm.bcast::<()>(0, None, 1024))
        .await;

    let nq = workload.queries.len();
    let gran = params.write_every_n_queries.min(nq);
    let nbatches = nq.div_ceil(gran);

    let mut state = WorkerState {
        local: (0..nbatches).map(|_| BTreeMap::new()).collect(),
        have_results: vec![false; nbatches],
        offsets_handled: 0,
        stats: WorkerStats::default(),
    };
    let mut offs_rx = comm.irecv(0, TAG_OFFSETS);
    let mut result_sends: VecDeque<SendRequest> = VecDeque::new();
    let is_mw = params.strategy == Strategy::Mw;

    loop {
        // Steps 3–4: ask for work.
        timer
            .track(
                Phase::DataDistribution,
                comm.send(0, TAG_WORK_REQ, (), WORK_REQ_BYTES),
            )
            .await;
        let resp = timer
            .track(Phase::DataDistribution, comm.recv(0, TAG_ASSIGN))
            .await
            .downcast::<Assign>();

        match resp {
            Assign::Task { query, fragment } => {
                // Step 6: the search itself. A query-segmentation task
                // scans the whole database: it pays one startup per
                // original fragment, and — when the database exceeds
                // worker memory — first streams the non-resident part
                // back in from the file system (the repeated I/O the
                // paper's introduction holds against query segmentation).
                state.stats.tasks += 1;
                if let Some(db) = &database {
                    let reload = params.db_reload_bytes();
                    timer
                        .track(
                            Phase::Io,
                            db.read_contiguous(file.endpoint(), 0, reload),
                        )
                        .await;
                }
                let startups = match params.segmentation {
                    Segmentation::Database => 1,
                    Segmentation::Query => params.workload.fragments,
                };
                let hits = &workload.queries[query].hits[fragment];
                let bytes: u64 = hits.iter().map(|h| h.size).sum();
                timer
                    .track(
                        Phase::Compute,
                        sim.sleep(params.compute_time_multi(bytes, startups)),
                    )
                    .await;

                // Step 8: merge into the per-query list (parallel I/O only).
                if params.strategy.workers_write() && !hits.is_empty() {
                    let merge_time =
                        params.testbed.merge_per_hit * hits.len() as u64;
                    timer
                        .track(Phase::MergeResults, sim.sleep(merge_time))
                        .await;
                    let b = query / gran;
                    let slot = state.local[b].entry(query).or_default();
                    if slot.is_empty() {
                        slot.extend_from_slice(hits);
                    } else {
                        *slot = merge_sorted_hits(slot, hits);
                    }
                    state.have_results[b] = true;
                }

                // Steps 10 & 15: send scores (and results for MW), with
                // bounded send buffering.
                while result_sends.len() >= params.testbed.max_outstanding_result_sends {
                    let oldest = result_sends.pop_front().expect("nonempty");
                    timer.track(Phase::GatherResults, oldest.wait()).await;
                }
                let wire = SCORE_ENTRY_BYTES * hits.len() as u64
                    + if is_mw { bytes } else { 0 };
                let msg = ScoresMsg {
                    query,
                    fragment,
                    hits: hits.clone(),
                };
                result_sends.push_back(comm.isend(0, TAG_SCORES, msg, wire));
            }
            Assign::Done => break,
        }

        // Steps 16–18: handle any location lists that have arrived.
        //
        // Synchronizing modes (query sync, collective I/O) must react
        // promptly: the other workers are, or will be, blocked on this
        // worker's participation. In the free-running individual modes the
        // worker keeps computing — taking new tasks has priority over
        // writing already-located results, which keeps the task (and
        // therefore result) distribution balanced across workers — and
        // drains its I/O backlog once the master has no more work.
        let prompt_io = params.query_sync || params.strategy.inherently_synchronizing();
        if prompt_io {
            while let Some(m) = offs_rx.test() {
                offs_rx = comm.irecv(0, TAG_OFFSETS);
                handle_offsets(&timer, &params, &workers_comm, &file, &mut state, &commits, m)
                    .await;
            }
        }
    }

    // Drain: every batch we still owe I/O (or synchronization) for.
    let expected = expected_offset_messages(&params, &state);
    while state.offsets_handled < expected {
        let m = timer
            .track(Phase::DataDistribution, offs_rx.wait())
            .await;
        offs_rx = comm.irecv(0, TAG_OFFSETS);
        handle_offsets(&timer, &params, &workers_comm, &file, &mut state, &commits, m).await;
    }

    // Step 15 (final): make sure our result sends completed.
    while let Some(s) = result_sends.pop_front() {
        timer.track(Phase::GatherResults, s.wait()).await;
    }

    // Step 20/21: final synchronization.
    timer.track(Phase::Sync, comm.barrier()).await;

    let mut bd = timer.snapshot();
    bd.close_to(sim.now());
    (bd, state.stats)
}

/// How many TAG_OFFSETS messages the master will send this worker.
fn expected_offset_messages(params: &SimParams, state: &WorkerState) -> usize {
    let nbatches = state.have_results.len();
    if params.strategy.inherently_synchronizing() || params.query_sync {
        nbatches
    } else if params.strategy == Strategy::Mw {
        0
    } else {
        state.have_results.iter().filter(|&&b| b).count()
    }
}

#[allow(clippy::too_many_arguments)]
async fn handle_offsets(
    timer: &PhaseTimer,
    params: &SimParams,
    workers_comm: &Comm,
    file: &File,
    state: &mut WorkerState,
    commits: &CommitTracker,
    msg: Message,
) {
    let OffsetsMsg { batch, offsets } = msg.downcast();
    state.offsets_handled += 1;

    // Pair this batch's local hits (queries ascending, hits in local
    // merged order) with the offsets the master computed in exactly the
    // same order.
    let queries = std::mem::take(&mut state.local[batch]);
    let local: Vec<&Hit> = queries.values().flatten().collect();
    assert_eq!(
        local.len(),
        offsets.len(),
        "offset list length mismatch for batch {batch}"
    );
    let regions: Vec<Region> = local
        .iter()
        .zip(&offsets)
        .map(|(h, &off)| Region::new(off, h.size))
        .collect();
    if params.strategy.workers_write() {
        state.stats.regions_written += regions.len();
        state.stats.bytes_written += regions.iter().map(|r| r.len).sum::<u64>();
    }

    let wrote = !regions.is_empty();
    match params.strategy {
        Strategy::Mw => {
            // Pure notification: the master wrote this batch.
        }
        Strategy::WwPosix => {
            if !regions.is_empty() {
                timer
                    .track(Phase::Io, file.write_regions(&regions, WriteMethod::Posix))
                    .await;
                timer.track(Phase::Io, file.sync()).await;
            }
        }
        Strategy::WwList | Strategy::WwCollList => {
            if !regions.is_empty() {
                timer
                    .track(Phase::Io, file.write_regions(&regions, WriteMethod::ListIo))
                    .await;
                timer.track(Phase::Io, file.sync()).await;
            }
        }
        Strategy::WwColl => {
            // Two-phase collective: every worker participates. The wait
            // for the slowest participant surfaces, as in the paper, in
            // the data-distribution time; the exchange and write are I/O.
            let t = file.write_at_all_timed(&regions).await;
            timer.add(Phase::DataDistribution, t.synchronize);
            timer.add(Phase::Io, t.exchange_and_write);
            timer.track(Phase::Io, file.sync()).await;
        }
    }

    if wrote && params.strategy != Strategy::Mw {
        commits.complete_one(batch, workers_comm.sim().now());
    }
    let forced_sync = params.query_sync || params.strategy == Strategy::WwCollList;
    if forced_sync {
        timer.track(Phase::Sync, workers_comm.barrier()).await;
    }
}
