//! The worker process (Algorithm 2 of the paper).
//!
//! A worker loops: request work → search a `(query, fragment)` task →
//! merge its sorted hits into its per-query lists (parallel I/O only) →
//! isend scores (plus result data under MW) to the master — while
//! opportunistically checking for location lists from the master and
//! writing any batches whose offsets have arrived. Individual worker-
//! writing strategies keep taking new tasks while waiting for location
//! lists; the collective strategy must stop and synchronize, which is
//! exactly the cost the paper sets out to measure.
//!
//! With crash injection armed a worker additionally runs a heartbeat
//! sibling task, answers `Wait`/`Repair` assignments (idle back-off and
//! redoing a dead peer's writes), and — if it is itself scheduled to
//! crash — fail-stops at the top of its main loop: heartbeats cease, its
//! mailbox starts absorbing traffic, and the process simply returns.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use s3a_des::{Flag, Sim};
use s3a_faults::FaultKind;
use s3a_mpi::{Comm, Message, SendRequest};
use s3a_mpiio::{File, WriteMethod};
use s3a_pvfs::{FileHandle, Region};
use s3a_workload::{Hit, Workload};

use crate::params::{Segmentation, SimParams, Strategy};
use crate::phase::{Phase, PhaseBreakdown, PhaseTimer};
use crate::protocol::{
    merge_sorted_hits, Assign, OffsetsMsg, ScoresMsg, HEARTBEAT_BYTES, SCORE_ENTRY_BYTES,
    TAG_ASSIGN, TAG_HEARTBEAT, TAG_OFFSETS, TAG_SCORES, TAG_WORK_REQ, WORK_REQ_BYTES,
};
use crate::resume::CommitTracker;
use crate::runner::FaultCtx;
use crate::trace::TraceSink;

pub(crate) struct WorkerState {
    /// Merged hits per batch, keyed by query (ascending), each list in
    /// `(score desc, size desc)` order.
    pub(crate) local: Vec<BTreeMap<usize, Vec<Hit>>>,
    /// Batches for which this worker holds at least one result.
    pub(crate) have_results: Vec<bool>,
    /// Offset messages handled so far.
    pub(crate) offsets_handled: usize,
    /// Counters reported back to the runner.
    pub(crate) stats: WorkerStats,
}

/// Per-worker activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// (query, fragment) tasks this worker searched.
    pub tasks: usize,
    /// Result regions this worker wrote (0 under MW).
    pub regions_written: usize,
    /// Result bytes this worker wrote (0 under MW).
    pub bytes_written: u64,
}

/// Run a worker. `comm` is the world communicator; `workers_comm` spans
/// all workers (used for query-sync barriers); `file` is opened on the
/// workers' communicator and carries every worker-writing I/O path.
#[allow(clippy::too_many_arguments)]
pub async fn run_worker(
    sim: Sim,
    comm: Comm,
    workers_comm: Comm,
    params: Rc<SimParams>,
    workload: Rc<Workload>,
    file: File,
    database: Option<FileHandle>,
    trace: TraceSink,
    commits: CommitTracker,
    faults: Option<FaultCtx>,
) -> (PhaseBreakdown, WorkerStats) {
    let timer = PhaseTimer::with_trace(&sim, comm.rank(), trace);

    // Step 1: receive input variables.
    timer
        .track(Phase::Setup, comm.bcast::<()>(0, None, 1024))
        .await;

    let nq = workload.queries.len();
    let gran = params.batch_granularity(nq);
    let nbatches = nq.div_ceil(gran);

    let mut state = WorkerState {
        local: (0..nbatches).map(|_| BTreeMap::new()).collect(),
        have_results: vec![false; nbatches],
        offsets_handled: 0,
        stats: WorkerStats::default(),
    };
    let mut offs_rx = comm.irecv(0, TAG_OFFSETS);
    let mut result_sends: VecDeque<SendRequest> = VecDeque::new();
    let is_mw = params.strategy == Strategy::Mw;

    let crash_mode = faults
        .as_ref()
        .is_some_and(|f| f.schedule.params().crashes());
    let my_crash = faults
        .as_ref()
        .and_then(|f| f.schedule.crash_time(comm.rank()));
    // How long to back off on a `Wait` assignment: the service poll
    // interval (service masters answer `Wait` while the queue is empty),
    // or the heartbeat interval when crash injection is armed.
    let tick = if let Some(sp) = params.service() {
        sp.poll_interval
    } else {
        faults
            .as_ref()
            .map(|f| f.schedule.params().heartbeat_interval)
            .unwrap_or(s3a_des::SimTime::ZERO)
    };

    // Heartbeat sibling: proof of life to the master, every tick, until
    // this worker finishes — or crashes.
    let hb_stop = Flag::new(&sim);
    if crash_mode {
        let hb_comm = comm.clone();
        let stop = hb_stop.clone();
        let hb_sim = sim.clone();
        sim.spawn(format!("heartbeat-{}", comm.rank()), async move {
            while !stop.is_set() {
                let _ = hb_comm.isend(0, TAG_HEARTBEAT, (), HEARTBEAT_BYTES);
                hb_sim.sleep(tick).await;
            }
        });
    }

    let mut crashed = false;
    // Service shutdown carries the exact offset-message count to drain.
    let mut drain_target: Option<usize> = None;
    loop {
        // Fail-stop point: a scheduled crash takes effect at the top of
        // the loop, the worker's only obligation-free moment.
        if let Some(t) = my_crash {
            if sim.now() >= t {
                hb_stop.set();
                if let Some(f) = &faults {
                    f.log
                        .record(sim.now(), FaultKind::WorkerCrashed { rank: comm.rank() });
                }
                // From now on traffic addressed to this rank is absorbed
                // (fires flow control, discards payload) so no sender or
                // rendezvous transfer ever hangs on the dead process.
                comm.mark_failed();
                crashed = true;
                break;
            }
        }

        // Steps 3–4: ask for work.
        timer
            .track(
                Phase::DataDistribution,
                comm.send(0, TAG_WORK_REQ, (), WORK_REQ_BYTES),
            )
            .await;
        let resp = timer
            .track(Phase::DataDistribution, comm.recv(0, TAG_ASSIGN))
            .await
            .downcast::<Assign>();

        match resp {
            Assign::Task { query, fragment } => {
                // Step 6: the search itself. A query-segmentation task
                // scans the whole database: it pays one startup per
                // original fragment, and — when the database exceeds
                // worker memory — first streams the non-resident part
                // back in from the file system (the repeated I/O the
                // paper's introduction holds against query segmentation).
                state.stats.tasks += 1;
                if let Some(db) = &database {
                    let reload = params.db_reload_bytes();
                    timer
                        .track(Phase::Io, db.read_contiguous(file.endpoint(), 0, reload))
                        .await
                        .unwrap_or_else(|e| crate::runner::io_failure(e));
                }
                let startups = match params.segmentation {
                    Segmentation::Database => 1,
                    Segmentation::Query => params.workload.fragments,
                };
                let hits = &workload.queries[query].hits[fragment];
                let bytes: u64 = hits.iter().map(|h| h.size).sum();
                timer
                    .track(
                        Phase::Compute,
                        sim.sleep(params.compute_time_multi(bytes, startups)),
                    )
                    .await;

                // Step 8: merge into the per-query list (parallel I/O only).
                if params.strategy.workers_write() && !hits.is_empty() {
                    let merge_time = params.testbed.merge_per_hit * hits.len() as u64;
                    timer
                        .track(Phase::MergeResults, sim.sleep(merge_time))
                        .await;
                    let b = query / gran;
                    let slot = state.local[b].entry(query).or_default();
                    if slot.is_empty() {
                        slot.extend_from_slice(hits);
                    } else {
                        *slot = merge_sorted_hits(slot, hits);
                    }
                    state.have_results[b] = true;
                }

                // Steps 10 & 15: send scores (and results for MW), with
                // bounded send buffering.
                while result_sends.len() >= params.testbed.max_outstanding_result_sends {
                    let oldest = result_sends.pop_front().expect("nonempty");
                    timer.track(Phase::GatherResults, oldest.wait()).await;
                }
                let wire = SCORE_ENTRY_BYTES * hits.len() as u64 + if is_mw { bytes } else { 0 };
                let msg = ScoresMsg {
                    query,
                    fragment,
                    hits: hits.clone(),
                    shipped: false,
                };
                result_sends.push_back(comm.isend(0, TAG_SCORES, msg, wire));
            }
            Assign::Wait => {
                // The master has no task for us yet (it is waiting out a
                // failure detection, stragglers, or — in service mode —
                // the next client arrival). Use the idle time to write any
                // batches whose offsets have arrived, then back off one
                // tick before asking again. Idle time waiting for work is
                // data-distribution time; only crash runs book it as
                // recovery overhead.
                while let Some(m) = offs_rx.test() {
                    offs_rx = comm.irecv(0, TAG_OFFSETS);
                    handle_offsets(
                        &timer,
                        &params,
                        &workers_comm,
                        &file,
                        &mut state,
                        &commits,
                        comm.rank(),
                        m,
                    )
                    .await;
                }
                let idle_phase = if crash_mode {
                    Phase::Recovery
                } else {
                    Phase::DataDistribution
                };
                timer.track(idle_phase, sim.sleep(tick)).await;
            }
            Assign::Repair {
                batch,
                for_worker,
                tasks,
                bytes,
                regions,
            } => {
                // Redo a dead peer's share of a batch: recompute its
                // results (same cost model as the original searches) and
                // write them into the exact regions the layout reserved.
                let redo = params.compute_time_multi(bytes, tasks.max(1));
                timer.track(Phase::Recovery, sim.sleep(redo)).await;
                let method = match params.strategy {
                    Strategy::WwPosix => WriteMethod::Posix,
                    Strategy::WwSieve => WriteMethod::DataSieve,
                    _ => WriteMethod::ListIo,
                };
                let t0 = sim.now();
                file.write_regions(&regions, method)
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                file.sync()
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                timer.add(Phase::Recovery, sim.now().saturating_sub(t0));
                state.stats.regions_written += regions.len();
                state.stats.bytes_written += bytes;
                // Credit the ORIGINAL writer: the batch's ledger entry
                // named the dead rank, and exactly-once accounting must
                // close that entry, not invent a new one.
                commits.complete_by(batch, for_worker, sim.now());
            }
            Assign::Done => break,
            Assign::Shutdown { offsets } => {
                drain_target = Some(offsets);
                break;
            }
            Assign::ShardTask { .. } => {
                unreachable!("sharded assignment on the single-master path")
            }
        }

        // Steps 16–18: handle any location lists that have arrived.
        //
        // Synchronizing modes (query sync, collective I/O) must react
        // promptly: the other workers are, or will be, blocked on this
        // worker's participation. In the free-running individual modes the
        // worker keeps computing — taking new tasks has priority over
        // writing already-located results, which keeps the task (and
        // therefore result) distribution balanced across workers — and
        // drains its I/O backlog once the master has no more work. Crash
        // runs also drain eagerly: prompt writes shrink the window in
        // which this worker's death would orphan a batch.
        let prompt_io = params.query_sync
            || params.strategy.inherently_synchronizing()
            || crash_mode
            || params.is_service();
        if prompt_io {
            while let Some(m) = offs_rx.test() {
                offs_rx = comm.irecv(0, TAG_OFFSETS);
                handle_offsets(
                    &timer,
                    &params,
                    &workers_comm,
                    &file,
                    &mut state,
                    &commits,
                    comm.rank(),
                    m,
                )
                .await;
            }
        }
    }

    if !crashed {
        hb_stop.set();
        if !crash_mode {
            // Drain: every batch we still owe I/O (or synchronization)
            // for. (In crash runs the master only says Done once every
            // commit is closed, so nothing can be owed here.) A service
            // shutdown carries the exact count — shed queries make it
            // underivable from the workload alone.
            let expected =
                drain_target.unwrap_or_else(|| expected_offset_messages(&params, &state));
            while state.offsets_handled < expected {
                let m = timer.track(Phase::DataDistribution, offs_rx.wait()).await;
                offs_rx = comm.irecv(0, TAG_OFFSETS);
                handle_offsets(
                    &timer,
                    &params,
                    &workers_comm,
                    &file,
                    &mut state,
                    &commits,
                    comm.rank(),
                    m,
                )
                .await;
            }
        }
    }

    // Step 15 (final): make sure our result sends completed. Even a
    // crashed worker's in-flight transfers finish (the data was already
    // handed to the fabric before the fail-stop point).
    while let Some(s) = result_sends.pop_front() {
        timer.track(Phase::GatherResults, s.wait()).await;
    }

    // Step 20/21: final synchronization — impossible with crashes (a dead
    // worker can never arrive), so crash runs skip it.
    if !crash_mode {
        timer.track(Phase::Sync, comm.barrier()).await;
    }

    let mut bd = timer.snapshot();
    bd.close_to(sim.now());
    (bd, state.stats)
}

/// How many TAG_OFFSETS messages the master will send this worker.
pub(crate) fn expected_offset_messages(params: &SimParams, state: &WorkerState) -> usize {
    let nbatches = state.have_results.len();
    // A resumed run never re-announces batches that were durable at the
    // checkpoint.
    let skipped = params
        .resume_from
        .as_ref()
        .map(|r| r.done_batches.len())
        .unwrap_or(0);
    if params.strategy.inherently_synchronizing() || params.query_sync {
        nbatches - skipped
    } else if params.strategy == Strategy::Mw {
        0
    } else {
        state.have_results.iter().filter(|&&b| b).count()
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) async fn handle_offsets(
    timer: &PhaseTimer,
    params: &SimParams,
    workers_comm: &Comm,
    file: &File,
    state: &mut WorkerState,
    commits: &CommitTracker,
    world_rank: usize,
    msg: Message,
) {
    let OffsetsMsg { batch, offsets } = msg.downcast();
    state.offsets_handled += 1;

    // Pair this batch's local hits (queries ascending, hits in local
    // merged order) with the offsets the master computed in exactly the
    // same order.
    let queries = std::mem::take(&mut state.local[batch]);
    let local: Vec<&Hit> = queries.values().flatten().collect();
    assert_eq!(
        local.len(),
        offsets.len(),
        "offset list length mismatch for batch {batch}"
    );
    let regions: Vec<Region> = local
        .iter()
        .zip(&offsets)
        .map(|(h, &off)| Region::new(off, h.size))
        .collect();
    if params.strategy.workers_write() {
        state.stats.regions_written += regions.len();
        state.stats.bytes_written += regions.iter().map(|r| r.len).sum::<u64>();
    }

    let wrote = !regions.is_empty();
    match params.strategy {
        Strategy::Mw => {
            // Pure notification: the master wrote this batch.
        }
        Strategy::WwPosix => {
            if !regions.is_empty() {
                timer
                    .track(Phase::Io, file.write_regions(&regions, WriteMethod::Posix))
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                timer
                    .track(Phase::Io, file.sync())
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
            }
        }
        Strategy::WwList | Strategy::WwCollList => {
            if !regions.is_empty() {
                timer
                    .track(Phase::Io, file.write_regions(&regions, WriteMethod::ListIo))
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                timer
                    .track(Phase::Io, file.sync())
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
            }
        }
        Strategy::WwSieve => {
            // ROMIO data sieving: independent like WW-POSIX, but each
            // covering block is one locked read-modify-write cycle.
            if !regions.is_empty() {
                timer
                    .track(
                        Phase::Io,
                        file.write_regions(&regions, WriteMethod::DataSieve),
                    )
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                timer
                    .track(Phase::Io, file.sync())
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
            }
        }
        Strategy::WwColl => {
            // Two-phase collective: every worker participates. The wait
            // for the slowest participant surfaces, as in the paper, in
            // the data-distribution time; the exchange and write are I/O.
            let t = file
                .write_at_all_timed(&regions)
                .await
                .unwrap_or_else(|e| crate::runner::io_failure(e));
            // The collective ran synchronize-then-exchange back to back;
            // record the two sub-intervals where they actually happened.
            let now = workers_comm.sim().now();
            let io_start = now.saturating_sub(t.exchange_and_write);
            let sync_start = io_start.saturating_sub(t.synchronize);
            timer.add_interval(Phase::DataDistribution, sync_start, io_start);
            timer.add_interval(Phase::Io, io_start, now);
            timer
                .track(Phase::Io, file.sync_collective())
                .await
                .unwrap_or_else(|e| crate::runner::io_failure(e));
        }
    }

    if wrote && params.strategy != Strategy::Mw {
        commits.complete_by(batch, world_rank, workers_comm.sim().now());
    }
    let forced_sync = params.query_sync || params.strategy == Strategy::WwCollList;
    if forced_sync {
        timer.track(Phase::Sync, workers_comm.barrier()).await;
    }
}
