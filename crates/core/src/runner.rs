//! Builds the simulated cluster, spawns the master and workers, drives
//! the simulation, and assembles the run report.

use std::rc::Rc;

use s3a_des::Sim;
use s3a_mpi::World;
use s3a_mpiio::{File, Hints};
use s3a_net::Fabric;
use s3a_pvfs::FileSystem;
use s3a_workload::Workload;

use crate::master::run_master;
use crate::params::{Segmentation, SimParams};
use crate::report::RunReport;
use crate::resume::CommitTracker;
use crate::trace::TraceSink;
use crate::worker::{run_worker, WorkerStats};

/// Name of the simulated output file.
pub const OUTPUT_FILE: &str = "s3asim.out";

/// Name of the simulated sequence-database file (read by
/// query-segmentation workers whose memory cannot hold the database).
pub const DATABASE_FILE: &str = "database.db";

/// For query segmentation, fold each query's per-fragment hits into a
/// single whole-database task: the search work and result volume are
/// unchanged, but one worker performs all of it.
fn fold_for_query_segmentation(workload: &Workload) -> Workload {
    let mut folded = workload.clone();
    folded.params.fragments = 1;
    for q in &mut folded.queries {
        let mut all: Vec<s3a_workload::Hit> = q.hits.iter().flatten().copied().collect();
        all.sort_by(crate::protocol::hit_order);
        q.hits = vec![all];
    }
    folded
}

/// Execute one S3aSim run and return its report.
///
/// The cluster is assembled exactly once per run: compute nodes
/// (`procs / ranks_per_node` NICs) and PVFS2 servers share one fabric, so
/// MPI traffic and file traffic contend for the same links, as on the
/// paper's testbed.
pub fn run(params: &SimParams) -> RunReport {
    params.validate();
    let params = Rc::new(params.clone());
    let sim = Sim::new();
    let generated = Workload::generate(&params.workload);
    let workload = Rc::new(match params.segmentation {
        Segmentation::Database => generated,
        Segmentation::Query => fold_for_query_segmentation(&generated),
    });

    let tb = &params.testbed;
    let compute_nodes = params.procs.div_ceil(tb.mpi.ranks_per_node);
    let fabric = Rc::new(Fabric::new(compute_nodes + tb.pvfs.servers, tb.net));
    let world = World::with_fabric(&sim, params.procs, tb.mpi, Rc::clone(&fabric), 0);
    let fs = FileSystem::new(&sim, tb.pvfs, fabric, compute_nodes);

    let hints = Hints {
        cb_nodes: if params.cb_nodes == 0 {
            compute_nodes
        } else {
            params.cb_nodes
        },
        cb_buffer_size: params.cb_buffer_size,
    };

    let worker_ranks: Vec<usize> = (1..params.procs).collect();
    let sink = if params.trace {
        TraceSink::recording()
    } else {
        TraceSink::disabled()
    };
    let commits = CommitTracker::new();

    // Master (world rank 0). Its file handle lives on a single-rank
    // communicator: MW writes are independent operations.
    let master_join = {
        let comm = world.comm(0);
        let master_only = comm.sub(&[0], "master-io");
        let file = File::open(&master_only, &fs, OUTPUT_FILE, hints);
        let sim2 = sim.clone();
        let p = Rc::clone(&params);
        let w = Rc::clone(&workload);
        sim.spawn(
            "master",
            run_master(sim2, comm, p, w, file, sink.clone(), commits.clone()),
        )
    };

    // Workers (world ranks 1..procs). Their file handle lives on the
    // workers' communicator so collective writes span exactly the workers.
    let worker_joins: Vec<_> = worker_ranks
        .iter()
        .map(|&r| {
            let comm = world.comm(r);
            let workers_comm = comm.sub(&worker_ranks, "workers");
            let file = File::open(&workers_comm, &fs, OUTPUT_FILE, hints);
            let database = (params.segmentation == Segmentation::Query
                && params.db_reload_bytes() > 0)
                .then(|| fs.open(DATABASE_FILE));
            let sim2 = sim.clone();
            let p = Rc::clone(&params);
            let w = Rc::clone(&workload);
            sim.spawn(
                format!("worker{r}"),
                run_worker(
                    sim2,
                    comm,
                    workers_comm,
                    p,
                    w,
                    file,
                    database,
                    sink.clone(),
                    commits.clone(),
                ),
            )
        })
        .collect();

    // Drive to completion; collect per-rank breakdowns.
    let collector = {
        let sim2 = sim.clone();
        sim.spawn("collector", async move {
            let master = master_join.join().await;
            let mut workers = Vec::with_capacity(worker_joins.len());
            let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers.capacity());
            for j in worker_joins {
                let (bd, st) = j.join().await;
                workers.push(bd);
                worker_stats.push(st);
            }
            // Application completion time: every rank has exited. (The
            // engine may drain a few in-flight transfer bookkeeping tasks
            // a moment longer; those are not application time.)
            let overall = sim2.now();
            (overall, master, workers, worker_stats)
        })
    };

    sim.run()
        .unwrap_or_else(|d| panic!("S3aSim run deadlocked: {d}"));
    let (overall, master, workers, worker_stats) = collector
        .take_output()
        .expect("collector finishes with the simulation");

    let out = fs.open(OUTPUT_FILE);
    let trace = sink.finish();
    let commits = commits.finish();
    RunReport::assemble(
        trace,
        commits,
        &params,
        &workload,
        overall,
        master,
        workers,
        worker_stats,
        &out,
        &fs,
        &world,
        &sim,
    )
}
