//! Builds the simulated cluster, spawns the master and workers, drives
//! the simulation, and assembles the run report.

use std::fmt;
use std::rc::Rc;

use s3a_des::{Deadlock, Sim, SimTime};
use s3a_faults::{FaultLog, FaultParams, FaultSchedule};
use s3a_mpi::World;
use s3a_mpiio::{File, Hints};
use s3a_net::Fabric;
use s3a_obs::ObsSink;
use s3a_pvfs::{FileSystem, PvfsError, SimSanitizer};
use s3a_workload::Workload;

use crate::master::run_master;
use crate::observe::publish_service_obs;
use crate::params::{ParamError, Segmentation, SimParams};
use crate::phase::PhaseBreakdown;
use crate::report::{RunReport, ServiceReport};
use crate::resume::{restart_point, CommitTracker, ResumePoint};
use crate::service::ServiceTracker;
use crate::shard::{run_shard_master, run_shard_worker};
use crate::trace::TraceSink;
use crate::worker::{run_worker, WorkerStats};

/// The per-run fault machinery handed to the master and workers: the
/// deterministic schedule (what fails, when) and the shared event log
/// (what actually happened, for the recovery-tax report).
#[derive(Clone)]
pub struct FaultCtx {
    /// Immutable, seed-derived fault plan.
    pub schedule: Rc<FaultSchedule>,
    /// Append-only record of injections, detections, and repairs.
    pub log: FaultLog,
}

/// Name of the simulated output file.
pub const OUTPUT_FILE: &str = "s3asim.out";

/// Name of the simulated sequence-database file (read by
/// query-segmentation workers whose memory cannot hold the database).
pub const DATABASE_FILE: &str = "database.db";

/// For query segmentation, fold each query's per-fragment hits into a
/// single whole-database task: the search work and result volume are
/// unchanged, but one worker performs all of it.
fn fold_for_query_segmentation(workload: &Workload) -> Workload {
    let mut folded = workload.clone();
    folded.params.fragments = 1;
    for q in &mut folded.queries {
        let mut all: Vec<s3a_workload::Hit> = q.hits.iter().flatten().copied().collect();
        all.sort_by(crate::protocol::hit_order);
        q.hits = vec![all];
    }
    folded
}

/// Why a run could not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The parameter combination was rejected before any simulation ran.
    InvalidParams(ParamError),
    /// The simulation stalled: no task could make progress. Carries the
    /// engine's parked-task diagnosis.
    Deadlock(Deadlock),
    /// The run completed but its output file failed verification (a byte
    /// missing, duplicated, or unflushed).
    Verification(String),
    /// A rank hit an unrecoverable file-system error — an outage past
    /// the retry budget, a write below its replica quorum, or a block
    /// with every copy rotten.
    Io(PvfsError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParams(e) => write!(f, "invalid parameters: {e}"),
            SimError::Deadlock(d) => write!(f, "S3aSim run deadlocked: {d}"),
            SimError::Verification(e) => write!(f, "output verification failed: {e}"),
            SimError::Io(e) => write!(f, "PVFS I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidParams(e) => Some(e),
            SimError::Deadlock(d) => Some(d),
            SimError::Verification(_) => None,
            SimError::Io(e) => Some(e),
        }
    }
}

/// Panic payload a master/worker task throws on an unrecoverable PVFS
/// error (simulated MPI has no error returns across ranks — a fatal I/O
/// error aborts the "job", exactly like `MPI_Abort`). The fallible entry
/// points catch it and surface [`SimError::Io`]; `repro` additionally
/// installs a panic hook that suppresses the default backtrace for this
/// payload.
pub struct IoFailure(
    /// The typed file-system error that aborted the run.
    pub PvfsError,
);

impl fmt::Debug for IoFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IoFailure({})", self.0)
    }
}

/// Abort the simulated job with a typed I/O error (see [`IoFailure`]).
pub(crate) fn io_failure(e: PvfsError) -> ! {
    std::panic::panic_any(IoFailure(e))
}

/// Run `execute`, converting an [`IoFailure`] unwind back into a typed
/// [`SimError::Io`]. Any other panic (a genuine bug) keeps unwinding.
fn execute_caught(params: &SimParams) -> Result<RunReport, SimError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(params))) {
        Ok(r) => r,
        Err(payload) => match payload.downcast::<IoFailure>() {
            Ok(io) => Err(SimError::Io(io.0)),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

impl From<ParamError> for SimError {
    fn from(e: ParamError) -> Self {
        SimError::InvalidParams(e)
    }
}

impl From<Deadlock> for SimError {
    fn from(d: Deadlock) -> Self {
        SimError::Deadlock(d)
    }
}

/// Execute one S3aSim run and return its report, or a typed error when
/// the parameters are invalid, the simulation deadlocks, or the produced
/// output file fails verification.
///
/// The cluster is assembled exactly once per run: compute nodes
/// (`procs / ranks_per_node` NICs) and PVFS2 servers share one fabric, so
/// MPI traffic and file traffic contend for the same links, as on the
/// paper's testbed.
pub fn try_run(params: &SimParams) -> Result<RunReport, SimError> {
    let report = execute_caught(params)?;
    report.verify().map_err(SimError::Verification)?;
    Ok(report)
}

/// Execute one S3aSim run and return its report.
///
/// Thin compatible wrapper over the fallible path: panics where
/// [`try_run`] returns `Err` (except verification, which remains the
/// caller's explicit step via [`RunReport::verify`], as it always was).
pub fn run(params: &SimParams) -> RunReport {
    execute_caught(params).unwrap_or_else(|e| panic!("{e}"))
}

/// The shared simulation body: validates, assembles the cluster, drives
/// the engine, and assembles the report. Does not verify the output file.
fn execute(params: &SimParams) -> Result<RunReport, SimError> {
    params.try_validate()?;
    let params = Rc::new(params.clone());
    let sim = Sim::new();
    let generated = Workload::generate(&params.workload);
    let workload = Rc::new(match params.segmentation {
        Segmentation::Database => generated,
        Segmentation::Query => fold_for_query_segmentation(&generated),
    });

    let tb = &params.testbed;
    let compute_nodes = params.procs.div_ceil(tb.mpi.ranks_per_node);
    let fabric = Rc::new(Fabric::new(compute_nodes + tb.pvfs.servers, tb.net));
    let world = World::with_fabric(&sim, params.procs, tb.mpi, Rc::clone(&fabric), 0);
    let fs = FileSystem::new(&sim, tb.pvfs, Rc::clone(&fabric), compute_nodes);

    // Arm the fault machinery. Message faults live in the fabric, server
    // faults in the file system; crash handling lives in the master and
    // worker loops, which receive the whole context. Domain-scoped
    // outages are expanded into per-server outages here, where the
    // testbed shape (server count, failure-domain count) is known.
    let faults = params
        .faults
        .expand_domains(tb.pvfs.servers, tb.pvfs.failure_domains);
    let faults_ctx = faults.any().then(|| FaultCtx {
        schedule: FaultSchedule::new(faults.clone()),
        log: FaultLog::new(),
    });
    if let Some(ctx) = &faults_ctx {
        fabric.set_faults(Rc::clone(&ctx.schedule), ctx.log.clone());
        fs.set_faults(Rc::clone(&ctx.schedule), ctx.log.clone());
    }

    // Background maintenance (failure detection, repair, scrub) only
    // runs when the file system tracks block replicas; plain runs keep
    // the exact pre-replication task set, byte for byte.
    let maint = (tb.pvfs.replicas > 1 || tb.pvfs.scrub_interval > SimTime::ZERO)
        .then(|| fs.spawn_maintenance(faults.heartbeat_interval));
    let replicated = tb.pvfs.replicas > 1;

    // Arm observability before any `File::open` (files inherit the file
    // system's sink at open time). Recording never changes virtual-time
    // behaviour, so report numbers are identical either way.
    let obs_sink = if params.observe {
        ObsSink::recording()
    } else {
        ObsSink::disabled()
    };
    if params.observe {
        fabric.set_obs(obs_sink.clone());
        fs.set_obs(obs_sink.clone());
        world.set_obs(obs_sink.clone());
    }

    // Arm the race sanitizer, also before any `File::open` (files snapshot
    // the file system's sanitizer at open time). Pure bookkeeping: it
    // advances no virtual time, so the run is bit-identical either way.
    let san = if params.sanitize {
        SimSanitizer::armed()
    } else {
        SimSanitizer::disabled()
    };
    if params.sanitize {
        if params.observe {
            san.set_obs(obs_sink.clone());
        }
        fs.set_sanitizer(san.clone());
    }

    let hints = Hints {
        cb_nodes: if params.cb_nodes == 0 {
            compute_nodes
        } else {
            params.cb_nodes
        },
        cb_buffer_size: params.cb_buffer_size,
        ind_wr_buffer_size: params.ind_wr_buffer_size,
    };

    let worker_ranks: Vec<usize> = (params.num_masters..params.procs).collect();
    let sink = if params.trace {
        TraceSink::recording()
    } else {
        TraceSink::disabled()
    };
    let commits = CommitTracker::new();
    let service_tracker = params.is_service().then(ServiceTracker::new);

    // Master(s). Each master's file handle lives on a single-rank
    // communicator: MW writes (and shipped-result shard writes) are
    // independent operations. Sharded runs spawn one master per shard;
    // `num_masters == 1` takes the original single-master path unchanged.
    let master_joins: Vec<_> = if params.sharded() {
        (0..params.num_masters)
            .map(|s| {
                let comm = world.comm(s);
                let master_only = comm.sub(&[s], &format!("master-io-{s}"));
                let file = File::open(&master_only, &fs, OUTPUT_FILE, hints);
                let sim2 = sim.clone();
                let p = Rc::clone(&params);
                let w = Rc::clone(&workload);
                let fx = faults_ctx.clone();
                let obs = obs_sink.clone();
                sim.spawn(
                    format!("master{s}"),
                    run_shard_master(
                        sim2,
                        comm,
                        p,
                        w,
                        file,
                        sink.clone(),
                        commits.clone(),
                        fx,
                        obs,
                    ),
                )
            })
            .collect()
    } else {
        let comm = world.comm(0);
        let master_only = comm.sub(&[0], "master-io");
        let file = File::open(&master_only, &fs, OUTPUT_FILE, hints);
        let sim2 = sim.clone();
        let p = Rc::clone(&params);
        let w = Rc::clone(&workload);
        let fx = faults_ctx.clone();
        let svc = service_tracker.clone();
        vec![sim.spawn(
            "master",
            run_master(
                sim2,
                comm,
                p,
                w,
                file,
                sink.clone(),
                commits.clone(),
                fx,
                svc,
            ),
        )]
    };

    // Workers (world ranks 1..procs). Their file handle lives on the
    // workers' communicator so collective writes span exactly the workers.
    let worker_joins: Vec<_> = worker_ranks
        .iter()
        .map(|&r| {
            let comm = world.comm(r);
            let workers_comm = comm.sub(&worker_ranks, "workers");
            let file = File::open(&workers_comm, &fs, OUTPUT_FILE, hints);
            let sim2 = sim.clone();
            let p = Rc::clone(&params);
            let w = Rc::clone(&workload);
            if params.sharded() {
                sim.spawn(
                    format!("worker{r}"),
                    run_shard_worker(
                        sim2,
                        comm,
                        workers_comm,
                        p,
                        w,
                        file,
                        sink.clone(),
                        commits.clone(),
                        faults_ctx.clone(),
                    ),
                )
            } else {
                let database = (params.segmentation == Segmentation::Query
                    && params.db_reload_bytes() > 0)
                    .then(|| fs.open(DATABASE_FILE));
                sim.spawn(
                    format!("worker{r}"),
                    run_worker(
                        sim2,
                        comm,
                        workers_comm,
                        p,
                        w,
                        file,
                        database,
                        sink.clone(),
                        commits.clone(),
                        faults_ctx.clone(),
                    ),
                )
            }
        })
        .collect();

    // Drive to completion; collect per-rank breakdowns.
    let collector = {
        let sim2 = sim.clone();
        let fs2 = fs.clone();
        sim.spawn("collector", async move {
            let mut masters = Vec::with_capacity(master_joins.len());
            for j in master_joins {
                masters.push(j.join().await);
            }
            // Single-master runs report that master's breakdown verbatim
            // (byte-identity with the pre-shard report); sharded runs
            // report the across-shard mean.
            let master = if masters.len() == 1 {
                masters.pop().expect("one master")
            } else {
                PhaseBreakdown::mean(&masters)
            };
            let mut workers = Vec::with_capacity(worker_joins.len());
            let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers.capacity());
            for j in worker_joins {
                let (bd, st) = j.join().await;
                workers.push(bd);
                worker_stats.push(st);
            }
            // Application completion time: every rank has exited. (The
            // engine may drain a few in-flight transfer bookkeeping tasks
            // a moment longer; those are not application time.)
            let overall = sim2.now();
            // Recovery epilogue: stop the perpetual maintenance loop so
            // the engine can terminate, then drain any re-replication
            // still outstanding so the report shows final block health.
            // Happens after `overall` is taken — the epilogue is repair
            // tax, not application time.
            if let Some(m) = &maint {
                m.stop();
            }
            if replicated {
                fs2.drain_repairs().await;
            }
            (overall, master, workers, worker_stats)
        })
    };

    sim.run()?;
    let (overall, master, workers, worker_stats) = collector
        .take_output()
        .expect("collector finishes with the simulation");

    let out = fs.open(OUTPUT_FILE);
    let trace = sink.finish();
    let commits = commits.finish();
    // Join the master's service milestones with the commit log (when each
    // query's bytes became durable) and publish the latency series into
    // the observability recording before it is sealed.
    let service = service_tracker.map(|t| {
        let sp = params
            .service()
            .expect("tracker exists only in service mode");
        ServiceReport::assemble(sp, t.finish(), &commits)
    });
    if let Some(svc) = &service {
        publish_service_obs(&obs_sink, svc);
    }
    let obs = obs_sink.finish();
    Ok(RunReport::assemble(
        trace,
        obs,
        commits,
        &params,
        &workload,
        overall,
        master,
        workers,
        worker_stats,
        &out,
        &fs,
        &world,
        &sim,
        faults_ctx.as_ref().map(|c| c.log.report()),
        san.finish(),
        service,
    ))
}

/// Outcome of a kill-and-restart experiment: the interrupted run, the
/// checkpoint recovered from its commit log, and the resumed run.
#[derive(Debug)]
pub struct RestartOutcome {
    /// The first run's report (in the experiment's fiction, this run was
    /// killed at `kill_at`; determinism makes its prefix identical to the
    /// completed run, so the commit log up to `kill_at` is exactly what a
    /// real crash would have left on disk).
    pub first: RunReport,
    /// The durable state recovered from the commit log at `kill_at`.
    pub resume: ResumePoint,
    /// The resumed run, started from `resume` with faults disarmed.
    pub second: RunReport,
}

impl RestartOutcome {
    /// Check that the restart produced a complete output: the resumed
    /// run's single extent sits exactly on top of the checkpoint's
    /// durable prefix and together they cover the whole expected output.
    pub fn verify(&self) -> Result<(), String> {
        self.second.verify()?;
        let total = self.first.expected_bytes;
        let covered = self.resume.base_offset + self.second.covered_bytes;
        if covered != total {
            return Err(format!(
                "restart hole: durable prefix {} + resumed {} != expected {}",
                self.resume.base_offset, self.second.covered_bytes, total
            ));
        }
        Ok(())
    }
}

/// Simulate a checkpoint-restart: run once (with whatever faults `params`
/// arms), pretend the process was killed at `kill_at`, recover the
/// durable prefix from the commit log, and run again resuming from it.
///
/// The whole experiment is deterministic: the first run's behavior up to
/// `kill_at` does not depend on anything after it, so its commit log
/// truncated at `kill_at` is byte-for-byte what a genuinely killed run
/// would have left behind.
pub fn run_with_restart(params: &SimParams, kill_at: SimTime) -> RestartOutcome {
    try_run_with_restart(params, kill_at).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_with_restart`]: both runs and the final
/// restart-coverage check report through [`SimError`] instead of
/// panicking.
pub fn try_run_with_restart(
    params: &SimParams,
    kill_at: SimTime,
) -> Result<RestartOutcome, SimError> {
    // Service runs shed load, so "the durable prefix covers batches
    // 0..k" no longer implies the restart owes exactly the rest — the
    // coverage check would be unsound. Typed rejection up front.
    if params.is_service() {
        return Err(SimError::InvalidParams(
            ParamError::ServiceResumeUnsupported,
        ));
    }
    let first = execute_caught(params)?;
    let resume = restart_point(&first.commits, kill_at);
    let mut resumed = params.clone();
    resumed.faults = FaultParams::default();
    resumed.resume_from = Some(resume.clone());
    let second = execute_caught(&resumed)?;
    let outcome = RestartOutcome {
        first,
        resume,
        second,
    };
    outcome.verify().map_err(SimError::Verification)?;
    Ok(outcome)
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for FaultCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultCtx").finish_non_exhaustive()
    }
}
