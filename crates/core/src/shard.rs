//! Sharded-master mode: the query space is partitioned across
//! `num_masters` master ranks, each running its own task farm over the
//! workers homed to it. Idle shards steal `(query, sub-fragment)` tasks
//! from busy siblings over a master↔master channel; tasks optionally
//! decompose below fragment granularity (`subfragment_factor`), so a
//! steal can move less than one fragment's worth of work.
//!
//! Layout is static: batch `b` owns the file extent
//! `[batch_base[b], batch_base[b] + bytes(b))`, computed from the
//! workload oracle up front, so shards lay out their batches without
//! coordinating a shared cursor (and without perturbing each other's
//! byte positions).
//!
//! Rank 0 doubles as the *coordinator*: it collects per-shard progress
//! reports and drives a two-phase shutdown quiesce (`Prepare` →
//! `PrepareAck` → `AllDone`) that guarantees no steal traffic is in
//! flight when the first `Done` is issued. With a master-crash schedule
//! armed, standby masters heartbeat the coordinator; a silent master is
//! declared dead, a successor shard adopts its batches (rebuilding the
//! ones that died unlaid-out), and its workers are re-homed — the run
//! completes with exactly-once extents (see DESIGN.md §"Sharded
//! master").

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use s3a_des::{Flag, Sim, SimTime, Sleep};
use s3a_faults::FaultKind;
use s3a_mpi::{waitall_sends, Comm, RecvRequest, SendRequest, Source};
use s3a_mpiio::{File, WriteMethod};
use s3a_obs::{ObsSink, Track};
use s3a_workload::{Hit, Workload};

use crate::failure_detector::Liveness;
use crate::offsets::BatchState;
use crate::params::{SimParams, Strategy};
use crate::phase::{Phase, PhaseBreakdown, PhaseTimer};
use crate::protocol::{
    merge_sorted_hits, Assign, OffsetsMsg, ScoresMsg, ShardCtrl, ShardStatus, StealReq, StealResp,
    CTRL_BYTES, HEARTBEAT_BYTES, SCORE_ENTRY_BYTES, TAG_ASSIGN, TAG_CTRL, TAG_CTRL_ACK,
    TAG_MASTER_HB, TAG_OFFSETS, TAG_SCORES, TAG_STATUS, TAG_STEAL_REQ, TAG_STEAL_RESP,
    TAG_WORK_REQ, WORK_REQ_BYTES,
};
use crate::resume::CommitTracker;
use crate::runner::FaultCtx;
use crate::trace::TraceSink;
use crate::worker::{expected_offset_messages, handle_offsets, WorkerState, WorkerStats};

/// How long an idle sharded worker backs off before re-requesting work
/// when no fault schedule supplies a heartbeat tick. Also the liveness
/// driver for fault-free masters: every Wait-ing worker re-polls its
/// home at this interval.
const SHARD_POLL: SimTime = SimTime::from_millis(10);

/// The slice of a fragment's hit list that sub-fragment `slice` of `k`
/// covers. Slices partition the list in order, so their concatenation is
/// the original fragment and each slice inherits the fragment's
/// `(score desc, size desc)` sort.
pub(crate) fn subfragment_hits(hits: &[Hit], slice: usize, k: usize) -> &[Hit] {
    let n = hits.len();
    &hits[slice * n / k..(slice + 1) * n / k]
}

/// Static file base of every batch: prefix sums of per-batch result
/// bytes, from the workload oracle. Batch extents never depend on
/// completion order, so shards can lay out independently.
fn batch_bases(workload: &Workload, gran: usize, nbatches: usize) -> Vec<u64> {
    let nq = workload.queries.len();
    let mut bases = Vec::with_capacity(nbatches);
    let mut cursor = 0u64;
    for b in 0..nbatches {
        bases.push(cursor);
        for q in b * gran..((b + 1) * gran).min(nq) {
            cursor += workload.queries[q]
                .hits
                .iter()
                .flatten()
                .map(|h| h.size)
                .sum::<u64>();
        }
    }
    bases
}

/// Initial batch → owning-master-rank map: shard `s` owns batches
/// `[s*nb/m, (s+1)*nb/m)` — contiguous, balanced to within one batch.
fn initial_owners(nbatches: usize, m: usize) -> Vec<usize> {
    let mut owner = vec![0usize; nbatches];
    for s in 0..m {
        for slot in owner
            .iter_mut()
            .take((s + 1) * nbatches / m)
            .skip(s * nbatches / m)
        {
            *slot = s;
        }
    }
    owner
}

/// Suspends a shard master until any of its receive channels has a
/// message — plus, in crash mode, a tick to re-check the detection
/// clock. All master-bound traffic lands in one mailbox, so a single
/// watch registration covers every wake source; fault-free masters carry
/// no timer at all (workers re-polling on `Wait` drive liveness).
struct ShardEvent<'a> {
    rxs: Vec<&'a RecvRequest>,
    sleep: Option<Sleep>,
}

impl Future for ShardEvent<'_> {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.rxs.iter().any(|r| r.ready()) {
            return Poll::Ready(());
        }
        this.rxs[0].watch();
        match &mut this.sleep {
            Some(s) => Pin::new(s).poll(cx),
            None => Poll::Pending,
        }
    }
}

/// Suspends a crash-mode sharded worker until its pending assignment
/// arrives, any other mailbox activity happens (a re-home notice, an
/// offset list), or a tick elapses.
struct AssignWait<'a> {
    rx: &'a RecvRequest,
    sleep: Sleep,
}

impl Future for AssignWait<'_> {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.rx.ready() {
            return Poll::Ready(());
        }
        this.rx.watch();
        Pin::new(&mut this.sleep).poll(cx)
    }
}

/// Take `floor(own/2)` of the victim's *own-owned* queued tasks, from
/// the back (the work its own workers would reach last). Stolen entries
/// (owner ≠ `me`) are never re-lent, so an unscored task always keeps
/// exactly one shard — its owner — unresolved.
fn lend_half(queue: &mut VecDeque<(usize, usize, usize)>, me: usize) -> Vec<(usize, usize)> {
    let own = queue.iter().filter(|&&(_, _, o)| o == me).count();
    let mut want = own / 2;
    if want == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(want);
    let mut kept: VecDeque<(usize, usize, usize)> = VecDeque::new();
    while want > 0 {
        match queue.pop_back() {
            Some((q, sf, o)) if o == me => {
                out.push((q, sf));
                want -= 1;
            }
            Some(e) => kept.push_front(e),
            None => break,
        }
    }
    while let Some(e) = kept.pop_front() {
        queue.push_back(e);
    }
    out.reverse();
    out
}

/// Run one shard master (world rank `0..num_masters`). Rank 0 is the
/// coordinator. `file` must be opened on a single-rank communicator —
/// shard writes (MW batches, shipped/stolen WW results) are independent
/// operations.
#[allow(clippy::too_many_arguments)]
pub(crate) async fn run_shard_master(
    sim: Sim,
    comm: Comm,
    params: Rc<SimParams>,
    workload: Rc<Workload>,
    file: File,
    trace: TraceSink,
    commits: CommitTracker,
    faults: Option<FaultCtx>,
    obs: ObsSink,
) -> PhaseBreakdown {
    let me = comm.rank();
    let procs = comm.size();
    let m = params.num_masters;
    let timer = PhaseTimer::with_trace(&sim, me, trace);

    // Step 1: distribute input variables (rank 0 is the bcast root).
    timer
        .track(Phase::Setup, comm.bcast(0, (me == 0).then_some(()), 1024))
        .await;

    let nq = workload.queries.len();
    let nf = workload.params.fragments;
    let k = params.subfragment_factor;
    let nf_eff = nf * k;
    let gran = params.batch_granularity(nq);
    let nbatches = nq.div_ceil(gran);
    let batch_base = batch_bases(&workload, gran, nbatches);
    let mut owner_of = initial_owners(nbatches, m);

    // Scheduling state: batches this shard owns, and its task queue.
    // Queue entries carry the task's owning shard; stolen entries keep
    // the victim as owner, so the worker knows where to report.
    let mut batches: Vec<Option<BatchState>> = (0..nbatches)
        .map(|b| {
            (owner_of[b] == me).then(|| {
                let queries: Vec<usize> = (b * gran..((b + 1) * gran).min(nq)).collect();
                BatchState::new(b, queries, nf_eff)
            })
        })
        .collect();
    let mut batches_left = batches.iter().filter(|b| b.is_some()).count();
    let mut queue: VecDeque<(usize, usize, usize)> = (0..nbatches)
        .filter(|&b| owner_of[b] == me)
        .flat_map(|b| b * gran..((b + 1) * gran).min(nq))
        .flat_map(|q| (0..nf_eff).map(move |sf| (q, sf, me)))
        .collect();

    // Exactly-once guard: every (query, sub-fragment) this shard has
    // accepted a score for. Failover can double-execute a task (an
    // in-flight assignment plus a rebuild/re-enqueue); the second report
    // is dropped here before it can over-report the batch.
    let mut scored: BTreeSet<(usize, usize)> = BTreeSet::new();
    // Tasks lent to thieves, so a thief's death re-enqueues them.
    let mut lent: BTreeMap<(usize, usize), usize> = BTreeMap::new();

    // Worker homing (index = world rank; entries below `m` unused).
    let mut home_of = vec![0usize; procs];
    for (w, h) in home_of.iter_mut().enumerate().skip(m) {
        *h = (w - m) % m;
    }
    let mut alive = vec![true; m];
    let mut done_workers: BTreeSet<usize> = BTreeSet::new();

    // Quiesce / failover state.
    let mut epoch = 0u64;
    let mut quiesced = false;
    let mut prepare_acked = false;
    let mut all_done = false;
    let mut last_report: Option<(bool, bool)> = None;
    // Steal pause: consecutive empty responses; at `alive siblings` the
    // shard stops asking (fault-free queues only ever drain, so all-empty
    // stays all-empty; a failover resets the streak).
    let mut empty_streak = 0usize;
    let mut next_victim = (me + 1) % m;
    let mut outstanding_steal: Option<(usize, RecvRequest, SimTime)> = None;

    // Coordinator state (rank 0 only; index 0 mirrors its own report).
    let mut remote: Vec<Option<(bool, bool)>> = vec![None; m];
    let mut acked = vec![false; m];
    let mut prepare_outstanding = false;

    let crash_mode = faults
        .as_ref()
        .is_some_and(|f| f.schedule.params().master_crashes());
    let my_crash = faults
        .as_ref()
        .and_then(|f| f.schedule.master_crash_time(me));
    let fp = faults.as_ref().map(|f| f.schedule.params().clone());
    let tick = fp
        .as_ref()
        .map(|p| p.heartbeat_interval)
        .unwrap_or(SimTime::ZERO);
    let detection_timeout = fp
        .as_ref()
        .map(|p| p.detection_timeout)
        .unwrap_or(SimTime::ZERO);
    let mut liveness = Liveness::new(m, sim.now(), detection_timeout);

    // Successor bookkeeping: rebuilt tasks are quarantined until every
    // worker has acknowledged the purge of its stale local merges, and
    // the takeover span runs from detection to quarantine release.
    let mut ack_wait: BTreeMap<usize, usize> = BTreeMap::new();
    let mut quarantine: BTreeMap<usize, Vec<(usize, usize, usize)>> = BTreeMap::new();
    let mut takeover_start: BTreeMap<usize, SimTime> = BTreeMap::new();

    // Standby masters heartbeat the coordinator while a master-crash
    // schedule is armed.
    let hb_stop = Flag::new(&sim);
    if crash_mode && me != 0 {
        let hb_comm = comm.clone();
        let stop = hb_stop.clone();
        let hb_sim = sim.clone();
        sim.spawn(format!("master-heartbeat-{me}"), async move {
            while !stop.is_set() {
                let _ = hb_comm.isend(0, TAG_MASTER_HB, (), HEARTBEAT_BYTES);
                hb_sim.sleep(tick).await;
            }
        });
    }

    let mut wr_rx = comm.irecv(Source::Any, TAG_WORK_REQ);
    let mut scores_rx = comm.irecv(Source::Any, TAG_SCORES);
    let mut streq_rx = comm.irecv(Source::Any, TAG_STEAL_REQ);
    let mut status_rx = comm.irecv(Source::Any, TAG_STATUS);
    let mut hb_rx = (crash_mode && me == 0).then(|| comm.irecv(Source::Any, TAG_MASTER_HB));
    let mut ack_rx = crash_mode.then(|| comm.irecv(Source::Any, TAG_CTRL_ACK));
    let mut ctrl_sends: Vec<SendRequest> = Vec::new();
    let mut crashed = false;

    let method = match params.strategy {
        Strategy::WwPosix => WriteMethod::Posix,
        Strategy::WwSieve => WriteMethod::DataSieve,
        _ => WriteMethod::ListIo,
    };

    loop {
        // Fail-stop point: the only obligation-free moment (layout writes
        // complete within their own iteration, so a dead shard never owes
        // an extent). Suppressed once the quiesce has begun: the
        // coordinator stops detecting the moment AllDone is broadcast.
        if let Some(t) = my_crash {
            if !quiesced && !all_done && sim.now() >= t {
                hb_stop.set();
                if let Some(f) = &faults {
                    f.log
                        .record(sim.now(), FaultKind::MasterCrashed { rank: me });
                }
                comm.mark_failed();
                crashed = true;
                break;
            }
        }

        // Master heartbeats refresh standby liveness (coordinator only).
        if let Some(rx) = &mut hb_rx {
            while let Some(msg) = rx.test() {
                let (_, status) = msg.into_parts::<()>();
                liveness.refresh(status.source, sim.now());
                *rx = comm.irecv(Source::Any, TAG_MASTER_HB);
            }
        }

        // Purge acknowledgements: once every worker has dropped its stale
        // merges for a dead shard's rebuilt batches, release them.
        if let Some(rx) = &mut ack_rx {
            while let Some(msg) = rx.test() {
                *rx = comm.irecv(Source::Any, TAG_CTRL_ACK);
                let (dead, _) = msg.into_parts::<usize>();
                if let Some(rem) = ack_wait.get_mut(&dead) {
                    *rem -= 1;
                    if *rem == 0 {
                        ack_wait.remove(&dead);
                        let released = quarantine.remove(&dead).unwrap_or_default();
                        obs.span(
                            Track::Rank(me),
                            "shard.takeover",
                            takeover_start.remove(&dead).unwrap_or_else(|| sim.now()),
                            sim.now(),
                            &[("dead", dead as u64), ("tasks", released.len() as u64)],
                        );
                        queue.extend(released);
                    }
                }
            }
        }

        // Status channel: reports/acks at the coordinator, quiesce and
        // failover notices at the shards.
        while let Some(msg) = status_rx.test() {
            status_rx = comm.irecv(Source::Any, TAG_STATUS);
            let (st, _) = msg.into_parts::<ShardStatus>();
            match st {
                ShardStatus::Report {
                    shard,
                    epoch: e,
                    resolved,
                    stealing,
                } => {
                    if me == 0 && e == epoch {
                        remote[shard] = Some((resolved, stealing));
                    }
                }
                ShardStatus::PrepareAck { shard, epoch: e } => {
                    if me == 0 && e == epoch {
                        acked[shard] = true;
                    }
                }
                ShardStatus::Prepare { epoch: e } => {
                    if e == epoch {
                        quiesced = true;
                    }
                }
                ShardStatus::AllDone => {
                    all_done = true;
                }
                ShardStatus::MasterDead {
                    dead,
                    successor,
                    epoch: e,
                } => {
                    epoch = e;
                    handle_master_dead(
                        dead,
                        successor,
                        me,
                        &sim,
                        &comm,
                        &faults,
                        &commits,
                        &obs,
                        gran,
                        nq,
                        nf_eff,
                        procs,
                        &mut owner_of,
                        &mut home_of,
                        &mut alive,
                        &mut batches,
                        &mut batches_left,
                        &mut queue,
                        &scored,
                        &mut lent,
                        &mut quiesced,
                        &mut prepare_acked,
                        &mut empty_streak,
                        &mut outstanding_steal,
                        &mut ack_wait,
                        &mut quarantine,
                        &mut takeover_start,
                        &mut ctrl_sends,
                    );
                    last_report = None;
                }
            }
        }

        // Results: dedup, then record at the owning batch. Shipped
        // results (stolen tasks, all MW tasks) are credited to this rank
        // — the data rode along and this shard writes it at layout.
        while let Some(msg) = scores_rx.test() {
            scores_rx = comm.irecv(Source::Any, TAG_SCORES);
            let (sc, status) = msg.into_parts::<ScoresMsg>();
            let key = (sc.query, sc.fragment);
            if !scored.insert(key) {
                continue;
            }
            lent.remove(&key);
            let b = sc.query / gran;
            let writer = if sc.shipped { me } else { status.source };
            batches[b]
                .as_mut()
                .unwrap_or_else(|| panic!("scores for batch {b} not held by shard {me}"))
                .record(sc.query, sc.fragment, writer, &sc.hits);
        }

        // Completed batches: lay out at the static base, write this
        // shard's own share immediately (so a fail-stop never owes an
        // extent), and notify the worker writers.
        for b in 0..nbatches {
            let complete = batches[b].as_ref().is_some_and(BatchState::is_complete);
            if !complete {
                continue;
            }
            let batch = batches[b].take().expect("checked above");
            batches_left -= 1;
            let base = batch_base[b];
            let (plans, total) = batch.assign_offsets(base);
            let batch_queries = ((b + 1) * gran).min(nq) - b * gran;
            let writers = batch.contributing_workers();
            commits.expect(b, writers.clone(), batch_queries, total, base, sim.now());
            if let Some(plan) = plans.get(&me) {
                if params.strategy == Strategy::Mw {
                    timer
                        .track(Phase::Io, file.write_at(base, total))
                        .await
                        .unwrap_or_else(|e| crate::runner::io_failure(e));
                } else {
                    timer
                        .track(Phase::Io, file.write_regions(&plan.regions, method))
                        .await
                        .unwrap_or_else(|e| crate::runner::io_failure(e));
                }
                timer
                    .track(Phase::Io, file.sync())
                    .await
                    .unwrap_or_else(|e| crate::runner::io_failure(e));
                commits.complete_by(b, me, sim.now());
            }
            for w in writers.into_iter().filter(|&w| w != me) {
                let offsets = plans[&w].offsets.clone();
                let omsg = OffsetsMsg { batch: b, offsets };
                let bytes = omsg.wire_bytes();
                ctrl_sends.push(comm.isend(w, TAG_OFFSETS, omsg, bytes));
            }
        }

        // Failure detection (coordinator): a standby silent strictly
        // longer than the timeout is dead; pick the next alive master
        // cyclically after it as successor and broadcast. Off once the
        // quiesce has completed — a standby that received AllDone exits
        // (and stops heartbeating) while still marked alive here, and no
        // standby can crash after acking Prepare, so a post-AllDone
        // silence is always a clean exit, not a death.
        if crash_mode && me == 0 && !all_done {
            for s in 1..m {
                if alive[s] && liveness.silent(s, sim.now()) {
                    if let Some(f) = &faults {
                        f.log
                            .record(sim.now(), FaultKind::MasterDetected { rank: s });
                    }
                    let successor = (1..m)
                        .map(|d| (s + d) % m)
                        .find(|&c| alive[c])
                        .expect("rank 0 never crashes, so a successor exists");
                    epoch += 1;
                    remote = vec![None; m];
                    acked = vec![false; m];
                    prepare_outstanding = false;
                    let notice = ShardStatus::MasterDead {
                        dead: s,
                        successor,
                        epoch,
                    };
                    for t in (1..m).filter(|&t| alive[t] && t != s) {
                        timer
                            .track(
                                Phase::Recovery,
                                comm.send(t, TAG_STATUS, notice, CTRL_BYTES),
                            )
                            .await;
                    }
                    handle_master_dead(
                        s,
                        successor,
                        me,
                        &sim,
                        &comm,
                        &faults,
                        &commits,
                        &obs,
                        gran,
                        nq,
                        nf_eff,
                        procs,
                        &mut owner_of,
                        &mut home_of,
                        &mut alive,
                        &mut batches,
                        &mut batches_left,
                        &mut queue,
                        &scored,
                        &mut lent,
                        &mut quiesced,
                        &mut prepare_acked,
                        &mut empty_streak,
                        &mut outstanding_steal,
                        &mut ack_wait,
                        &mut quarantine,
                        &mut takeover_start,
                        &mut ctrl_sends,
                    );
                    last_report = None;
                }
            }
        }

        // A steal response arrived: extend the queue (owner = victim) or
        // bump the empty streak toward the pause threshold.
        if outstanding_steal
            .as_ref()
            .is_some_and(|(_, rx, _)| rx.ready())
        {
            let (victim, rx, t0) = outstanding_steal.take().expect("checked above");
            let (resp, _) = rx.test().expect("ready").into_parts::<StealResp>();
            if resp.tasks.is_empty() {
                empty_streak += 1;
                obs.add("shard.steals.empty", 1);
            } else {
                empty_streak = 0;
                obs.add("shard.steals.tasks", resp.tasks.len() as u64);
                obs.span(
                    Track::Rank(me),
                    "shard.steal",
                    t0,
                    sim.now(),
                    &[
                        ("victim", victim as u64),
                        ("tasks", resp.tasks.len() as u64),
                    ],
                );
                queue.extend(resp.tasks.iter().map(|&(q, sf)| (q, sf, resp.owner)));
                obs.sample(
                    Track::Rank(me),
                    "shard.queue_depth",
                    sim.now(),
                    queue.len() as u64,
                );
            }
        }

        // Steal requests from siblings: lend half of the own-owned queue
        // (nothing once quiesced — the shutdown guarantee).
        while let Some(msg) = streq_rx.test() {
            streq_rx = comm.irecv(Source::Any, TAG_STEAL_REQ);
            let (req, _) = msg.into_parts::<StealReq>();
            let tasks = if quiesced || all_done {
                Vec::new()
            } else {
                lend_half(&mut queue, me)
            };
            for &t in &tasks {
                lent.insert(t, req.thief);
            }
            let resp = StealResp { tasks, owner: me };
            let bytes = resp.wire_bytes();
            ctrl_sends.push(comm.isend(req.thief, TAG_STEAL_RESP, resp, bytes));
        }

        // Progress report: to the coordinator on every state change (and
        // once at start); the coordinator mirrors its own state locally.
        let state_now = (batches_left == 0, outstanding_steal.is_some());
        if !all_done && last_report != Some(state_now) {
            last_report = Some(state_now);
            if me == 0 {
                remote[0] = Some(state_now);
            } else {
                let report = ShardStatus::Report {
                    shard: me,
                    epoch,
                    resolved: state_now.0,
                    stealing: state_now.1,
                };
                timer
                    .track(
                        Phase::DataDistribution,
                        comm.send(0, TAG_STATUS, report, CTRL_BYTES),
                    )
                    .await;
            }
        }

        // Quiesce ack: no steal outstanding and none will start.
        if quiesced && !prepare_acked && outstanding_steal.is_none() && me != 0 {
            prepare_acked = true;
            let ack = ShardStatus::PrepareAck { shard: me, epoch };
            timer
                .track(
                    Phase::DataDistribution,
                    comm.send(0, TAG_STATUS, ack, CTRL_BYTES),
                )
                .await;
        }

        // Coordinator: drive the two-phase shutdown.
        if me == 0 && !all_done {
            let all_resolved =
                (0..m).all(|s| !alive[s] || matches!(remote[s], Some((true, false))));
            if !prepare_outstanding && all_resolved {
                prepare_outstanding = true;
                quiesced = true;
                for s in (1..m).filter(|&s| alive[s]) {
                    timer
                        .track(
                            Phase::DataDistribution,
                            comm.send(s, TAG_STATUS, ShardStatus::Prepare { epoch }, CTRL_BYTES),
                        )
                        .await;
                }
            }
            if prepare_outstanding
                && outstanding_steal.is_none()
                && (1..m).all(|s| !alive[s] || acked[s])
            {
                all_done = true;
                for s in (1..m).filter(|&s| alive[s]) {
                    timer
                        .track(
                            Phase::DataDistribution,
                            comm.send(s, TAG_STATUS, ShardStatus::AllDone, CTRL_BYTES),
                        )
                        .await;
                }
            }
        }

        // Answer one work request from a homed worker.
        if let Some(msg) = wr_rx.test() {
            let (_, status) = msg.into_parts::<()>();
            let w = status.source;
            wr_rx = comm.irecv(Source::Any, TAG_WORK_REQ);
            let assign = if all_done {
                done_workers.insert(w);
                Assign::Done
            } else if let Some((q, sf, owner)) = queue.pop_front() {
                obs.sample(
                    Track::Rank(me),
                    "shard.queue_depth",
                    sim.now(),
                    queue.len() as u64,
                );
                // Ship rule: results cross shards (stolen work) or the
                // master writes everything anyway (MW).
                let ship = owner != me || params.strategy == Strategy::Mw;
                Assign::ShardTask {
                    query: q,
                    fragment: sf,
                    owner,
                    ship,
                }
            } else {
                // Idle shard: try to steal before telling the worker to
                // wait. One request in flight at a time; pause once every
                // sibling has answered empty (their queues only drain).
                let alive_siblings = (0..m).filter(|&s| alive[s] && s != me).count();
                if !quiesced
                    && !all_done
                    && outstanding_steal.is_none()
                    && alive_siblings > 0
                    && empty_streak < alive_siblings
                {
                    for _ in 0..m {
                        if alive[next_victim] && next_victim != me {
                            break;
                        }
                        next_victim = (next_victim + 1) % m;
                    }
                    let victim = next_victim;
                    next_victim = (next_victim + 1) % m;
                    let resp_rx = comm.irecv(victim, TAG_STEAL_RESP);
                    obs.add("shard.steals.requested", 1);
                    timer
                        .track(
                            Phase::DataDistribution,
                            comm.send(victim, TAG_STEAL_REQ, StealReq { thief: me }, CTRL_BYTES),
                        )
                        .await;
                    outstanding_steal = Some((victim, resp_rx, sim.now()));
                }
                Assign::Wait
            };
            let bytes = assign.wire_bytes();
            timer
                .track(
                    Phase::DataDistribution,
                    comm.send(w, TAG_ASSIGN, assign, bytes),
                )
                .await;
            continue;
        }

        // Exit once the quiesce has completed and every currently-homed
        // worker has been dismissed.
        if all_done
            && (m..procs)
                .filter(|&w| home_of[w] == me)
                .all(|w| done_workers.contains(&w))
        {
            break;
        }

        // Idle: wake on any mailbox activity; crash mode adds a tick so
        // the detection clock keeps being re-checked.
        let mut rxs: Vec<&RecvRequest> = vec![&wr_rx, &scores_rx, &streq_rx, &status_rx];
        if let Some((_, rx, _)) = &outstanding_steal {
            rxs.push(rx);
        }
        if let Some(rx) = &hb_rx {
            rxs.push(rx);
        }
        if let Some(rx) = &ack_rx {
            rxs.push(rx);
        }
        timer
            .track(
                Phase::DataDistribution,
                ShardEvent {
                    rxs,
                    sleep: crash_mode.then(|| sim.sleep(tick)),
                },
            )
            .await;
    }

    if !crashed {
        hb_stop.set();
        timer
            .track(Phase::GatherResults, waitall_sends(&ctrl_sends))
            .await;
        if !crash_mode {
            // Step 20/21: final synchronization — impossible with master
            // crashes (a dead shard can never arrive).
            timer.track(Phase::Sync, comm.barrier()).await;
        }
    }

    let mut bd = timer.snapshot();
    bd.close_to(sim.now());
    bd
}

/// Fold a dead master's obligations into the survivors: purge its queue
/// entries, reclaim tasks lent to it, re-home its workers, and — at the
/// successor — adopt its batches, rebuilding the ones that died without
/// a layout (their scores existed only in the dead shard's memory).
#[allow(clippy::too_many_arguments)]
fn handle_master_dead(
    dead: usize,
    successor: usize,
    me: usize,
    sim: &Sim,
    comm: &Comm,
    faults: &Option<FaultCtx>,
    commits: &CommitTracker,
    obs: &ObsSink,
    gran: usize,
    nq: usize,
    nf_eff: usize,
    procs: usize,
    owner_of: &mut [usize],
    home_of: &mut [usize],
    alive: &mut [bool],
    batches: &mut [Option<BatchState>],
    batches_left: &mut usize,
    queue: &mut VecDeque<(usize, usize, usize)>,
    scored: &BTreeSet<(usize, usize)>,
    lent: &mut BTreeMap<(usize, usize), usize>,
    quiesced: &mut bool,
    prepare_acked: &mut bool,
    empty_streak: &mut usize,
    outstanding_steal: &mut Option<(usize, RecvRequest, SimTime)>,
    ack_wait: &mut BTreeMap<usize, usize>,
    quarantine: &mut BTreeMap<usize, Vec<(usize, usize, usize)>>,
    takeover_start: &mut BTreeMap<usize, SimTime>,
    ctrl_sends: &mut Vec<SendRequest>,
) {
    alive[dead] = false;
    // The failover epoch bumped: any quiesce in progress is void, and
    // steal pausing restarts (the successor's queue may have refilled).
    *quiesced = false;
    *prepare_acked = false;
    *empty_streak = 0;

    // Workers homed to the dead shard re-home to the successor (the
    // successor tells them via `Rehome`; this map keeps every master's
    // view of homing consistent for its own exit condition).
    for h in home_of.iter_mut() {
        if *h == dead {
            *h = successor;
        }
    }

    // Stolen-from-the-dead tasks can no longer be reported anywhere
    // (their owner is gone); the successor rebuilds their batches.
    queue.retain(|&(_, _, o)| o != dead);

    // A steal aimed at the dead shard will never be answered. Leak the
    // posted receive rather than cancel it: a response already in flight
    // (in rendezvous) can still match and complete; nobody reads it.
    if let Some((victim, _, _)) = outstanding_steal {
        if *victim == dead {
            let (_, rx, _) = outstanding_steal.take().expect("checked above");
            std::mem::forget(rx);
        }
    }

    // Tasks this shard lent to the dead thief and never got back.
    let reclaimed: Vec<(usize, usize)> = lent
        .iter()
        .filter(|&(_, &thief)| thief == dead)
        .map(|(&t, _)| t)
        .collect();
    for t in reclaimed {
        lent.remove(&t);
        if !scored.contains(&t) {
            queue.push_back((t.0, t.1, me));
        }
    }

    // EVERY survivor records the new ownership, not just the successor:
    // a later failover consults `owner_of` to find the batches the next
    // dead master held, so a stale map at the next successor would
    // orphan batches adopted in an earlier takeover (chained crashes are
    // legal with >= 3 masters) and the run would never terminate.
    let adopted: Vec<usize> = (0..batches.len())
        .filter(|&b| owner_of[b] == dead)
        .collect();
    // The chaos knob reverts this fix (successor-only update) so s3a-mc
    // can prove it rediscovers the chained-failover bug mechanically.
    if !crate::chaos::stale_ownership_bug() || me == successor {
        for &b in &adopted {
            owner_of[b] = successor;
        }
    }

    if me != successor {
        return;
    }

    // Adopt the dead shard's batches. A batch the commit tracker knows
    // (laid out, pending worker writes, or already durable) needs
    // nothing: its offsets are on the wire and the surviving workers
    // will complete it. A batch it has never seen died with its owner's
    // score state — rebuild it from scratch and quarantine its tasks
    // until every worker has purged its stale local merges.
    let now = sim.now();
    let mut purge: Vec<usize> = Vec::new();
    let mut quarantined: Vec<(usize, usize, usize)> = Vec::new();
    for b in adopted {
        if commits.is_known(b) {
            continue;
        }
        let queries: Vec<usize> = (b * gran..((b + 1) * gran).min(nq)).collect();
        quarantined.extend(
            queries
                .iter()
                .flat_map(|&q| (0..nf_eff).map(move |sf| (q, sf, me))),
        );
        batches[b] = Some(BatchState::new(b, queries, nf_eff));
        *batches_left += 1;
        purge.push(b);
    }
    if let Some(f) = faults {
        f.log.record(
            now,
            FaultKind::ShardTakeover {
                dead,
                successor: me,
                batches: purge.len(),
            },
        );
    }
    obs.add("shard.takeovers", 1);
    obs.add("shard.batches_rebuilt", purge.len() as u64);

    // Tell every worker (not just the dead shard's): any worker may hold
    // stale merges for a rebuilt batch from before an earlier re-homing.
    let notice = ShardCtrl::Rehome {
        dead,
        successor: me,
        purge: purge.clone(),
    };
    let bytes = notice.wire_bytes();
    let first_worker = alive.len();
    for w in first_worker..procs {
        ctrl_sends.push(comm.isend(w, TAG_CTRL, notice.clone(), bytes));
    }
    if purge.is_empty() {
        // Nothing was rebuilt, so no merge anywhere is stale; the
        // re-home notice needs no acknowledgement barrier.
        return;
    }
    takeover_start.insert(dead, now);
    quarantine.insert(dead, quarantined);
    ack_wait.insert(dead, procs - first_worker);
}

/// Run a sharded worker (world rank `num_masters..procs`). Like
/// [`crate::worker::run_worker`] but homed to a shard master, speaking
/// sub-fragment tasks, and — when master crashes are armed — following
/// `Rehome` notices to a successor shard.
#[allow(clippy::too_many_arguments)]
pub(crate) async fn run_shard_worker(
    sim: Sim,
    comm: Comm,
    workers_comm: Comm,
    params: Rc<SimParams>,
    workload: Rc<Workload>,
    file: File,
    trace: TraceSink,
    commits: CommitTracker,
    faults: Option<FaultCtx>,
) -> (PhaseBreakdown, WorkerStats) {
    let me = comm.rank();
    let m = params.num_masters;
    let timer = PhaseTimer::with_trace(&sim, me, trace);

    timer
        .track(Phase::Setup, comm.bcast::<()>(0, None, 1024))
        .await;

    let nq = workload.queries.len();
    let gran = params.batch_granularity(nq);
    let nbatches = nq.div_ceil(gran);
    let k = params.subfragment_factor;
    let mut home = (me - m) % m;

    let mut state = WorkerState {
        local: (0..nbatches).map(|_| BTreeMap::new()).collect(),
        have_results: vec![false; nbatches],
        offsets_handled: 0,
        stats: WorkerStats::default(),
    };
    // Offsets may arrive from any shard this worker has ever been homed
    // to — including a master that has since crashed (its in-flight
    // sends still complete).
    let mut offs_rx = comm.irecv(Source::Any, TAG_OFFSETS);
    let mut result_sends: VecDeque<SendRequest> = VecDeque::new();
    let workers_write = params.strategy.workers_write();

    let crash_mode = faults
        .as_ref()
        .is_some_and(|f| f.schedule.params().master_crashes());
    let tick = if crash_mode {
        faults
            .as_ref()
            .map(|f| f.schedule.params().heartbeat_interval)
            .expect("crash_mode implies faults")
    } else {
        // Fault-free shards answer `Wait` while a steal is in flight;
        // back off a real interval so the request/wait ping-pong cannot
        // livelock at a fixed timestamp.
        SHARD_POLL
    };
    let mut ctrl_rx = crash_mode.then(|| comm.irecv(Source::Any, TAG_CTRL));
    let mut ctrl_sends: Vec<SendRequest> = Vec::new();
    // Masters this worker has seen die (via `Rehome`). An assignment
    // from one can still arrive after the purge ack when message delays
    // outlast the detection window; executing it would re-create the
    // stale local merge the ack barrier claims was dropped.
    let mut dead_masters: BTreeSet<usize> = BTreeSet::new();

    loop {
        timer
            .track(
                Phase::DataDistribution,
                comm.send(home, TAG_WORK_REQ, (), WORK_REQ_BYTES),
            )
            .await;

        let resp = if !crash_mode {
            timer
                .track(Phase::DataDistribution, comm.recv(home, TAG_ASSIGN))
                .await
                .downcast::<Assign>()
        } else {
            // Crash mode: the assignment may never come (the home master
            // died). Poll the assignment alongside control traffic; a
            // `Rehome` naming our home redirects the work request. The
            // assignment is always consumed first so a task already on
            // the wire completes (and merges) before any purge clears it.
            let mut assign_rx = comm.irecv(home, TAG_ASSIGN);
            'assign: loop {
                if let Some(msg) = assign_rx.test() {
                    break 'assign msg.downcast::<Assign>();
                }
                let mut rehomed = false;
                if let Some(rx) = &mut ctrl_rx {
                    while let Some(msg) = rx.test() {
                        *rx = comm.irecv(Source::Any, TAG_CTRL);
                        let ShardCtrl::Rehome {
                            dead,
                            successor,
                            purge,
                        } = msg.downcast::<ShardCtrl>();
                        dead_masters.insert(dead);
                        for &b in &purge {
                            state.local[b].clear();
                            state.have_results[b] = false;
                        }
                        if !purge.is_empty() {
                            ctrl_sends.push(comm.isend(successor, TAG_CTRL_ACK, dead, CTRL_BYTES));
                        }
                        if home == dead {
                            home = successor;
                            rehomed = true;
                        }
                    }
                }
                if rehomed {
                    // The old request was absorbed by the dead master.
                    // Leak the posted receive (an assignment already in
                    // flight may still match it; nobody will read it —
                    // its task is un-scored, so the successor's rebuild
                    // covers it) and re-ask the new home.
                    std::mem::forget(assign_rx);
                    timer
                        .track(
                            Phase::Recovery,
                            comm.send(home, TAG_WORK_REQ, (), WORK_REQ_BYTES),
                        )
                        .await;
                    assign_rx = comm.irecv(home, TAG_ASSIGN);
                    continue 'assign;
                }
                while let Some(msg) = offs_rx.test() {
                    offs_rx = comm.irecv(Source::Any, TAG_OFFSETS);
                    handle_offsets(
                        &timer,
                        &params,
                        &workers_comm,
                        &file,
                        &mut state,
                        &commits,
                        me,
                        msg,
                    )
                    .await;
                }
                timer
                    .track(
                        Phase::DataDistribution,
                        AssignWait {
                            rx: &assign_rx,
                            sleep: sim.sleep(tick),
                        },
                    )
                    .await;
            }
        };

        match resp {
            Assign::ShardTask {
                query,
                fragment,
                owner,
                ship,
            } => {
                if dead_masters.contains(&owner) {
                    // A delayed assignment outlived its owner. Every
                    // unscored task of a dead shard is covered by the
                    // successor's rebuild, so executing this one could
                    // only waste compute, lose its score to a dead rank,
                    // or merge hits back into a purged batch. Drop it
                    // and ask the (live) home for real work.
                    continue;
                }
                state.stats.tasks += 1;
                // `fragment` indexes the sub-fragment space: fragment
                // f of the workload split `subfragment_factor` ways.
                let full = &workload.queries[query].hits[fragment / k];
                let hits = subfragment_hits(full, fragment % k, k);
                let bytes: u64 = hits.iter().map(|h| h.size).sum();
                timer
                    .track(
                        Phase::Compute,
                        sim.sleep(params.compute_time_multi(bytes, 1)),
                    )
                    .await;

                // Local merge only when this worker will write the data
                // itself; shipped results travel with the scores and are
                // written by the owning shard master.
                if !ship && workers_write && !hits.is_empty() {
                    let merge_time = params.testbed.merge_per_hit * hits.len() as u64;
                    timer
                        .track(Phase::MergeResults, sim.sleep(merge_time))
                        .await;
                    let b = query / gran;
                    let slot = state.local[b].entry(query).or_default();
                    if slot.is_empty() {
                        slot.extend_from_slice(hits);
                    } else {
                        *slot = merge_sorted_hits(slot, hits);
                    }
                    state.have_results[b] = true;
                }

                while result_sends.len() >= params.testbed.max_outstanding_result_sends {
                    let oldest = result_sends.pop_front().expect("nonempty");
                    timer.track(Phase::GatherResults, oldest.wait()).await;
                }
                let wire = SCORE_ENTRY_BYTES * hits.len() as u64 + if ship { bytes } else { 0 };
                let msg = ScoresMsg {
                    query,
                    fragment,
                    hits: hits.to_vec(),
                    shipped: ship,
                };
                result_sends.push_back(comm.isend(owner, TAG_SCORES, msg, wire));
            }
            Assign::Wait => {
                while let Some(msg) = offs_rx.test() {
                    offs_rx = comm.irecv(Source::Any, TAG_OFFSETS);
                    handle_offsets(
                        &timer,
                        &params,
                        &workers_comm,
                        &file,
                        &mut state,
                        &commits,
                        me,
                        msg,
                    )
                    .await;
                }
                let idle_phase = if crash_mode {
                    Phase::Recovery
                } else {
                    Phase::DataDistribution
                };
                timer.track(idle_phase, sim.sleep(tick)).await;
            }
            Assign::Done => break,
            Assign::Task { .. } | Assign::Repair { .. } | Assign::Shutdown { .. } => {
                unreachable!("single-master assignment in a sharded run")
            }
        }

        // Crash runs drain eagerly: prompt writes shrink the window in
        // which a master's death would force a batch rebuild.
        if crash_mode {
            while let Some(msg) = offs_rx.test() {
                offs_rx = comm.irecv(Source::Any, TAG_OFFSETS);
                handle_offsets(
                    &timer,
                    &params,
                    &workers_comm,
                    &file,
                    &mut state,
                    &commits,
                    me,
                    msg,
                )
                .await;
            }
        }
    }

    // Drain every batch we still owe I/O for. Unlike the single-master
    // crash path, a sharded `Done` certifies scoring, not durability —
    // worker writes may still be outstanding, so the drain always runs.
    let expected = expected_offset_messages(&params, &state);
    while state.offsets_handled < expected {
        let msg = timer.track(Phase::DataDistribution, offs_rx.wait()).await;
        offs_rx = comm.irecv(Source::Any, TAG_OFFSETS);
        handle_offsets(
            &timer,
            &params,
            &workers_comm,
            &file,
            &mut state,
            &commits,
            me,
            msg,
        )
        .await;
    }

    while let Some(s) = result_sends.pop_front() {
        timer.track(Phase::GatherResults, s.wait()).await;
    }
    timer
        .track(Phase::GatherResults, waitall_sends(&ctrl_sends))
        .await;

    if !crash_mode {
        timer.track(Phase::Sync, comm.barrier()).await;
    }

    let mut bd = timer.snapshot();
    bd.close_to(sim.now());
    (bd, state.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(score: u64, size: u64) -> Hit {
        Hit { score, size }
    }

    #[test]
    fn subfragments_partition_the_fragment() {
        for len in [0usize, 1, 5, 8, 13] {
            let hits: Vec<Hit> = (0..len).map(|i| h(100 - i as u64, 1 + i as u64)).collect();
            for k in [1usize, 2, 3, 4, 7] {
                let mut joined = Vec::new();
                for j in 0..k {
                    joined.extend_from_slice(subfragment_hits(&hits, j, k));
                }
                assert_eq!(joined, hits, "len={len} k={k}");
            }
        }
    }

    #[test]
    fn owners_partition_batches_contiguously() {
        for (nb, m) in [(8usize, 2usize), (10, 4), (3, 8), (1, 2), (16, 1)] {
            let owner = initial_owners(nb, m);
            assert_eq!(owner.len(), nb);
            // Non-decreasing, all < m, and each shard's span matches the
            // [s*nb/m, (s+1)*nb/m) definition.
            for (b, &o) in owner.iter().enumerate() {
                let s = (0..m)
                    .find(|&s| (s * nb / m..(s + 1) * nb / m).contains(&b))
                    .expect("every batch falls in exactly one shard span");
                assert_eq!(o, s, "nb={nb} m={m} b={b}");
            }
        }
    }

    #[test]
    fn lend_takes_half_of_own_from_the_back() {
        let mut q: VecDeque<(usize, usize, usize)> = VecDeque::new();
        // me=1 owns 5 entries; two stolen entries (owner 2) interleaved.
        for i in 0..5 {
            q.push_back((i, 0, 1));
        }
        q.insert(2, (90, 0, 2));
        q.push_back((91, 0, 2));
        let lent = lend_half(&mut q, 1);
        assert_eq!(lent, vec![(3, 0), (4, 0)]);
        // Stolen entries survive, own front retains order.
        let rest: Vec<_> = q.iter().copied().collect();
        assert_eq!(
            rest,
            vec![(0, 0, 1), (1, 0, 1), (90, 0, 2), (2, 0, 1), (91, 0, 2)]
        );
        // Nothing to lend from a single own task.
        let mut q2: VecDeque<(usize, usize, usize)> = VecDeque::from([(0, 0, 1)]);
        assert!(lend_half(&mut q2, 1).is_empty());
        assert_eq!(q2.len(), 1);
    }
}
