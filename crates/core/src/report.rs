//! Run reports: per-phase breakdowns, verification, and text rendering.

use std::collections::BTreeMap;
use std::fmt;

use s3a_des::{Sim, SimStats, SimTime};
use s3a_faults::FaultReport;
use s3a_mpi::{MpiStats, World};
use s3a_obs::ObsReport;
use s3a_pvfs::{FileHandle, FileSystem, FsStats, SanitizerReport};
use s3a_workload::Workload;

use crate::params::{SchedPolicy, ServiceParams, SimParams, Strategy};
use crate::phase::{Phase, PhaseBreakdown, PHASES};
use crate::resume::CommitLog;
use crate::service::ServiceLog;
use crate::trace::Trace;
use crate::worker::WorkerStats;

/// A typed column set: names paired with rendered values, appended
/// together so a CSV surface can never emit a header that disagrees with
/// its rows. Every table the crate writes — batch sweep tables,
/// `results/replication.csv`, `results/service.csv` — derives both its
/// header line and its data rows from one `Columns` value.
#[derive(Debug, Clone, Default)]
pub struct Columns {
    cols: Vec<(String, String)>,
}

impl Columns {
    /// An empty column set.
    pub fn new() -> Columns {
        Columns::default()
    }

    /// Append one column, rendering the value with `Display`.
    pub fn push(&mut self, name: impl Into<String>, value: impl fmt::Display) -> &mut Columns {
        self.cols.push((name.into(), value.to_string()));
        self
    }

    /// Append one virtual-time column in seconds, fixed at six decimals
    /// (the format every table in this crate uses for durations).
    pub fn push_secs(&mut self, name: impl Into<String>, t: SimTime) -> &mut Columns {
        self.cols
            .push((name.into(), format!("{:.6}", t.as_secs_f64())));
        self
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when no column was appended.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Column names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.cols.iter().map(|(n, _)| n.as_str())
    }

    /// The CSV header line (names joined by commas).
    pub fn header(&self) -> String {
        self.cols
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// One CSV data row (values joined by commas).
    pub fn row(&self) -> String {
        self.cols
            .iter()
            .map(|(_, v)| v.as_str())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Percentile summary of one latency population (nearest-rank, exact —
/// computed from the recorded per-query values, not from histogram
/// buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Population size.
    pub count: usize,
    /// Median.
    pub p50: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// 99.9th percentile.
    pub p999: SimTime,
    /// Arithmetic mean.
    pub mean: SimTime,
    /// Worst observation.
    pub max: SimTime,
}

impl Default for LatencyStats {
    fn default() -> LatencyStats {
        LatencyStats {
            count: 0,
            p50: SimTime::ZERO,
            p99: SimTime::ZERO,
            p999: SimTime::ZERO,
            mean: SimTime::ZERO,
            max: SimTime::ZERO,
        }
    }
}

impl LatencyStats {
    /// Summarize a population of nanosecond observations. Percentiles use
    /// the nearest-rank definition: the smallest observation such that at
    /// least `q` of the population is at or below it.
    pub fn from_ns(mut ns: Vec<u64>) -> LatencyStats {
        if ns.is_empty() {
            return LatencyStats::default();
        }
        ns.sort_unstable();
        let n = ns.len();
        let pick = |q: f64| {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            SimTime::from_nanos(ns[rank - 1])
        };
        let sum: u128 = ns.iter().map(|&v| v as u128).sum();
        LatencyStats {
            count: n,
            p50: pick(0.50),
            p99: pick(0.99),
            p999: pick(0.999),
            mean: SimTime::from_nanos((sum / n as u128) as u64),
            max: SimTime::from_nanos(ns[n - 1]),
        }
    }
}

/// One completed query's full service lifecycle, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// Query index (also its batch index: service runs write per query).
    pub query: usize,
    /// Submitting tenant.
    pub tenant: usize,
    /// Scheduled client submission instant.
    pub arrival: SimTime,
    /// When the master accepted it into the bounded queue.
    pub admitted: SimTime,
    /// When its first fragment was handed to a worker.
    pub dispatched: SimTime,
    /// When the master merged the last fragment's scores and laid out the
    /// output.
    pub merged: SimTime,
    /// When its result bytes were durable on disk (the reply).
    pub replied: SimTime,
    /// Total result bytes.
    pub bytes: u64,
}

impl QueryRecord {
    /// End-to-end latency: submission to durable reply.
    pub fn latency(&self) -> SimTime {
        self.replied.saturating_sub(self.arrival)
    }

    /// Scheduling delay: submission to first dispatch.
    pub fn wait(&self) -> SimTime {
        self.dispatched.saturating_sub(self.arrival)
    }
}

/// What a service-mode run measured: admission accounting and per-query
/// tail latency, riding along inside [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Arrival-process label (`poisson` / `bursty` / `diurnal`).
    pub arrival: &'static str,
    /// Long-run mean offered rate, queries per second.
    pub offered_rate: f64,
    /// Scheduling policy the master used.
    pub policy: SchedPolicy,
    /// Tenant count.
    pub tenants: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Queries the clients submitted.
    pub offered: usize,
    /// Queries accepted into the queue.
    pub admitted: usize,
    /// Queries turned away at a full queue.
    pub shed: usize,
    /// Queries served to a durable reply (every admitted query).
    pub completed: usize,
    /// Highest queue depth observed.
    pub queue_peak: usize,
    /// Indices of shed queries, ascending.
    pub shed_queries: Vec<usize>,
    /// Completed queries with full lifecycle timestamps, by query index.
    pub queries: Vec<QueryRecord>,
    /// End-to-end latency summary over all completed queries.
    pub latency: LatencyStats,
    /// Scheduling-delay summary over all completed queries.
    pub wait: LatencyStats,
    /// Per-tenant end-to-end latency summaries (`tenants` entries).
    pub per_tenant: Vec<LatencyStats>,
}

impl ServiceReport {
    /// Join the master's milestones with the commit log (which knows when
    /// each query's bytes became durable) into the final report.
    pub(crate) fn assemble(
        sp: &ServiceParams,
        log: ServiceLog,
        commits: &CommitLog,
    ) -> ServiceReport {
        let committed: BTreeMap<usize, SimTime> = commits
            .entries()
            .iter()
            .map(|e| (e.batch, e.committed_at))
            .collect();
        let mut queries: Vec<QueryRecord> = log
            .served
            .iter()
            .map(|ev| QueryRecord {
                query: ev.query,
                tenant: ev.tenant,
                arrival: ev.arrival,
                admitted: ev.admitted,
                dispatched: ev.dispatched,
                merged: ev.merged,
                replied: *committed
                    .get(&ev.query)
                    .unwrap_or_else(|| panic!("served query {} never committed", ev.query)),
                bytes: ev.bytes,
            })
            .collect();
        queries.sort_by_key(|r| r.query);
        let mut shed_queries: Vec<usize> = log.shed.iter().map(|s| s.query).collect();
        shed_queries.sort_unstable();

        let latency =
            LatencyStats::from_ns(queries.iter().map(|r| r.latency().as_nanos()).collect());
        let wait = LatencyStats::from_ns(queries.iter().map(|r| r.wait().as_nanos()).collect());
        // Bucket latencies by tenant in one pass rather than rescanning
        // the full query list per tenant; within a bucket the values keep
        // the same query-index order the per-tenant scan produced.
        let mut tenant_lat: Vec<Vec<u64>> = vec![Vec::new(); sp.tenants];
        for r in &queries {
            tenant_lat[r.tenant].push(r.latency().as_nanos());
        }
        let per_tenant = tenant_lat.into_iter().map(LatencyStats::from_ns).collect();

        ServiceReport {
            arrival: sp.arrivals.label(),
            offered_rate: sp.arrivals.mean_rate(),
            policy: sp.policy,
            tenants: sp.tenants,
            queue_capacity: sp.queue_capacity,
            offered: queries.len() + shed_queries.len(),
            admitted: queries.len(),
            shed: shed_queries.len(),
            completed: queries.len(),
            queue_peak: log.queue_peak,
            shed_queries,
            queries,
            latency,
            wait,
            per_tenant,
        }
    }

    /// Total result bytes the completed (non-shed) queries produced.
    pub fn completed_bytes(&self) -> u64 {
        self.queries.iter().map(|r| r.bytes).sum()
    }
}

/// Everything measured in one S3aSim run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy under test.
    pub strategy: Strategy,
    /// Total processes (master + workers).
    pub procs: usize,
    /// Whether the query-sync option was on.
    pub query_sync: bool,
    /// Compute-speed multiplier.
    pub compute_speed: f64,
    /// Overall (virtual) execution time.
    pub overall: SimTime,
    /// The master's phase breakdown.
    pub master: PhaseBreakdown,
    /// Each worker's phase breakdown, in rank order.
    pub workers: Vec<PhaseBreakdown>,
    /// Element-wise mean over workers (what the paper's figures plot).
    pub worker_mean: PhaseBreakdown,
    /// Per-worker activity counters, in rank order.
    pub worker_stats: Vec<WorkerStats>,
    /// Result bytes the workload required.
    pub expected_bytes: u64,
    /// Bytes covered by writes in the output file.
    pub covered_bytes: u64,
    /// Bytes written more than once (must be 0).
    pub overlap_bytes: u64,
    /// Maximal contiguous extents in the output file (must be 1).
    pub extent_count: usize,
    /// Unflushed bytes at exit (must be 0: every write was synced).
    pub dirty_bytes: u64,
    /// File system counters.
    pub fs: FsStats,
    /// MPI counters.
    pub mpi: MpiStats,
    /// Engine counters.
    pub engine: SimStats,
    /// Per-rank phase timeline, when `SimParams::trace` was set.
    pub trace: Option<Trace>,
    /// Request-level observability recording, when `SimParams::observe`
    /// was set (see [`crate::observe`] for the exporters).
    pub obs: Option<ObsReport>,
    /// When each batch of results became durable (resumability analysis).
    pub commits: CommitLog,
    /// What the fault injector did (and what recovery cost), when armed.
    pub faults: Option<FaultReport>,
    /// Race-sanitizer findings, when `SimParams::sanitize` was set. A
    /// clean run carries `Some` with an empty hazard list.
    pub sanitizer: Option<SanitizerReport>,
    /// Service-mode measurements (admission accounting, tail latency),
    /// when the run used [`crate::params::RunMode::Service`].
    pub service: Option<ServiceReport>,
}

impl RunReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        trace: Option<Trace>,
        obs: Option<ObsReport>,
        commits: CommitLog,
        params: &SimParams,
        workload: &Workload,
        overall: SimTime,
        master: PhaseBreakdown,
        workers: Vec<PhaseBreakdown>,
        worker_stats: Vec<WorkerStats>,
        out: &FileHandle,
        fs: &FileSystem,
        world: &World,
        sim: &Sim,
        faults: Option<FaultReport>,
        sanitizer: Option<SanitizerReport>,
        service: Option<ServiceReport>,
    ) -> RunReport {
        let worker_mean = PhaseBreakdown::mean(&workers);
        // A resumed run only owes the bytes above its checkpoint; the
        // durable prefix below it belongs to the interrupted run's file.
        let resumed_base = params
            .resume_from
            .as_ref()
            .map(|r| r.base_offset)
            .unwrap_or(0);
        // A service run only owes the bytes of the queries it admitted;
        // shed queries produce no output by design.
        let expected_bytes = match &service {
            Some(svc) => svc.completed_bytes(),
            None => workload.total_bytes() - resumed_base,
        };
        RunReport {
            strategy: params.strategy,
            procs: params.procs,
            query_sync: params.query_sync,
            compute_speed: params.compute_speed,
            overall,
            master,
            workers,
            worker_mean,
            worker_stats,
            expected_bytes,
            covered_bytes: out.covered_bytes(),
            overlap_bytes: out.overlap_bytes(),
            extent_count: out.extent_count(),
            dirty_bytes: out.dirty_bytes(),
            fs: fs.stats(),
            mpi: world.stats(),
            engine: sim.stats(),
            trace,
            obs,
            commits,
            faults,
            sanitizer,
            service,
        }
    }

    /// Check the output-file invariants: every result byte written exactly
    /// once, contiguously, and flushed.
    pub fn verify(&self) -> Result<(), String> {
        if self.covered_bytes != self.expected_bytes {
            return Err(format!(
                "coverage mismatch: wrote {} of {} expected bytes",
                self.covered_bytes, self.expected_bytes
            ));
        }
        if self.overlap_bytes != 0 {
            return Err(format!(
                "{} bytes written more than once",
                self.overlap_bytes
            ));
        }
        if self.expected_bytes > 0 && self.extent_count != 1 {
            return Err(format!(
                "output file has {} extents; expected one dense extent",
                self.extent_count
            ));
        }
        if self.dirty_bytes != 0 {
            return Err(format!("{} bytes left unflushed", self.dirty_bytes));
        }
        Ok(())
    }

    /// The worker-mean time of one phase, in seconds (figure data).
    pub fn worker_phase_secs(&self, phase: Phase) -> f64 {
        self.worker_mean.get(phase).as_secs_f64()
    }

    /// Render the paper-style phase table (worker process averages).
    pub fn phase_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} procs={} sync={} speed={} overall={:.2}s",
            self.strategy,
            self.procs,
            if self.query_sync { "on" } else { "off" },
            self.compute_speed,
            self.overall.as_secs_f64()
        );
        let _ = writeln!(
            s,
            "  {:<18} {:>12} {:>12}",
            "phase", "worker-mean", "master"
        );
        for p in PHASES {
            let _ = writeln!(
                s,
                "  {:<18} {:>11.3}s {:>11.3}s",
                p.name(),
                self.worker_mean.get(p).as_secs_f64(),
                self.master.get(p).as_secs_f64()
            );
        }
        if let Some(f) = &self.faults {
            let _ = writeln!(s, "  faults: {f}");
        }
        s
    }

    /// The typed column set of the batch report: strategy identity, the
    /// overall time, the worker-mean phase breakdown, and I/O counters.
    /// Both [`RunReport::csv_header`] and [`RunReport::csv_row`] derive
    /// from this one definition.
    pub fn columns(&self) -> Columns {
        let mut cols = Columns::new();
        cols.push("strategy", self.strategy.label())
            .push("procs", self.procs)
            .push("sync", if self.query_sync { "sync" } else { "no-sync" })
            .push("compute_speed", self.compute_speed)
            .push_secs("overall_s", self.overall);
        for p in PHASES {
            cols.push_secs(
                format!("{}_s", p.name().to_lowercase().replace([' ', '/'], "_")),
                self.worker_mean.get(p),
            );
        }
        cols.push("bytes", self.covered_bytes)
            .push("fs_requests", self.fs.requests);
        cols
    }

    /// One CSV row of the full report (see [`RunReport::csv_header`]).
    pub fn csv_row(&self) -> String {
        self.columns().row()
    }

    /// Column names for [`RunReport::csv_row`].
    pub fn csv_header(&self) -> String {
        self.columns().header()
    }

    /// The typed column set for service-mode tables: run identity plus
    /// the admission accounting and latency percentiles. `None` for batch
    /// runs.
    pub fn service_columns(&self) -> Option<Columns> {
        let svc = self.service.as_ref()?;
        let mut cols = Columns::new();
        cols.push("strategy", self.strategy.label())
            .push("policy", svc.policy.label())
            .push("arrival", svc.arrival)
            .push("rate_qps", svc.offered_rate)
            .push("procs", self.procs)
            .push("offered", svc.offered)
            .push("admitted", svc.admitted)
            .push("shed", svc.shed)
            .push("completed", svc.completed)
            .push("queue_peak", svc.queue_peak)
            .push_secs("latency_p50_s", svc.latency.p50)
            .push_secs("latency_p99_s", svc.latency.p99)
            .push_secs("latency_p999_s", svc.latency.p999)
            .push_secs("latency_mean_s", svc.latency.mean)
            .push_secs("latency_max_s", svc.latency.max)
            .push_secs("wait_p50_s", svc.wait.p50)
            .push_secs("wait_p99_s", svc.wait.p99);
        Some(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_keep_names_and_values_paired() {
        let mut c = Columns::new();
        c.push("a", 1)
            .push("b", "x")
            .push_secs("t_s", SimTime::from_millis(1500));
        assert_eq!(c.len(), 3);
        assert_eq!(c.header(), "a,b,t_s");
        assert_eq!(c.row(), "1,x,1.500000");
        assert_eq!(c.names().collect::<Vec<_>>(), vec!["a", "b", "t_s"]);
        assert!(Columns::new().is_empty());
    }

    #[test]
    fn latency_stats_nearest_rank() {
        // 1..=1000 ns: nearest-rank percentiles are exact values.
        let s = LatencyStats::from_ns((1..=1000).collect());
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, SimTime::from_nanos(500));
        assert_eq!(s.p99, SimTime::from_nanos(990));
        assert_eq!(s.p999, SimTime::from_nanos(999));
        assert_eq!(s.max, SimTime::from_nanos(1000));
        assert_eq!(s.mean, SimTime::from_nanos(500)); // 500.5 floored

        // A single observation is every percentile.
        let one = LatencyStats::from_ns(vec![7]);
        assert_eq!(one.p50, SimTime::from_nanos(7));
        assert_eq!(one.p999, SimTime::from_nanos(7));
        assert_eq!(one.max, SimTime::from_nanos(7));

        assert_eq!(LatencyStats::from_ns(Vec::new()), LatencyStats::default());
    }

    #[test]
    fn query_record_latency_and_wait() {
        let r = QueryRecord {
            query: 3,
            tenant: 1,
            arrival: SimTime::from_millis(10),
            admitted: SimTime::from_millis(12),
            dispatched: SimTime::from_millis(15),
            merged: SimTime::from_millis(40),
            replied: SimTime::from_millis(45),
            bytes: 64,
        };
        assert_eq!(r.latency(), SimTime::from_millis(35));
        assert_eq!(r.wait(), SimTime::from_millis(5));
    }
}
