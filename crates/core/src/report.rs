//! Run reports: per-phase breakdowns, verification, and text rendering.

use s3a_des::{Sim, SimStats, SimTime};
use s3a_faults::FaultReport;
use s3a_mpi::{MpiStats, World};
use s3a_obs::ObsReport;
use s3a_pvfs::{FileHandle, FileSystem, FsStats, SanitizerReport};
use s3a_workload::Workload;

use crate::params::{SimParams, Strategy};
use crate::phase::{Phase, PhaseBreakdown, PHASES};
use crate::resume::CommitLog;
use crate::trace::Trace;
use crate::worker::WorkerStats;

/// Everything measured in one S3aSim run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy under test.
    pub strategy: Strategy,
    /// Total processes (master + workers).
    pub procs: usize,
    /// Whether the query-sync option was on.
    pub query_sync: bool,
    /// Compute-speed multiplier.
    pub compute_speed: f64,
    /// Overall (virtual) execution time.
    pub overall: SimTime,
    /// The master's phase breakdown.
    pub master: PhaseBreakdown,
    /// Each worker's phase breakdown, in rank order.
    pub workers: Vec<PhaseBreakdown>,
    /// Element-wise mean over workers (what the paper's figures plot).
    pub worker_mean: PhaseBreakdown,
    /// Per-worker activity counters, in rank order.
    pub worker_stats: Vec<WorkerStats>,
    /// Result bytes the workload required.
    pub expected_bytes: u64,
    /// Bytes covered by writes in the output file.
    pub covered_bytes: u64,
    /// Bytes written more than once (must be 0).
    pub overlap_bytes: u64,
    /// Maximal contiguous extents in the output file (must be 1).
    pub extent_count: usize,
    /// Unflushed bytes at exit (must be 0: every write was synced).
    pub dirty_bytes: u64,
    /// File system counters.
    pub fs: FsStats,
    /// MPI counters.
    pub mpi: MpiStats,
    /// Engine counters.
    pub engine: SimStats,
    /// Per-rank phase timeline, when `SimParams::trace` was set.
    pub trace: Option<Trace>,
    /// Request-level observability recording, when `SimParams::observe`
    /// was set (see [`crate::observe`] for the exporters).
    pub obs: Option<ObsReport>,
    /// When each batch of results became durable (resumability analysis).
    pub commits: CommitLog,
    /// What the fault injector did (and what recovery cost), when armed.
    pub faults: Option<FaultReport>,
    /// Race-sanitizer findings, when `SimParams::sanitize` was set. A
    /// clean run carries `Some` with an empty hazard list.
    pub sanitizer: Option<SanitizerReport>,
}

impl RunReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        trace: Option<Trace>,
        obs: Option<ObsReport>,
        commits: CommitLog,
        params: &SimParams,
        workload: &Workload,
        overall: SimTime,
        master: PhaseBreakdown,
        workers: Vec<PhaseBreakdown>,
        worker_stats: Vec<WorkerStats>,
        out: &FileHandle,
        fs: &FileSystem,
        world: &World,
        sim: &Sim,
        faults: Option<FaultReport>,
        sanitizer: Option<SanitizerReport>,
    ) -> RunReport {
        let worker_mean = PhaseBreakdown::mean(&workers);
        // A resumed run only owes the bytes above its checkpoint; the
        // durable prefix below it belongs to the interrupted run's file.
        let resumed_base = params
            .resume_from
            .as_ref()
            .map(|r| r.base_offset)
            .unwrap_or(0);
        RunReport {
            strategy: params.strategy,
            procs: params.procs,
            query_sync: params.query_sync,
            compute_speed: params.compute_speed,
            overall,
            master,
            workers,
            worker_mean,
            worker_stats,
            expected_bytes: workload.total_bytes() - resumed_base,
            covered_bytes: out.covered_bytes(),
            overlap_bytes: out.overlap_bytes(),
            extent_count: out.extent_count(),
            dirty_bytes: out.dirty_bytes(),
            fs: fs.stats(),
            mpi: world.stats(),
            engine: sim.stats(),
            trace,
            obs,
            commits,
            faults,
            sanitizer,
        }
    }

    /// Check the output-file invariants: every result byte written exactly
    /// once, contiguously, and flushed.
    pub fn verify(&self) -> Result<(), String> {
        if self.covered_bytes != self.expected_bytes {
            return Err(format!(
                "coverage mismatch: wrote {} of {} expected bytes",
                self.covered_bytes, self.expected_bytes
            ));
        }
        if self.overlap_bytes != 0 {
            return Err(format!(
                "{} bytes written more than once",
                self.overlap_bytes
            ));
        }
        if self.expected_bytes > 0 && self.extent_count != 1 {
            return Err(format!(
                "output file has {} extents; expected one dense extent",
                self.extent_count
            ));
        }
        if self.dirty_bytes != 0 {
            return Err(format!("{} bytes left unflushed", self.dirty_bytes));
        }
        Ok(())
    }

    /// The worker-mean time of one phase, in seconds (figure data).
    pub fn worker_phase_secs(&self, phase: Phase) -> f64 {
        self.worker_mean.get(phase).as_secs_f64()
    }

    /// Render the paper-style phase table (worker process averages).
    pub fn phase_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} procs={} sync={} speed={} overall={:.2}s",
            self.strategy,
            self.procs,
            if self.query_sync { "on" } else { "off" },
            self.compute_speed,
            self.overall.as_secs_f64()
        );
        let _ = writeln!(
            s,
            "  {:<18} {:>12} {:>12}",
            "phase", "worker-mean", "master"
        );
        for p in PHASES {
            let _ = writeln!(
                s,
                "  {:<18} {:>11.3}s {:>11.3}s",
                p.name(),
                self.worker_mean.get(p).as_secs_f64(),
                self.master.get(p).as_secs_f64()
            );
        }
        if let Some(f) = &self.faults {
            let _ = writeln!(s, "  faults: {f}");
        }
        s
    }

    /// One CSV row of the full report (see [`RunReport::csv_header`]).
    pub fn csv_row(&self) -> String {
        let mut cols = vec![
            self.strategy.label().to_string(),
            self.procs.to_string(),
            if self.query_sync { "sync" } else { "no-sync" }.to_string(),
            format!("{}", self.compute_speed),
            format!("{:.6}", self.overall.as_secs_f64()),
        ];
        for p in PHASES {
            cols.push(format!("{:.6}", self.worker_mean.get(p).as_secs_f64()));
        }
        cols.push(self.covered_bytes.to_string());
        cols.push(self.fs.requests.to_string());
        cols.join(",")
    }

    /// Column names for [`RunReport::csv_row`].
    pub fn csv_header() -> String {
        let mut cols = vec![
            "strategy".to_string(),
            "procs".to_string(),
            "sync".to_string(),
            "compute_speed".to_string(),
            "overall_s".to_string(),
        ];
        for p in PHASES {
            cols.push(format!(
                "{}_s",
                p.name().to_lowercase().replace([' ', '/'], "_")
            ));
        }
        cols.push("bytes".to_string());
        cols.push("fs_requests".to_string());
        cols.join(",")
    }
}
