//! Service-mode bookkeeping shared between the master loop and the
//! runner.
//!
//! The master records what it alone can see — when each query arrived,
//! was admitted (or shed), first dispatched, and fully merged — plus the
//! peak admission-queue depth. The runner later joins these milestones
//! with the commit log (which knows when each query's bytes became
//! durable) to produce the [`crate::report::ServiceReport`] with true
//! end-to-end latencies.

use std::cell::RefCell;
use std::rc::Rc;

use s3a_des::SimTime;

/// Master-side milestones of one query that completed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ServedEvent {
    /// Query index (also the batch index: service runs write per query).
    pub query: usize,
    /// Submitting tenant.
    pub tenant: usize,
    /// Scheduled client submission instant.
    pub arrival: SimTime,
    /// When the master saw the arrival and accepted it into the queue.
    pub admitted: SimTime,
    /// When the first fragment of the query was handed to a worker.
    pub dispatched: SimTime,
    /// When the last fragment's scores were merged and the output laid
    /// out (the reply is durable once the commit log closes the batch).
    pub merged: SimTime,
    /// Total result bytes of the query.
    pub bytes: u64,
}

/// One rejected arrival: the bounded queue was full when the master
/// processed the submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShedEvent {
    /// Query index that was turned away.
    pub query: usize,
    /// Submitting tenant.
    pub tenant: usize,
    /// Scheduled client submission instant.
    pub arrival: SimTime,
}

/// Everything the master recorded over one service run.
#[derive(Debug, Default)]
pub(crate) struct ServiceLog {
    /// Completed queries, in completion (merge) order.
    pub served: Vec<ServedEvent>,
    /// Rejected arrivals, in arrival order.
    pub shed: Vec<ShedEvent>,
    /// Highest admission-queue depth observed (admitted, not yet
    /// dispatched).
    pub queue_peak: usize,
}

/// Shared handle the runner gives the master so the recorded log
/// survives the master task's exit.
#[derive(Clone, Default)]
pub(crate) struct ServiceTracker {
    inner: Rc<RefCell<ServiceLog>>,
}

impl ServiceTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn serve(&self, ev: ServedEvent) {
        self.inner.borrow_mut().served.push(ev);
    }

    pub fn shed(&self, ev: ShedEvent) {
        self.inner.borrow_mut().shed.push(ev);
    }

    /// Report the current queue depth; the peak is kept.
    pub fn queue_depth(&self, depth: usize) {
        let mut log = self.inner.borrow_mut();
        log.queue_peak = log.queue_peak.max(depth);
    }

    /// Extract the log once the simulation has finished.
    pub fn finish(self) -> ServiceLog {
        Rc::try_unwrap(self.inner)
            .map(RefCell::into_inner)
            .unwrap_or_else(|rc| {
                let b = rc.borrow();
                ServiceLog {
                    served: b.served.clone(),
                    shed: b.shed.clone(),
                    queue_peak: b.queue_peak,
                }
            })
    }
}

impl std::fmt::Debug for ServiceTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceTracker").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates_and_keeps_peak() {
        let tr = ServiceTracker::new();
        tr.queue_depth(2);
        tr.queue_depth(5);
        tr.queue_depth(1);
        tr.serve(ServedEvent {
            query: 0,
            tenant: 1,
            arrival: SimTime::from_millis(1),
            admitted: SimTime::from_millis(2),
            dispatched: SimTime::from_millis(3),
            merged: SimTime::from_millis(9),
            bytes: 128,
        });
        tr.shed(ShedEvent {
            query: 1,
            tenant: 0,
            arrival: SimTime::from_millis(2),
        });
        let log = tr.finish();
        assert_eq!(log.served.len(), 1);
        assert_eq!(log.shed.len(), 1);
        assert_eq!(log.queue_peak, 5);
        assert_eq!(log.served[0].bytes, 128);
    }
}
