//! Deliberate bug re-introduction knobs for validating the model
//! checker. Each knob reverts exactly one shipped bugfix (thread-local,
//! default off) so `s3a-mc`'s acceptance tests can demonstrate that
//! schedule exploration rediscovers the bug and produces a replayable
//! counterexample — against the *real* protocol code, not a mock.
//!
//! Never set outside tests: the knobs exist to make runs wrong.

use std::cell::Cell;

thread_local! {
    static STALE_OWNERSHIP: Cell<bool> = const { Cell::new(false) };
}

/// Re-introduce the PR 10 chained-failover ownership bug: on a master
/// death, only the successor updates its `owner_of` map, so after a
/// *second* crash the next successor consults a stale map and orphans
/// the batches adopted in the first takeover (lost batches or a hung
/// quiesce). Requires ≥ 3 masters and 2 chained crashes to bite.
#[doc(hidden)]
pub fn set_stale_ownership_bug(on: bool) {
    STALE_OWNERSHIP.with(|c| c.set(on));
}

/// Current state of the stale-ownership knob (read at the failover site).
#[doc(hidden)]
pub fn stale_ownership_bug() -> bool {
    STALE_OWNERSHIP.with(Cell::get)
}

/// RAII guard: enables the stale-ownership bug for a scope, restoring
/// `off` on drop (including unwind, so a failing test cannot leak the
/// bug into the next test on the same thread).
#[doc(hidden)]
#[derive(Debug)]
pub struct StaleOwnershipGuard(());

impl StaleOwnershipGuard {
    /// Enable the bug until the guard drops.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        set_stale_ownership_bug(true);
        StaleOwnershipGuard(())
    }
}

impl Drop for StaleOwnershipGuard {
    fn drop(&mut self) {
        set_stale_ownership_bug(false);
    }
}
