//! The heartbeat/silence failure detector shared by every detector in
//! the system: the master's worker detector (`master.rs`) and the
//! coordinator's standby-master detector (`shard.rs`). Both previously
//! carried their own `last_seen` table around the one shared comparison;
//! the table now lives here too, so the strictly-exceeds boundary rule
//! (the PR 10 fix, DESIGN.md §7) and the refresh bookkeeping exist in
//! exactly one place.

use s3a_des::SimTime;

/// The failure detector's one comparison: a peer is declared dead only
/// when its silence *strictly exceeds* the detection timeout. A
/// heartbeat that lands exactly at `last_seen + timeout` — e.g. after a
/// virtual-clock stall aligns the scan with the heartbeat tick — is
/// still proof of life, regardless of timer poll order. `saturating_sub`
/// keeps a refresh that raced ahead of the scan (`last_seen > now`)
/// from underflowing into a false positive.
pub(crate) fn silence_exceeds(now: SimTime, last_seen: SimTime, timeout: SimTime) -> bool {
    now.saturating_sub(last_seen) > timeout
}

/// Last-heard times for a set of ranks plus the detection rule bound to
/// one timeout. Indexing mirrors the caller's rank space (entries a
/// caller never refreshes, like its own rank, are simply never scanned).
#[derive(Debug, Clone)]
pub(crate) struct Liveness {
    last_seen: Vec<SimTime>,
    timeout: SimTime,
}

impl Liveness {
    /// A table of `n` ranks, all considered heard-from at `start`.
    pub(crate) fn new(n: usize, start: SimTime, timeout: SimTime) -> Self {
        Liveness {
            last_seen: vec![start; n],
            timeout,
        }
    }

    /// Record proof of life from `rank` at virtual time `now`.
    pub(crate) fn refresh(&mut self, rank: usize, now: SimTime) {
        self.last_seen[rank] = now;
    }

    /// True when `rank`'s silence strictly exceeds the timeout.
    pub(crate) fn silent(&self, rank: usize, now: SimTime) -> bool {
        silence_exceeds(now, self.last_seen[rank], self.timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the detection-boundary semantics: a heartbeat that lands
    /// exactly `detection_timeout` ago is still proof of life; only
    /// strictly longer silence is death. Also pins the saturating
    /// behaviour when a refresh races ahead of the scan.
    #[test]
    fn silence_boundary_is_exclusive() {
        let t0 = SimTime::from_secs(10);
        let timeout = SimTime::from_secs(3);
        assert!(!silence_exceeds(t0 + timeout, t0, timeout));
        assert!(silence_exceeds(
            t0 + timeout + SimTime::from_nanos(1),
            t0,
            timeout
        ));
        assert!(!silence_exceeds(t0, t0, timeout));
        // last_seen ahead of now (refresh raced the scan): never dead.
        assert!(!silence_exceeds(t0, t0 + SimTime::from_secs(100), timeout));
        assert!(!silence_exceeds(
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::ZERO
        ));
        assert!(silence_exceeds(
            SimTime::from_nanos(1),
            SimTime::ZERO,
            SimTime::ZERO
        ));
    }

    /// The table wrapper must apply the same boundary rule per rank.
    #[test]
    fn liveness_table_applies_the_boundary_per_rank() {
        let t0 = SimTime::from_secs(1);
        let timeout = SimTime::from_millis(400);
        let lv = Liveness::new(3, t0, timeout);
        let at_boundary = t0 + timeout;
        let past_boundary = at_boundary + SimTime::from_nanos(1);
        for r in 0..3 {
            assert!(!lv.silent(r, at_boundary));
            assert!(lv.silent(r, past_boundary));
        }
    }
}
