//! Execution tracing — the moral equivalent of the paper's MPE +
//! Jumpshot integration (§3: "integration with the multi-processing
//! environment (MPE) and Jumpshot for easy debugging").
//!
//! When enabled, every phase interval of every rank is recorded as a
//! `(rank, phase, start, end)` event. The trace can be rendered as a
//! text Gantt chart for quick inspection or exported as CSV for external
//! viewers.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use s3a_des::SimTime;

use crate::phase::{Phase, PHASES};

/// One traced interval: `rank` spent `[start, end)` in `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// World rank (0 = master).
    pub rank: usize,
    /// The phase the time was attributed to.
    pub phase: Phase,
    /// Interval start (virtual time).
    pub start: SimTime,
    /// Interval end (virtual time).
    pub end: SimTime,
}

/// A recording of one run's phase intervals across all ranks.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Shared handle used by the phase timers to append events.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Rc<RefCell<Trace>>>,
}

impl TraceSink {
    /// A sink that records events.
    pub fn recording() -> Self {
        TraceSink {
            inner: Some(Rc::new(RefCell::new(Trace::default()))),
        }
    }

    /// A sink that drops everything (tracing disabled).
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// Is this sink recording?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one interval (no-op when disabled or empty).
    pub fn record(&self, rank: usize, phase: Phase, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        if let Some(t) = &self.inner {
            t.borrow_mut().events.push(TraceEvent {
                rank,
                phase,
                start,
                end,
            });
        }
    }

    /// Extract the recorded trace (events sorted by start time, then rank).
    pub fn finish(self) -> Option<Trace> {
        self.inner.map(|rc| {
            let mut t = Rc::try_unwrap(rc)
                .map(RefCell::into_inner)
                .unwrap_or_else(|rc| rc.borrow().clone());
            t.events.sort_by_key(|e| (e.start, e.rank, e.end));
            t
        })
    }
}

impl Trace {
    /// All events, sorted by `(start, rank)`.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one rank, in time order.
    pub fn rank_events(&self, rank: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// Total time `rank` spent in `phase` according to the trace.
    pub fn rank_phase_total(&self, rank: usize, phase: Phase) -> SimTime {
        self.rank_events(rank)
            .filter(|e| e.phase == phase)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// CSV export: `rank,phase,start_s,end_s` (one interval per line).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("rank,phase,start_s,end_s\n");
        for e in &self.events {
            let _ = writeln!(
                s,
                "{},{},{:.9},{:.9}",
                e.rank,
                e.phase.name().replace(' ', "_"),
                e.start.as_secs_f64(),
                e.end.as_secs_f64()
            );
        }
        s
    }

    /// Render a Jumpshot-style text Gantt chart: one row per rank,
    /// `width` character cells across `[0, horizon)`, the dominant phase
    /// of each cell shown by its letter (the legend is printed below).
    pub fn gantt(&self, ranks: usize, width: usize) -> String {
        assert!(width > 0, "need at least one column");
        let horizon = self
            .events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        if horizon.is_zero() {
            return String::from("(empty trace)\n");
        }
        let cell = horizon.as_nanos().div_ceil(width as u64).max(1);
        let letter = |p: Phase| match p {
            Phase::Setup => 'P',
            Phase::DataDistribution => 'd',
            Phase::Compute => 'C',
            Phase::MergeResults => 'm',
            Phase::GatherResults => 'g',
            Phase::Io => 'W',
            Phase::Sync => 's',
            Phase::Recovery => 'R',
            Phase::Other => '.',
        };

        let mut out = String::new();
        for rank in 0..ranks {
            // Dominant phase per cell.
            let mut cells: Vec<[u64; 9]> = vec![[0; 9]; width];
            for e in self.rank_events(rank) {
                let first = (e.start.as_nanos() / cell) as usize;
                let last = (((e.end.as_nanos()).saturating_sub(1)) / cell) as usize;
                let last = last.min(width - 1);
                for (c, counts) in cells[first..=last].iter_mut().enumerate() {
                    let cs = (first + c) as u64 * cell;
                    let ce = cs + cell;
                    let lo = e.start.as_nanos().max(cs);
                    let hi = e.end.as_nanos().min(ce);
                    counts[e.phase.index()] += hi.saturating_sub(lo);
                }
            }
            let _ = write!(
                out,
                "{:>5} |",
                if rank == 0 {
                    "mstr".to_string()
                } else {
                    format!("w{rank}")
                }
            );
            for c in &cells {
                let total: u64 = c.iter().sum();
                if total == 0 {
                    out.push(' ');
                } else {
                    let best = PHASES
                        .iter()
                        .max_by_key(|p| c[p.index()])
                        .expect("phases nonempty");
                    out.push(letter(*best));
                }
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "       0{h:>width$.2}s", // right-align horizon under the chart
            h = horizon.as_secs_f64(),
        );
        let _ = writeln!(
            out,
            "legend: P=setup d=data-dist C=compute m=merge g=gather W=i/o s=sync .=other"
        );
        out
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        sink.record(0, Phase::Compute, t(0), t(1));
        assert!(!sink.is_recording());
        assert!(sink.finish().is_none());
    }

    #[test]
    fn recording_sink_collects_sorted_events() {
        let sink = TraceSink::recording();
        sink.record(1, Phase::Io, t(5), t(7));
        sink.record(0, Phase::Compute, t(1), t(4));
        sink.record(1, Phase::Compute, t(0), t(3));
        let trace = sink.finish().expect("recording");
        let starts: Vec<u64> = trace.events().iter().map(|e| e.start.as_nanos()).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(trace.events().len(), 3);
    }

    #[test]
    fn zero_length_intervals_dropped() {
        let sink = TraceSink::recording();
        sink.record(0, Phase::Sync, t(2), t(2));
        assert_eq!(sink.finish().expect("recording").events().len(), 0);
    }

    #[test]
    fn phase_totals_sum_intervals() {
        let sink = TraceSink::recording();
        sink.record(2, Phase::Io, t(0), t(2));
        sink.record(2, Phase::Io, t(5), t(6));
        sink.record(2, Phase::Compute, t(2), t(5));
        let trace = sink.finish().expect("recording");
        assert_eq!(trace.rank_phase_total(2, Phase::Io), t(3));
        assert_eq!(trace.rank_phase_total(2, Phase::Compute), t(3));
        assert_eq!(trace.rank_phase_total(0, Phase::Io), SimTime::ZERO);
    }

    #[test]
    fn csv_has_one_line_per_event() {
        let sink = TraceSink::recording();
        sink.record(0, Phase::DataDistribution, t(0), t(1));
        sink.record(1, Phase::Io, t(1), t(2));
        let csv = sink.finish().expect("recording").to_csv();
        assert_eq!(csv.lines().count(), 3); // header + 2
        assert!(csv.contains("Data_Distribution"));
    }

    #[test]
    fn gantt_renders_dominant_phases() {
        let sink = TraceSink::recording();
        sink.record(0, Phase::Compute, t(0), t(8));
        sink.record(0, Phase::Io, t(8), t(10));
        sink.record(1, Phase::Io, t(0), t(10));
        let trace = sink.finish().expect("recording");
        let chart = trace.gantt(2, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("CCCCCCCCWW"), "master row: {}", lines[0]);
        assert!(lines[1].contains("WWWWWWWWWW"), "worker row: {}", lines[1]);
        assert!(chart.contains("legend"));
    }

    #[test]
    fn empty_trace_gantt() {
        let sink = TraceSink::recording();
        let trace = sink.finish().expect("recording");
        assert_eq!(trace.gantt(3, 20), "(empty trace)\n");
    }
}
