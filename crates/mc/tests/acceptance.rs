//! Acceptance tests for the model checker itself:
//!
//! * quick mode explores ≥ 500 distinct schedules of the 2-master ×
//!   8-worker failover scenario with every oracle passing, and
//! * with the PR 10 stale-ownership failover bug deliberately
//!   re-introduced (the `s3asim::chaos` knob), the checker catches it and
//!   produces a minimized counterexample that replays deterministically.

use s3a_mc::{
    check_oracles, explore, parse_json, run_schedule, Counterexample, McConfig, Scenario,
};
use s3asim::Strategy;

#[test]
fn quick_mode_explores_500_distinct_failover_schedules_cleanly() {
    let scenario = Scenario::failover(Strategy::Mw, 2, 8);
    let mut cfg = McConfig::quick();
    cfg.target_distinct = Some(500);
    let report = explore(&scenario, &cfg);
    assert!(
        report.distinct >= 500,
        "only {} distinct schedules in {} runs",
        report.distinct,
        report.runs
    );
    assert!(
        report.counterexamples.is_empty(),
        "unexpected violation: {}",
        report.counterexamples[0].violation
    );
    assert!(report.decision_points > 0, "no schedule freedom observed");

    // The scenario must actually exercise failover: the canonical run
    // crashes a master and a standby takes over.
    let canonical = run_schedule(&scenario, &scenario.fault_params(), &[], cfg.max_steps);
    let run = canonical.result.expect("canonical failover run succeeds");
    let faults = run.faults.expect("fault report present");
    assert!(faults.master_crashes >= 1, "no master crashed");
    assert!(faults.shard_takeovers >= 1, "no standby took over");
}

#[test]
fn exploration_also_covers_a_collective_strategy() {
    let scenario = Scenario::failover(Strategy::WwList, 2, 8);
    let mut cfg = McConfig::quick();
    cfg.max_runs = 80;
    let report = explore(&scenario, &cfg);
    assert!(report.distinct >= 50, "only {} distinct", report.distinct);
    assert!(
        report.counterexamples.is_empty(),
        "unexpected violation: {}",
        report.counterexamples[0].violation
    );
}

#[test]
fn reintroduced_stale_ownership_bug_is_caught_minimized_and_replayed() {
    let mut scenario = Scenario::chained_failover(Strategy::Mw);
    scenario.chaos_stale_ownership = true;
    let report = explore(&scenario, &McConfig::quick());
    let cx = report
        .counterexamples
        .first()
        .expect("the chained-failover bug must be caught");
    assert!(
        cx.violation.contains("extent exactness") || cx.violation.contains("exactly-once"),
        "unexpected violation class: {}",
        cx.violation
    );
    // Greedy minimization cannot leave a removable deviation behind; the
    // chained-failover bug fires on the canonical schedule, so the
    // minimal plan is empty.
    assert!(
        cx.choices.is_empty(),
        "minimization left deviations: {:?}",
        cx.choices
    );

    // The counterexample file is self-contained: round-trip and replay.
    let text = cx.to_json().pretty();
    let parsed = Counterexample::from_json(&parse_json(&text).expect("valid JSON"))
        .expect("counterexample parses back");
    assert_eq!(parsed.scenario, cx.scenario);
    assert_eq!(parsed.choices, cx.choices);
    assert_eq!(parsed.crashes, cx.crashes);
    let reproduced = parsed.replay(2_000_000).expect("violation reproduces");
    assert_eq!(reproduced, cx.violation, "replay is deterministic");
}

#[test]
fn same_scenario_without_chaos_passes_every_oracle() {
    let scenario = Scenario::chained_failover(Strategy::Mw);
    assert!(!scenario.chaos_stale_ownership);
    let run = run_schedule(&scenario, &scenario.fault_params(), &[], 2_000_000);
    check_oracles(&scenario, &run, None).expect("fixed protocol survives chained failover");
}
