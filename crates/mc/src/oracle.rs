//! Invariant oracles checked after every explored run. A schedule is a
//! *violation* when any oracle rejects it; the canonical schedule's
//! observable output is the spec the others are held to.
//!
//! The oracles, in check order:
//!
//! 1. **Termination** — the run neither deadlocks nor exhausts the step
//!    budget (a hung quiesce shows up here).
//! 2. **Extent exactness** — `RunReport::verify`'s byte accounting:
//!    every expected byte written exactly once, one dense extent,
//!    nothing unflushed. (`try_run` folds this into its error path.)
//! 3. **Exactly-once ledger** — the commit log closes every expected
//!    batch exactly once: no lost batches after ≤ 2 chained master
//!    crashes, no double credit.
//! 4. **Sanitizer cleanliness** — `SimSanitizer` saw no unlocked
//!    overlapping writes, foreign unflushed reads, or partial
//!    collectives.
//! 5. **Output equality** — the batch extents (batch, queries, bytes,
//!    base) equal the canonical run's. Write *timing* and writer
//!    identity legitimately vary across schedules; the bytes on disk
//!    must not. File content itself is not simulated, so the extent map
//!    is the strongest byte-equality statement available.

use s3asim::{RunReport, SimError};

use crate::explore::{RunError, RunOutcome};
use crate::scenario::Scenario;

/// The canonical run's observable output: one `(batch, queries, bytes,
/// base)` row per commit, sorted by batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Sorted extent rows the explored runs must reproduce.
    pub commits: Vec<(usize, usize, u64, u64)>,
}

/// Extract the schedule-independent commit projection from a report.
pub fn commit_projection(report: &RunReport) -> Vec<(usize, usize, u64, u64)> {
    let mut rows: Vec<(usize, usize, u64, u64)> = report
        .commits
        .entries()
        .iter()
        .map(|e| (e.batch, e.queries, e.bytes, e.base))
        .collect();
    rows.sort_unstable();
    rows
}

/// Check every oracle. `baseline` is `None` only while establishing the
/// canonical run itself (oracle 5 is then vacuous).
pub fn check(
    scenario: &Scenario,
    outcome: &RunOutcome,
    baseline: Option<&Baseline>,
) -> Result<(), String> {
    let report = match &outcome.result {
        Err(RunError::Panic(msg)) => {
            return Err(format!("invariant panic: {msg}"));
        }
        Err(RunError::Sim(SimError::Deadlock(d))) if outcome.exhausted => {
            let _ = d;
            return Err(
                "termination: schedule step budget exhausted (livelock or lost shutdown)"
                    .to_string(),
            );
        }
        Err(RunError::Sim(SimError::Deadlock(d))) => {
            return Err(format!("termination: deadlock — {d}"));
        }
        Err(RunError::Sim(SimError::Verification(e))) => {
            return Err(format!("extent exactness: {e}"));
        }
        Err(RunError::Sim(SimError::Io(e))) => {
            return Err(format!("io failure: {e}"));
        }
        Err(RunError::Sim(SimError::InvalidParams(e))) => {
            return Err(format!("invalid scenario parameters: {e}"));
        }
        Ok(report) => report,
    };

    // Exactly-once ledger.
    let mut batches: Vec<usize> = report.commits.entries().iter().map(|e| e.batch).collect();
    batches.sort_unstable();
    if let Some(w) = batches.windows(2).find(|w| w[0] == w[1]) {
        return Err(format!("exactly-once: batch {} committed twice", w[0]));
    }
    let expected: Vec<usize> = (0..scenario.expected_batches()).collect();
    if batches != expected {
        return Err(format!(
            "exactly-once: ledger closed batches {batches:?}, expected {expected:?}"
        ));
    }

    // Sanitizer cleanliness (present when the scenario armed it).
    if let Some(s) = &report.sanitizer {
        if !s.is_clean() {
            return Err(format!("sanitizer: {} hazard(s) flagged", s.hazards.len()));
        }
    }

    // Output equality against the canonical run.
    if let Some(base) = baseline {
        let rows = commit_projection(report);
        if rows != base.commits {
            return Err(format!(
                "output equality: extents {rows:?} differ from canonical {:?}",
                base.commits
            ));
        }
    }
    Ok(())
}
