//! The exploration policy: a [`SchedulePolicy`] that replays a partial
//! *plan* of deviations from the canonical schedule and records what it
//! saw, so the explorer can both steer a run and learn where the next
//! runs could deviate.
//!
//! Decision points are numbered in execution order, counting only the
//! points that actually offer a choice (two or more candidates) — the
//! numbering every plan and counterexample refers to. At decision `i`
//! the policy answers `plan[i]` if the plan pins it, else `0` (the
//! canonical choice), so a plan is a *sparse diff* against the canonical
//! schedule and the empty plan reproduces it exactly.

use std::collections::BTreeMap;

use s3a_des::policy::{Candidate, SchedulePolicy};
use s3a_des::SimTime;

/// Decisions recorded per run before the trace stops growing. Bounds
/// counterexample size and frontier fan-out; deviations beyond the cap
/// are simply not explored (the cap is far past the interesting window —
/// protocol races resolve within a few thousand decisions).
pub const TRACE_CAP: usize = 4096;

/// A planned/observed deviation: `(decision index, candidate index)`.
pub type Choice = (u64, u32);

/// The replay-and-record policy driving one explored run.
#[derive(Debug)]
pub struct ChoicePolicy {
    plan: BTreeMap<u64, u32>,
    next_decision: u64,
    /// `(decision index, candidate count)` for every real decision point
    /// observed, up to [`TRACE_CAP`] — the explorer's deviation menu.
    trace: Vec<(u64, u32)>,
    /// Running hash over `(virtual time, chosen task name)` per step: the
    /// partial-order-reduction-lite state signature. Two runs with equal
    /// signatures executed the same work in the same order.
    signature: u64,
    steps: u64,
    max_steps: u64,
    exhausted: bool,
}

impl ChoicePolicy {
    /// A policy that deviates at exactly the planned points and aborts
    /// (as a synthetic deadlock) after `max_steps` selection steps.
    pub fn new(plan: &[Choice], max_steps: u64) -> Self {
        ChoicePolicy {
            plan: plan.iter().map(|&(i, c)| (i, c)).collect(),
            next_decision: 0,
            trace: Vec::new(),
            signature: 0xcbf2_9ce4_8422_2325,
            steps: 0,
            max_steps,
            exhausted: false,
        }
    }

    /// The decision points this run exposed (capped at [`TRACE_CAP`]).
    pub fn trace(&self) -> &[(u64, u32)] {
        &self.trace
    }

    /// The run's schedule signature (see [`ChoicePolicy::signature`]).
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Number of real (multi-candidate) decision points encountered.
    pub fn decisions(&self) -> u64 {
        self.next_decision
    }

    /// True when the run was cut off by the step budget.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

impl SchedulePolicy for ChoicePolicy {
    fn choose(&mut self, now: SimTime, candidates: &[Candidate]) -> usize {
        let k = if candidates.len() > 1 {
            let idx = self.next_decision;
            self.next_decision += 1;
            if self.trace.len() < TRACE_CAP {
                self.trace.push((idx, candidates.len() as u32));
            }
            self.plan
                .get(&idx)
                .map(|&c| (c as usize).min(candidates.len() - 1))
                .unwrap_or(0)
        } else {
            0
        };
        // FNV-style fold of (time, chosen name, position within ties).
        let mut mix = |v: u64| {
            self.signature = (self.signature ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(now.as_nanos());
        mix(candidates[k].name_hash);
        mix(k as u64);
        k
    }

    fn keep_running(&mut self) -> bool {
        self.steps += 1;
        if self.steps > self.max_steps {
            self.exhausted = true;
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3a_des::TaskId;

    fn cands(n: usize) -> Vec<Candidate> {
        // TaskId has no public constructor; candidates for these unit
        // tests come from a real (tiny) sim.
        let sim = s3a_des::Sim::new();
        let ids: Vec<TaskId> = (0..n)
            .map(|i| sim.spawn(format!("t{i}"), async {}).id())
            .collect();
        ids.iter()
            .enumerate()
            .map(|(i, &task)| Candidate {
                task,
                name_hash: s3a_des::policy::name_hash(&format!("t{i}")),
                timed: false,
            })
            .collect()
    }

    #[test]
    fn empty_plan_is_canonical_and_traces_decision_points() {
        let mut p = ChoicePolicy::new(&[], 1000);
        let two = cands(2);
        let one = cands(1);
        assert_eq!(p.choose(SimTime::ZERO, &one), 0);
        assert_eq!(p.choose(SimTime::ZERO, &two), 0);
        assert_eq!(p.choose(SimTime::from_millis(1), &two), 0);
        // Only the multi-candidate points number and trace.
        assert_eq!(p.decisions(), 2);
        assert_eq!(p.trace(), &[(0, 2), (1, 2)]);
    }

    #[test]
    fn plan_deviates_at_the_pinned_point_only() {
        let mut p = ChoicePolicy::new(&[(1, 1)], 1000);
        let two = cands(2);
        assert_eq!(p.choose(SimTime::ZERO, &two), 0);
        assert_eq!(p.choose(SimTime::ZERO, &two), 1);
        assert_eq!(p.choose(SimTime::ZERO, &two), 0);
        // Out-of-range plan entries clamp to the last candidate.
        let mut q = ChoicePolicy::new(&[(0, 9)], 1000);
        assert_eq!(q.choose(SimTime::ZERO, &two), 1);
    }

    #[test]
    fn signatures_separate_schedules_and_match_reruns() {
        let two = cands(2);
        let run = |plan: &[Choice]| {
            let mut p = ChoicePolicy::new(plan, 1000);
            p.choose(SimTime::ZERO, &two);
            p.choose(SimTime::from_millis(3), &two);
            p.signature()
        };
        assert_eq!(run(&[]), run(&[]));
        assert_ne!(run(&[]), run(&[(1, 1)]));
    }

    #[test]
    fn budget_trips_exhausted_flag() {
        let mut p = ChoicePolicy::new(&[], 2);
        assert!(p.keep_running());
        assert!(p.keep_running());
        assert!(!p.keep_running());
        assert!(p.exhausted());
    }
}
