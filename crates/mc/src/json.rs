//! Minimal JSON emit/parse for counterexample files — dependency-free
//! by necessity (the build environment is offline; see DESIGN.md §12).
//!
//! The dialect is exactly what the counterexample format needs: objects
//! (order-preserving), arrays, strings, booleans, `null`, and *unsigned
//! integer* numbers — every numeric field in a schedule is a count,
//! index, or nanosecond timestamp, so signed/float syntax is rejected
//! rather than half-supported.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the format uses).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline —
    /// counterexamples are meant to be read (and diffed) by humans.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(format!(
                "only unsigned integers are supported (byte {})",
                self.pos
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf-8");
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unescaped).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_counterexample_shapes() {
        let doc = Json::Obj(vec![
            ("version".to_string(), Json::Num(1)),
            (
                "violation".to_string(),
                Json::Str("a \"quoted\"\nline".to_string()),
            ),
            (
                "choices".to_string(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(17), Json::Num(2)]),
                    Json::Arr(vec![Json::Num(423), Json::Num(1)]),
                ]),
            ),
            ("empty".to_string(), Json::Arr(vec![])),
            ("chaos".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
        ]);
        let text = doc.pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
