//! s3a-mc — a bounded schedule-space model checker for S3aSim's
//! sharded-master and collective-I/O protocols.
//!
//! The simulator already executes protocols deterministically; this crate
//! turns that determinism into *systematic* coverage. A
//! [`SchedulePolicy`](s3a_des::policy::SchedulePolicy) hook in the DES
//! exposes every point where two or more tasks are runnable at the same
//! virtual tick; the explorer drives the full simulation through
//! breadth-first enumerated permutations of those points (plus a grid of
//! shifted crash times), deduplicates executions by a running state
//! signature, and checks five invariant oracles after every run:
//! termination, extent exactness, an exactly-once commit ledger,
//! sanitizer cleanliness, and output equality against the canonical
//! schedule. A violating schedule is minimized (greedy drop-one) and
//! written as a self-contained JSON counterexample that
//! `s3a-mc replay <file>` re-executes deterministically.
//!
//! See `DESIGN.md` for the state-hashing and crash-point-enumeration
//! rationale and the counterexample file format.

pub mod choice;
pub mod explore;
pub mod json;
pub mod oracle;
pub mod scenario;

pub use choice::{Choice, ChoicePolicy, TRACE_CAP};
pub use explore::{
    explore, run_schedule, Counterexample, ExploreReport, McConfig, RunError, RunOutcome,
};
pub use json::{parse as parse_json, Json};
pub use oracle::{check as check_oracles, commit_projection, Baseline};
pub use scenario::{strategy_from_label, Scenario};
