//! The bounded schedule-space explorer: breadth-first over *deviations*
//! from the canonical schedule, one crash-grid variant at a time.
//!
//! Each explored schedule is a sparse plan of `(decision, choice)`
//! deviations (see [`crate::choice`]). Depth-1 schedules — one deviation
//! each — are seeded from the canonical run's decision trace; a schedule
//! that executes fresh behavior (new state signature) and still has
//! deviation budget spawns children deviating at decision points *after*
//! its own last deviation, so plans enumerate without duplication by
//! construction and iterative deepening falls out of BFS order.
//!
//! The partial-order-reduction-lite filter is the signature set: two
//! plans frequently collapse into the same execution (a deviation at a
//! point the run never reached, or a swap of two independent steps that
//! reconverges immediately); schedules whose signature was already seen
//! are counted as duplicates and not expanded further.

use std::collections::{BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use s3a_des::policy::{with_policy, PolicyHandle};
use s3a_des::SimTime;
use s3asim::{try_run, RunReport, SimError};

use crate::choice::{Choice, ChoicePolicy};
use crate::json::Json;
use crate::oracle::{self, Baseline};
use crate::scenario::Scenario;
use std::cell::RefCell;

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Maximum deviations from canonical per schedule (quick mode: 2).
    pub max_deviations: usize,
    /// Total run budget across all crash variants.
    pub max_runs: usize,
    /// Stop early once this many distinct schedules have been seen.
    pub target_distinct: Option<usize>,
    /// Per-run selection-step budget; exhausting it is a termination
    /// violation. Absolute (not derived from the canonical run) so a
    /// canonical-schedule livelock is itself caught.
    pub max_steps: u64,
    /// Crash-grid variants to enumerate (quick mode: 1 = as scheduled).
    pub crash_points: usize,
    /// Crash-time shift between grid variants.
    pub crash_step: SimTime,
    /// Abort the exploration at the first violation (after minimizing).
    pub stop_on_first_violation: bool,
}

impl McConfig {
    /// The CI quick mode: ≤ 2 same-tick permutation deviations, a single
    /// crash point, and a run budget sized for a smoke job.
    pub fn quick() -> McConfig {
        McConfig {
            max_deviations: 2,
            max_runs: 700,
            target_distinct: None,
            max_steps: 400_000,
            crash_points: 1,
            crash_step: SimTime::from_millis(20),
            stop_on_first_violation: true,
        }
    }
}

/// How one explored run ended.
#[derive(Debug)]
pub enum RunError {
    /// The simulation reported a typed failure.
    Sim(SimError),
    /// An invariant `panic!` fired inside the protocol code.
    Panic(String),
}

/// One explored run: its result plus what the policy recorded.
#[derive(Debug)]
pub struct RunOutcome {
    /// The run's report or failure.
    pub result: Result<RunReport, RunError>,
    /// Decision points observed (the deviation menu for children).
    pub trace: Vec<(u64, u32)>,
    /// State signature (schedule identity).
    pub signature: u64,
    /// True when the step budget cut the run off.
    pub exhausted: bool,
}

/// A schedule that violated an oracle, minimized and self-contained.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The scenario the schedule drives (embedded so replay needs
    /// nothing else).
    pub scenario: Scenario,
    /// Crash-grid variant index.
    pub crash_variant: usize,
    /// The resolved crash schedule of that variant, `(rank, ns)`.
    pub crashes: Vec<(usize, u64)>,
    /// Minimized deviation plan.
    pub choices: Vec<Choice>,
    /// Which oracle rejected it, with detail.
    pub violation: String,
}

/// Exploration summary.
#[derive(Debug)]
pub struct ExploreReport {
    /// Total runs executed (including canonical baselines and
    /// minimization reruns).
    pub runs: usize,
    /// Distinct state signatures seen.
    pub distinct: usize,
    /// Runs whose signature was already known (POR-lite hits).
    pub duplicates: usize,
    /// Decision points in the first canonical run.
    pub decision_points: u64,
    /// Crash-grid variants explored.
    pub crash_variants: usize,
    /// Violations found (minimized).
    pub counterexamples: Vec<Counterexample>,
}

/// Execute one schedule of the scenario and collect the policy record.
pub fn run_schedule(
    scenario: &Scenario,
    faults: &s3asim::FaultParams,
    choices: &[Choice],
    max_steps: u64,
) -> RunOutcome {
    let _chaos = scenario
        .chaos_stale_ownership
        .then(s3asim::chaos::StaleOwnershipGuard::new);
    let params = scenario.params(faults);
    let policy = Rc::new(RefCell::new(ChoicePolicy::new(choices, max_steps)));
    let handle: PolicyHandle = policy.clone();
    // Protocol `panic!`s (broken invariants under a hostile schedule) are
    // violations to report, not a reason to kill the explorer.
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_policy(handle, || try_run(&params))
    }));
    let result = match result {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(e)) => Err(RunError::Sim(e)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(RunError::Panic(msg))
        }
    };
    let p = policy.borrow();
    RunOutcome {
        result,
        trace: p.trace().to_vec(),
        signature: p.signature(),
        exhausted: p.exhausted(),
    }
}

/// Explore the scenario's schedule space within `cfg`'s bounds.
pub fn explore(scenario: &Scenario, cfg: &McConfig) -> ExploreReport {
    let grid = scenario
        .fault_params()
        .master_crash_grid(cfg.crash_step, cfg.crash_points);
    let mut report = ExploreReport {
        runs: 0,
        distinct: 0,
        duplicates: 0,
        decision_points: 0,
        crash_variants: grid.len(),
        counterexamples: Vec::new(),
    };
    let mut seen: BTreeSet<u64> = BTreeSet::new();

    'variants: for (variant, faults) in grid.iter().enumerate() {
        // Canonical baseline for this crash variant.
        let canonical = run_schedule(scenario, faults, &[], cfg.max_steps);
        report.runs += 1;
        note(&mut report, &mut seen, canonical.signature);
        if variant == 0 {
            report.decision_points = canonical.trace.last().map(|&(idx, _)| idx + 1).unwrap_or(0);
        }
        let baseline = match oracle::check(scenario, &canonical, None) {
            Ok(()) => {
                let base = match &canonical.result {
                    Ok(r) => Baseline {
                        commits: oracle::commit_projection(r),
                    },
                    Err(_) => unreachable!("oracle passed, so the run succeeded"),
                };
                base
            }
            Err(violation) => {
                // The canonical schedule itself is a counterexample — the
                // empty plan is already minimal.
                record_violation(
                    &mut report,
                    scenario,
                    cfg,
                    variant,
                    faults,
                    Vec::new(),
                    violation,
                    None,
                );
                if cfg.stop_on_first_violation {
                    break 'variants;
                }
                continue;
            }
        };

        // BFS frontier, seeded with every depth-1 deviation of the
        // canonical trace.
        let mut frontier: VecDeque<Vec<Choice>> = VecDeque::new();
        extend_frontier(&mut frontier, &canonical.trace, &[], cfg);
        while let Some(plan) = frontier.pop_front() {
            if report.runs >= cfg.max_runs || target_met(&report, cfg) {
                break;
            }
            let run = run_schedule(scenario, faults, &plan, cfg.max_steps);
            report.runs += 1;
            let fresh = note(&mut report, &mut seen, run.signature);
            if let Err(violation) = oracle::check(scenario, &run, Some(&baseline)) {
                record_violation(
                    &mut report,
                    scenario,
                    cfg,
                    variant,
                    faults,
                    plan,
                    violation,
                    Some(&baseline),
                );
                if cfg.stop_on_first_violation {
                    break 'variants;
                }
                continue;
            }
            if fresh && plan.len() < cfg.max_deviations && frontier.len() < cfg.max_runs * 2 {
                extend_frontier(&mut frontier, &run.trace, &plan, cfg);
            }
        }
        if report.runs >= cfg.max_runs || target_met(&report, cfg) {
            break;
        }
    }
    report
}

fn target_met(report: &ExploreReport, cfg: &McConfig) -> bool {
    cfg.target_distinct.is_some_and(|t| report.distinct >= t)
}

/// Count a signature; returns true when it was fresh.
fn note(report: &mut ExploreReport, seen: &mut BTreeSet<u64>, signature: u64) -> bool {
    if seen.insert(signature) {
        report.distinct += 1;
        true
    } else {
        report.duplicates += 1;
        false
    }
}

/// Append `parent`'s children: one plan per alternative choice at each
/// decision point strictly after the parent's last deviation.
fn extend_frontier(
    frontier: &mut VecDeque<Vec<Choice>>,
    trace: &[(u64, u32)],
    parent: &[Choice],
    cfg: &McConfig,
) {
    let after = parent.last().map(|&(idx, _)| idx);
    for &(idx, n) in trace {
        if after.is_some_and(|a| idx <= a) {
            continue;
        }
        for alt in 1..n {
            if frontier.len() >= cfg.max_runs * 2 {
                return;
            }
            let mut child = parent.to_vec();
            child.push((idx, alt));
            frontier.push_back(child);
        }
    }
}

/// Minimize (ddmin-lite: greedy drop-one to a fixpoint) and record a
/// violating schedule.
#[allow(clippy::too_many_arguments)]
fn record_violation(
    report: &mut ExploreReport,
    scenario: &Scenario,
    cfg: &McConfig,
    variant: usize,
    faults: &s3asim::FaultParams,
    plan: Vec<Choice>,
    violation: String,
    baseline: Option<&Baseline>,
) {
    let (plan, violation) = minimize(scenario, cfg, faults, plan, violation, baseline, report);
    report.counterexamples.push(Counterexample {
        scenario: scenario.clone(),
        crash_variant: variant,
        crashes: faults
            .master_crashes
            .iter()
            .map(|&(rank, t)| (rank, t.as_nanos()))
            .collect(),
        choices: plan,
        violation,
    });
}

/// Drop deviations one at a time while the violation (any violation)
/// persists. Small plans (≤ 2 deviations in quick mode) converge in a
/// handful of reruns.
fn minimize(
    scenario: &Scenario,
    cfg: &McConfig,
    faults: &s3asim::FaultParams,
    mut plan: Vec<Choice>,
    mut violation: String,
    baseline: Option<&Baseline>,
    report: &mut ExploreReport,
) -> (Vec<Choice>, String) {
    loop {
        let mut reduced = false;
        for i in 0..plan.len() {
            let mut candidate = plan.clone();
            candidate.remove(i);
            let run = run_schedule(scenario, faults, &candidate, cfg.max_steps);
            report.runs += 1;
            if let Err(v) = oracle::check(scenario, &run, baseline) {
                plan = candidate;
                violation = v;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (plan, violation);
        }
    }
}

impl Counterexample {
    /// Serialize as the self-contained counterexample file format.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Num(1)),
            ("scenario".into(), self.scenario.to_json()),
            ("crash_variant".into(), Json::Num(self.crash_variant as u64)),
            (
                "crashes".into(),
                Json::Arr(
                    self.crashes
                        .iter()
                        .map(|&(r, ns)| Json::Arr(vec![Json::Num(r as u64), Json::Num(ns)]))
                        .collect(),
                ),
            ),
            (
                "choices".into(),
                Json::Arr(
                    self.choices
                        .iter()
                        .map(|&(idx, c)| Json::Arr(vec![Json::Num(idx), Json::Num(u64::from(c))]))
                        .collect(),
                ),
            ),
            ("violation".into(), Json::Str(self.violation.clone())),
        ])
    }

    /// Parse a counterexample file.
    pub fn from_json(j: &Json) -> Result<Counterexample, String> {
        match j.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            v => return Err(format!("unsupported counterexample version {v:?}")),
        }
        let scenario = Scenario::from_json(j.get("scenario").ok_or("missing 'scenario'")?)?;
        let pairs = |key: &str| -> Result<Vec<(u64, u64)>, String> {
            j.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing '{key}'"))?
                .iter()
                .map(|p| match p.as_arr() {
                    Some([a, b]) => Ok((
                        a.as_u64().ok_or("bad pair element")?,
                        b.as_u64().ok_or("bad pair element")?,
                    )),
                    _ => Err(format!("'{key}' entry is not a pair")),
                })
                .collect()
        };
        Ok(Counterexample {
            scenario,
            crash_variant: j
                .get("crash_variant")
                .and_then(Json::as_u64)
                .ok_or("missing 'crash_variant'")? as usize,
            crashes: pairs("crashes")?
                .into_iter()
                .map(|(r, ns)| (r as usize, ns))
                .collect(),
            choices: pairs("choices")?
                .into_iter()
                .map(|(idx, c)| (idx, c as u32))
                .collect(),
            violation: j
                .get("violation")
                .and_then(Json::as_str)
                .ok_or("missing 'violation'")?
                .to_string(),
        })
    }

    /// The fault parameters this counterexample ran under (its resolved
    /// crash schedule, not the scenario's variant-0 one).
    pub fn fault_params(&self) -> s3asim::FaultParams {
        let mut fp = self.scenario.fault_params();
        fp.master_crashes = self
            .crashes
            .iter()
            .map(|&(rank, ns)| (rank, SimTime::from_nanos(ns)))
            .collect();
        fp
    }

    /// Re-execute the recorded schedule deterministically. Returns
    /// `Ok(violation)` when the recorded class of failure reproduces
    /// (any oracle rejection — minimization already canonicalized it),
    /// `Err(..)` when the run now passes every oracle.
    pub fn replay(&self, max_steps: u64) -> Result<String, String> {
        let faults = self.fault_params();
        let run = run_schedule(&self.scenario, &faults, &self.choices, max_steps);
        match oracle::check(&self.scenario, &run, None) {
            Err(violation) => Ok(violation),
            Ok(()) => Err("schedule replayed clean: no oracle rejected it".to_string()),
        }
    }
}
