//! `s3a-mc` — explore schedule spaces, replay counterexamples.
//!
//! ```text
//! s3a-mc explore [--strategy MW] [--masters 2] [--workers 8] [--quick]
//!                [--deviations N] [--max-runs N] [--crash-points N]
//!                [--target-distinct N] [--chaos-stale-ownership]
//!                [--out FILE]
//! s3a-mc replay <counterexample.json>
//! ```
//!
//! `explore` exits 1 when a violation was found (the minimized
//! counterexample is printed, and written to `--out` when given);
//! `replay` exits 0 when the recorded violation reproduces.

use std::process::ExitCode;

use s3a_mc::{explore, parse_json, Counterexample, McConfig, Scenario};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explore") => cmd_explore(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            eprintln!("usage: s3a-mc explore [flags] | s3a-mc replay <file>");
            ExitCode::from(2)
        }
    }
}

fn cmd_explore(args: &[String]) -> ExitCode {
    let mut strategy = "MW".to_string();
    let mut masters = 2usize;
    let mut workers = 8usize;
    let mut chaos = false;
    let mut out: Option<String> = None;
    let mut cfg = McConfig::quick();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let r: Result<(), String> = match arg.as_str() {
            "--strategy" => value(arg, it.next()).map(|v| strategy = v),
            "--masters" => count(arg, it.next()).map(|v| masters = v),
            "--workers" => count(arg, it.next()).map(|v| workers = v),
            "--deviations" => count(arg, it.next()).map(|v| cfg.max_deviations = v),
            "--max-runs" => count(arg, it.next()).map(|v| cfg.max_runs = v),
            "--crash-points" => count(arg, it.next()).map(|v| cfg.crash_points = v),
            "--target-distinct" => count(arg, it.next()).map(|v| cfg.target_distinct = Some(v)),
            "--quick" => {
                cfg = McConfig::quick();
                Ok(())
            }
            "--chaos-stale-ownership" => {
                chaos = true;
                Ok(())
            }
            "--out" => value(arg, it.next()).map(|v| out = Some(v)),
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(e) = r {
            eprintln!("s3a-mc: {e}");
            return ExitCode::from(2);
        }
    }

    let Some(strategy) = s3a_mc::strategy_from_label(&strategy) else {
        eprintln!("s3a-mc: unknown strategy '{strategy}'");
        return ExitCode::from(2);
    };
    let mut scenario = Scenario::failover(strategy, masters, workers);
    if chaos {
        scenario = Scenario::chained_failover(strategy);
        scenario.chaos_stale_ownership = true;
    }

    eprintln!(
        "exploring {} (deviations ≤ {}, runs ≤ {}, crash points {})",
        scenario.label(),
        cfg.max_deviations,
        cfg.max_runs,
        cfg.crash_points
    );
    let report = explore(&scenario, &cfg);
    println!(
        "{}: {} runs, {} distinct schedules, {} duplicates, {} decision points, {} crash variant(s), {} violation(s)",
        scenario.label(),
        report.runs,
        report.distinct,
        report.duplicates,
        report.decision_points,
        report.crash_variants,
        report.counterexamples.len()
    );
    if report.counterexamples.is_empty() {
        return ExitCode::SUCCESS;
    }
    for cx in &report.counterexamples {
        let text = cx.to_json().pretty();
        println!("counterexample ({}):", cx.violation);
        print!("{text}");
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("s3a-mc: writing {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("counterexample written to {path}");
        }
    }
    ExitCode::FAILURE
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: s3a-mc replay <counterexample.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("s3a-mc: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let cx = match parse_json(&text).and_then(|j| Counterexample::from_json(&j)) {
        Ok(cx) => cx,
        Err(e) => {
            eprintln!("s3a-mc: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "replaying {} ({} deviation(s), recorded violation: {})",
        cx.scenario.label(),
        cx.choices.len(),
        cx.violation
    );
    // A generous budget so a recorded non-termination counterexample
    // still trips the termination oracle rather than a smaller one.
    match cx.replay(McConfig::quick().max_steps.max(2_000_000)) {
        Ok(violation) => {
            println!("violation reproduced: {violation}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("replay FAILED to reproduce: {e}");
            ExitCode::FAILURE
        }
    }
}

fn value(flag: &str, v: Option<&String>) -> Result<String, String> {
    v.cloned().ok_or_else(|| format!("{flag} needs a value"))
}

fn count(flag: &str, v: Option<&String>) -> Result<usize, String> {
    let text = value(flag, v)?;
    text.parse::<usize>()
        .map_err(|e| format!("{flag} '{text}': {e}"))
}
