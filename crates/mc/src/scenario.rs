//! The scenario under check: a compact, JSON-serializable description of
//! one simulation configuration (strategy, topology, workload knobs,
//! crash schedule) that both `explore` and `replay` can reconstruct into
//! identical [`SimParams`]. Everything a schedule's meaning depends on
//! is in here — a counterexample file embeds its scenario, so replaying
//! it needs nothing but the file.

use s3a_des::SimTime;
use s3a_workload::WorkloadParams;
use s3asim::{FaultParams, SimParams, Strategy};

use crate::json::Json;

/// One model-checking scenario. Times are nanoseconds (the DES unit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// I/O strategy under test.
    pub strategy: Strategy,
    /// Master ranks; `procs - masters` ranks are workers.
    pub masters: usize,
    /// Total ranks.
    pub procs: usize,
    /// Queries in the workload.
    pub queries: usize,
    /// Database fragments.
    pub fragments: usize,
    /// Sub-fragment task decomposition factor.
    pub subfragment_factor: usize,
    /// Queries per write batch.
    pub write_every: usize,
    /// Result-count band per query.
    pub min_results: u64,
    /// Result-count band per query.
    pub max_results: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Arm the race sanitizer (its cleanliness is an oracle).
    pub sanitize: bool,
    /// Master crash schedule: `(rank, nanoseconds)`.
    pub crashes: Vec<(usize, u64)>,
    /// Heartbeat interval, ns.
    pub heartbeat_ns: u64,
    /// Detection timeout, ns.
    pub detection_ns: u64,
    /// Re-introduce the PR 10 stale-ownership failover bug for this
    /// scenario (see `s3asim::chaos`) — used by the self-validation
    /// tests that prove the checker catches a known-real bug.
    pub chaos_stale_ownership: bool,
}

impl Scenario {
    /// The acceptance scenario: a 2-master failover (one standby master
    /// killed mid-Search) over `masters + workers` ranks, with the
    /// heartbeat/detection timing the end-to-end failover tests pin.
    pub fn failover(strategy: Strategy, masters: usize, workers: usize) -> Scenario {
        Scenario {
            strategy,
            masters,
            procs: masters + workers,
            queries: 8,
            fragments: 8,
            subfragment_factor: 1,
            write_every: 2,
            min_results: 30,
            max_results: 80,
            seed: WorkloadParams::default().seed,
            sanitize: true,
            crashes: vec![(1, SimTime::from_millis(40).as_nanos())],
            heartbeat_ns: SimTime::from_millis(50).as_nanos(),
            detection_ns: SimTime::from_millis(400).as_nanos(),
            chaos_stale_ownership: false,
        }
    }

    /// The chained-failover scenario (3 masters, two crashes, the second
    /// after the first takeover lands) — the configuration that trips
    /// the PR 10 stale-ownership bug when the chaos knob re-introduces it.
    pub fn chained_failover(strategy: Strategy) -> Scenario {
        let mut s = Scenario::failover(strategy, 3, 7);
        s.crashes = vec![
            (1, SimTime::from_millis(40).as_nanos()),
            (2, SimTime::from_millis(520).as_nanos()),
        ];
        s
    }

    /// The crash schedule as fault parameters (variant 0 of the grid).
    pub fn fault_params(&self) -> FaultParams {
        FaultParams {
            master_crashes: self
                .crashes
                .iter()
                .map(|&(rank, ns)| (rank, SimTime::from_nanos(ns)))
                .collect(),
            heartbeat_interval: SimTime::from_nanos(self.heartbeat_ns),
            detection_timeout: SimTime::from_nanos(self.detection_ns),
            ..FaultParams::default()
        }
    }

    /// Full simulation parameters for one crash-grid variant.
    pub fn params(&self, faults: &FaultParams) -> SimParams {
        SimParams {
            procs: self.procs,
            num_masters: self.masters,
            strategy: self.strategy,
            write_every_n_queries: self.write_every,
            subfragment_factor: self.subfragment_factor,
            sanitize: self.sanitize,
            faults: faults.clone(),
            workload: WorkloadParams {
                queries: self.queries,
                fragments: self.fragments,
                min_results: self.min_results,
                max_results: self.max_results,
                seed: self.seed,
                ..WorkloadParams::default()
            },
            ..SimParams::default()
        }
    }

    /// Number of write batches the commit ledger must close.
    pub fn expected_batches(&self) -> usize {
        self.queries.div_ceil(self.write_every.max(1))
    }

    /// Short human label, e.g. `WW-List/3m×7w`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}m×{}w",
            self.strategy.label(),
            self.masters,
            self.procs - self.masters
        )
    }

    /// Serialize for embedding in a counterexample file.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("strategy".into(), Json::Str(self.strategy.label().into())),
            ("masters".into(), Json::Num(self.masters as u64)),
            ("procs".into(), Json::Num(self.procs as u64)),
            ("queries".into(), Json::Num(self.queries as u64)),
            ("fragments".into(), Json::Num(self.fragments as u64)),
            (
                "subfragment_factor".into(),
                Json::Num(self.subfragment_factor as u64),
            ),
            ("write_every".into(), Json::Num(self.write_every as u64)),
            ("min_results".into(), Json::Num(self.min_results)),
            ("max_results".into(), Json::Num(self.max_results)),
            ("seed".into(), Json::Num(self.seed)),
            ("sanitize".into(), Json::Bool(self.sanitize)),
            (
                "crashes".into(),
                Json::Arr(
                    self.crashes
                        .iter()
                        .map(|&(r, ns)| Json::Arr(vec![Json::Num(r as u64), Json::Num(ns)]))
                        .collect(),
                ),
            ),
            ("heartbeat_ns".into(), Json::Num(self.heartbeat_ns)),
            ("detection_ns".into(), Json::Num(self.detection_ns)),
            (
                "chaos_stale_ownership".into(),
                Json::Bool(self.chaos_stale_ownership),
            ),
        ])
    }

    /// Reconstruct from the embedded form. Every field is required — a
    /// counterexample that omits one would replay a different system.
    pub fn from_json(j: &Json) -> Result<Scenario, String> {
        fn num(j: &Json, key: &str) -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("scenario field '{key}' missing or not a number"))
        }
        fn flag(j: &Json, key: &str) -> Result<bool, String> {
            j.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("scenario field '{key}' missing or not a bool"))
        }
        let strategy_label = j
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or("scenario field 'strategy' missing or not a string")?;
        let strategy = strategy_from_label(strategy_label)
            .ok_or_else(|| format!("unknown strategy '{strategy_label}'"))?;
        let crashes = j
            .get("crashes")
            .and_then(Json::as_arr)
            .ok_or("scenario field 'crashes' missing or not an array")?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().filter(|p| p.len() == 2);
                match pair {
                    Some([r, ns]) => Ok((
                        r.as_u64().ok_or("bad crash rank")? as usize,
                        ns.as_u64().ok_or("bad crash time")?,
                    )),
                    _ => Err("crash entry is not a [rank, ns] pair".to_string()),
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Scenario {
            strategy,
            masters: num(j, "masters")? as usize,
            procs: num(j, "procs")? as usize,
            queries: num(j, "queries")? as usize,
            fragments: num(j, "fragments")? as usize,
            subfragment_factor: num(j, "subfragment_factor")? as usize,
            write_every: num(j, "write_every")? as usize,
            min_results: num(j, "min_results")?,
            max_results: num(j, "max_results")?,
            seed: num(j, "seed")?,
            sanitize: flag(j, "sanitize")?,
            crashes,
            heartbeat_ns: num(j, "heartbeat_ns")?,
            detection_ns: num(j, "detection_ns")?,
            chaos_stale_ownership: flag(j, "chaos_stale_ownership")?,
        })
    }
}

/// Inverse of [`Strategy::label`] for the strategies the checker drives.
pub fn strategy_from_label(label: &str) -> Option<Strategy> {
    Some(match label {
        "MW" => Strategy::Mw,
        "WW-POSIX" => Strategy::WwPosix,
        "WW-List" => Strategy::WwList,
        "WW-Coll" => Strategy::WwColl,
        "WW-CollList" => Strategy::WwCollList,
        "WW-DS" => Strategy::WwSieve,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_round_trips_through_json() {
        for s in [
            Scenario::failover(Strategy::Mw, 2, 8),
            Scenario::chained_failover(Strategy::WwList),
            {
                let mut s = Scenario::failover(Strategy::WwSieve, 2, 8);
                s.chaos_stale_ownership = true;
                s
            },
        ] {
            let text = s.to_json().pretty();
            assert_eq!(
                Scenario::from_json(&crate::json::parse(&text).unwrap()),
                Ok(s)
            );
        }
    }

    #[test]
    fn every_strategy_label_parses_back() {
        for s in [
            Strategy::Mw,
            Strategy::WwPosix,
            Strategy::WwList,
            Strategy::WwColl,
            Strategy::WwCollList,
            Strategy::WwSieve,
        ] {
            assert_eq!(strategy_from_label(s.label()), Some(s));
        }
    }

    #[test]
    fn failover_scenario_counts_batches() {
        let s = Scenario::failover(Strategy::Mw, 2, 8);
        assert_eq!(s.expected_batches(), 4);
        assert_eq!(s.procs, 10);
        assert_eq!(s.label(), "MW/2m×8w");
    }
}
