#![allow(clippy::needless_range_loop)]

//! Property-based tests for the collective two-phase path: arbitrary
//! disjoint access patterns across arbitrary communicator shapes must be
//! written exactly once, whatever the aggregator count or buffer size.

use proptest::prelude::*;
use std::rc::Rc;

use s3a_des::{Sim, SimTime};
use s3a_mpi::{MpiConfig, World};
use s3a_mpiio::{File, Hints};
use s3a_net::{Bandwidth, Fabric, NetConfig};
use s3a_pvfs::{FileSystem, PvfsConfig, Region};

fn fast_net() -> NetConfig {
    NetConfig {
        latency: SimTime::from_micros(1),
        bandwidth: Bandwidth::gib_per_sec(10.0),
        per_message_overhead: SimTime::from_nanos(100),
    }
}

fn fast_pvfs() -> PvfsConfig {
    PvfsConfig {
        servers: 4,
        strip_size: 8192,
        flow_unit: 8192,
        list_io_max_regions: 16,
        client_window: 4,
        client_request_turnaround: SimTime::from_micros(10),
        client_per_region: SimTime::from_micros(1),
        request_overhead: SimTime::from_micros(20),
        region_overhead: SimTime::from_micros(2),
        ingest_bw: Bandwidth::gib_per_sec(4.0),
        disk_bw: Bandwidth::gib_per_sec(2.0),
        sync_overhead: SimTime::from_micros(10),
        req_header_bytes: 32,
        region_desc_bytes: 16,
        read_window: 4,
        ..PvfsConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any disjoint layout of per-rank regions and any collective
    /// buffering configuration, write_at_all covers exactly the input.
    #[test]
    fn two_phase_exact_coverage(
        n in 2usize..7,
        pieces in prop::collection::vec((0usize..7, 1u64..5_000, 0u64..3_000), 1..40),
        cb_nodes in 0usize..5,
        cb_buffer in prop::sample::select(vec![2048u64, 16 * 1024, 4 * 1024 * 1024]),
    ) {
        // Build disjoint regions walking a cursor; assign each to a rank.
        let mut per_rank: Vec<Vec<Region>> = vec![Vec::new(); n];
        let mut cursor = 0u64;
        let mut total = 0u64;
        for &(rank, len, gap) in &pieces {
            let off = cursor + gap;
            per_rank[rank % n].push(Region::new(off, len));
            cursor = off + len;
            total += len;
        }

        let sim = Sim::new();
        let mpi_cfg = MpiConfig {
            net: fast_net(),
            eager_threshold: 4096,
            header_bytes: 32,
            ranks_per_node: 1,
        };
        let pvfs_cfg = fast_pvfs();
        let fabric = Rc::new(Fabric::new(n + pvfs_cfg.servers, fast_net()));
        let world = World::with_fabric(&sim, n, mpi_cfg, Rc::clone(&fabric), 0);
        let fs = FileSystem::new(&sim, pvfs_cfg, fabric, n);

        for rank in 0..n {
            let comm = world.comm(rank);
            let fs2 = fs.clone();
            let mine = per_rank[rank].clone();
            sim.spawn(format!("r{rank}"), async move {
                let hints = Hints {
                    cb_nodes,
                    cb_buffer_size: cb_buffer,
                    ..Hints::default()
                };
                let f = File::open(&comm, &fs2, "out", hints);
                f.write_at_all(&mine).await.unwrap();
                f.sync().await.unwrap();
            });
        }
        sim.run().expect("collective deadlocked");

        let fh = fs.open("out");
        prop_assert_eq!(fh.covered_bytes(), total);
        prop_assert_eq!(fh.overlap_bytes(), 0);
        prop_assert_eq!(fh.dirty_bytes(), 0);
    }

    /// Individual and collective paths write identical file contents
    /// (coverage/extent structure) for the same access pattern.
    #[test]
    fn collective_equals_individual_coverage(
        n in 2usize..5,
        pieces in prop::collection::vec((0usize..5, 1u64..2_000, 0u64..500), 1..25),
    ) {
        let mut per_rank: Vec<Vec<Region>> = vec![Vec::new(); n];
        let mut cursor = 0u64;
        for &(rank, len, gap) in &pieces {
            let off = cursor + gap;
            per_rank[rank % n].push(Region::new(off, len));
            cursor = off + len;
        }

        let run_mode = |collective: bool| -> (u64, u64, usize) {
            let sim = Sim::new();
            let mpi_cfg = MpiConfig {
                net: fast_net(),
                eager_threshold: 4096,
                header_bytes: 32,
                ranks_per_node: 1,
            };
            let pvfs_cfg = fast_pvfs();
            let fabric = Rc::new(Fabric::new(n + pvfs_cfg.servers, fast_net()));
            let world = World::with_fabric(&sim, n, mpi_cfg, Rc::clone(&fabric), 0);
            let fs = FileSystem::new(&sim, pvfs_cfg, fabric, n);
            for rank in 0..n {
                let comm = world.comm(rank);
                let fs2 = fs.clone();
                let mine = per_rank[rank].clone();
                sim.spawn(format!("r{rank}"), async move {
                    let f = File::open(&comm, &fs2, "out", Hints::default());
                    if collective {
                        f.write_at_all(&mine).await.unwrap();
                    } else {
                        f.write_regions(&mine, s3a_mpiio::WriteMethod::ListIo).await.unwrap();
                    }
                });
            }
            sim.run().expect("no deadlock");
            let fh = fs.open("out");
            (fh.covered_bytes(), fh.overlap_bytes(), fh.extent_count())
        };

        prop_assert_eq!(run_mode(true), run_mode(false));
    }
}
