//! Integration tests for the MPI-IO layer over the simulated MPI + PVFS
//! stack: correctness of every write path and the relative-cost relations
//! the paper depends on (contiguous < list < POSIX; two-phase carries an
//! inherent synchronization).

use std::cell::Cell;
use std::rc::Rc;

use s3a_des::{Sim, SimTime};
use s3a_mpi::{MpiConfig, World};
use s3a_mpiio::{File, Hints, WriteMethod};
use s3a_net::{Bandwidth, Fabric, NetConfig};
use s3a_pvfs::{FileSystem, PvfsConfig, Region};

struct Cluster {
    sim: Sim,
    world: World,
    fs: FileSystem,
}

fn cluster(nranks: usize) -> Cluster {
    let sim = Sim::new();
    let net = NetConfig {
        latency: SimTime::from_micros(10),
        bandwidth: Bandwidth::mib_per_sec(200.0),
        per_message_overhead: SimTime::from_micros(2),
    };
    let mpi_cfg = MpiConfig {
        net,
        eager_threshold: 16 * 1024,
        header_bytes: 64,
        ranks_per_node: 1,
    };
    let pvfs_cfg = PvfsConfig {
        servers: 4,
        strip_size: 64 * 1024,
        flow_unit: 64 * 1024,
        list_io_max_regions: 16,
        client_window: 1,
        client_request_turnaround: SimTime::from_millis(2),
        client_per_region: SimTime::from_micros(100),
        request_overhead: SimTime::from_millis(1),
        region_overhead: SimTime::from_micros(100),
        ingest_bw: Bandwidth::mib_per_sec(100.0),
        disk_bw: Bandwidth::mib_per_sec(30.0),
        sync_overhead: SimTime::from_millis(1),
        req_header_bytes: 64,
        region_desc_bytes: 16,
        read_window: 4,
        ..PvfsConfig::default()
    };
    let nodes = nranks.div_ceil(mpi_cfg.ranks_per_node);
    let fabric = Rc::new(Fabric::new(nodes + pvfs_cfg.servers, net));
    let world = World::with_fabric(&sim, nranks, mpi_cfg, Rc::clone(&fabric), 0);
    let fs = FileSystem::new(&sim, pvfs_cfg, fabric, nodes);
    Cluster { sim, world, fs }
}

/// Interleave regions of `size` bytes round-robin across `n` ranks,
/// `per_rank` regions each, starting at file offset 0.
fn interleaved(rank: usize, n: usize, per_rank: usize, size: u64) -> Vec<Region> {
    (0..per_rank)
        .map(|i| Region::new(((i * n + rank) as u64) * size, size))
        .collect()
}

#[test]
fn individual_contiguous_write_covers_file() {
    let c = cluster(1);
    let fs = c.fs.clone();
    let comm = c.world.comm(0);
    c.sim.spawn("r0", async move {
        let f = File::open(&comm, &fs, "out", Hints::default());
        f.write_at(0, 100_000).await.unwrap();
        f.sync().await.unwrap();
        assert_eq!(f.handle().covered_bytes(), 100_000);
        assert_eq!(f.handle().overlap_bytes(), 0);
        assert_eq!(f.handle().dirty_bytes(), 0);
    });
    c.sim.run().unwrap();
}

#[test]
fn posix_and_list_methods_write_identical_data() {
    for method in [WriteMethod::Posix, WriteMethod::ListIo] {
        let c = cluster(2);
        let fs = c.fs.clone();
        for rank in 0..2 {
            let comm = c.world.comm(rank);
            let fs = fs.clone();
            c.sim.spawn(format!("r{rank}"), async move {
                let f = File::open(&comm, &fs, "out", Hints::default());
                let regions = interleaved(rank, 2, 10, 1000);
                f.write_regions(&regions, method).await.unwrap();
            });
        }
        c.sim.run().unwrap();
        let fh = c.fs.open("out");
        assert_eq!(fh.covered_bytes(), 20_000, "{method:?}");
        assert_eq!(fh.overlap_bytes(), 0, "{method:?}");
        assert_eq!(fh.extent_count(), 1, "{method:?}");
    }
}

#[test]
fn list_io_issues_fewer_requests_and_is_faster() {
    let run = |method: WriteMethod| -> (SimTime, u64) {
        let c = cluster(1);
        let fs = c.fs.clone();
        let comm = c.world.comm(0);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        c.sim.spawn("r0", async move {
            let f = File::open(&comm, &fs, "out", Hints::default());
            // 64 small scattered regions.
            let regions: Vec<Region> = (0..64).map(|i| Region::new(i * 4096, 512)).collect();
            f.write_regions(&regions, method).await.unwrap();
            d.set(comm.sim().now());
        });
        c.sim.run().unwrap();
        (done.get(), c.fs.stats().requests)
    };
    let (t_posix, req_posix) = run(WriteMethod::Posix);
    let (t_list, req_list) = run(WriteMethod::ListIo);
    assert!(req_list < req_posix, "list {req_list} vs posix {req_posix}");
    assert!(t_list < t_posix, "list {t_list} vs posix {t_posix}");
}

#[test]
fn two_phase_writes_everything_exactly_once() {
    for n in [2usize, 3, 5] {
        for cb_nodes in [0usize, 1, 2] {
            let c = cluster(n);
            let fs = c.fs.clone();
            for rank in 0..n {
                let comm = c.world.comm(rank);
                let fs = fs.clone();
                c.sim.spawn(format!("r{rank}"), async move {
                    let hints = Hints {
                        cb_nodes,
                        ..Hints::default()
                    };
                    let f = File::open(&comm, &fs, "out", hints);
                    let regions = interleaved(rank, n, 8, 700);
                    f.write_at_all(&regions).await.unwrap();
                });
            }
            c.sim.run().unwrap();
            let fh = c.fs.open("out");
            assert_eq!(
                fh.covered_bytes(),
                (n * 8) as u64 * 700,
                "n={n} cb_nodes={cb_nodes}"
            );
            assert_eq!(fh.overlap_bytes(), 0, "n={n} cb_nodes={cb_nodes}");
            assert_eq!(fh.extent_count(), 1, "n={n} cb_nodes={cb_nodes}");
        }
    }
}

#[test]
fn two_phase_multiple_rounds_small_cb_buffer() {
    let n = 4;
    let c = cluster(n);
    let fs = c.fs.clone();
    for rank in 0..n {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        c.sim.spawn(format!("r{rank}"), async move {
            let hints = Hints {
                cb_nodes: 2,
                cb_buffer_size: 8 * 1024, // force many exchange rounds
                ..Hints::default()
            };
            let f = File::open(&comm, &fs, "out", hints);
            let regions = interleaved(rank, n, 16, 4096);
            f.write_at_all(&regions).await.unwrap();
        });
    }
    c.sim.run().unwrap();
    let fh = c.fs.open("out");
    assert_eq!(fh.covered_bytes(), (n * 16 * 4096) as u64);
    assert_eq!(fh.overlap_bytes(), 0);
    assert_eq!(fh.extent_count(), 1);
}

#[test]
fn two_phase_with_empty_contributors() {
    let n = 4;
    let c = cluster(n);
    let fs = c.fs.clone();
    for rank in 0..n {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        c.sim.spawn(format!("r{rank}"), async move {
            let f = File::open(&comm, &fs, "out", Hints::default());
            // Only ranks 1 and 3 have data.
            let regions = if rank % 2 == 1 {
                vec![Region::new(rank as u64 * 10_000, 5_000)]
            } else {
                Vec::new()
            };
            f.write_at_all(&regions).await.unwrap();
        });
    }
    c.sim.run().unwrap();
    let fh = c.fs.open("out");
    assert_eq!(fh.covered_bytes(), 10_000);
    assert_eq!(fh.overlap_bytes(), 0);
}

#[test]
fn two_phase_all_empty_still_completes() {
    let n = 3;
    let c = cluster(n);
    let fs = c.fs.clone();
    for rank in 0..n {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        c.sim.spawn(format!("r{rank}"), async move {
            let f = File::open(&comm, &fs, "out", Hints::default());
            f.write_at_all(&[]).await.unwrap();
        });
    }
    c.sim.run().unwrap();
    assert_eq!(c.fs.open("out").covered_bytes(), 0);
}

#[test]
fn two_phase_synchronizes_participants() {
    // One rank arrives at the collective 5s late; everyone leaves after
    // its arrival — the inherent synchronization the paper measures.
    let n = 3;
    let c = cluster(n);
    let fs = c.fs.clone();
    let leave_times = Rc::new(std::cell::RefCell::new(Vec::new()));
    for rank in 0..n {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        let lt = Rc::clone(&leave_times);
        c.sim.spawn(format!("r{rank}"), async move {
            if rank == 1 {
                comm.sim().sleep(SimTime::from_secs(5)).await;
            }
            let f = File::open(&comm, &fs, "out", Hints::default());
            let regions = interleaved(rank, n, 4, 512);
            f.write_at_all(&regions).await.unwrap();
            lt.borrow_mut().push(comm.sim().now());
        });
    }
    c.sim.run().unwrap();
    for &t in leave_times.borrow().iter() {
        assert!(t >= SimTime::from_secs(5), "left collective early: {t}");
    }
}

#[test]
fn repeated_collective_writes_advance_offsets() {
    // Two write_at_all calls on disjoint extents (query after query).
    let n = 2;
    let c = cluster(n);
    let fs = c.fs.clone();
    for rank in 0..n {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        c.sim.spawn(format!("r{rank}"), async move {
            let f = File::open(&comm, &fs, "out", Hints::default());
            for q in 0..3u64 {
                let base = q * 100_000;
                let regions: Vec<Region> = (0..5)
                    .map(|i| Region::new(base + ((i * n + rank) as u64) * 800, 800))
                    .collect();
                f.write_at_all(&regions).await.unwrap();
                f.sync().await.unwrap();
            }
        });
    }
    c.sim.run().unwrap();
    let fh = c.fs.open("out");
    assert_eq!(fh.covered_bytes(), 3 * n as u64 * 5 * 800);
    assert_eq!(fh.overlap_bytes(), 0);
    assert_eq!(fh.extent_count(), 3);
    assert_eq!(fh.dirty_bytes(), 0);
}

#[test]
fn data_sieve_writes_identical_data() {
    // Same workload as the POSIX/list test: the sieve path must land the
    // same contiguous, non-overlapping coverage.
    let c = cluster(2);
    let fs = c.fs.clone();
    for rank in 0..2 {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        c.sim.spawn(format!("r{rank}"), async move {
            let f = File::open(&comm, &fs, "out", Hints::default());
            let regions = interleaved(rank, 2, 10, 1000);
            f.write_regions(&regions, WriteMethod::DataSieve)
                .await
                .unwrap();
        });
    }
    c.sim.run().unwrap();
    let fh = c.fs.open("out");
    assert_eq!(fh.covered_bytes(), 20_000);
    assert_eq!(fh.overlap_bytes(), 0);
    assert_eq!(fh.extent_count(), 1);
}

#[test]
fn data_sieve_amortizes_requests_but_dirties_holes() {
    // 64 scattered 512B regions within one 512 KiB sieve buffer: one
    // locked read-modify-write replaces 64 independent writes, at the
    // price of caching (and later flushing) the hole bytes too.
    let run = |method: WriteMethod| -> (u64, u64) {
        let c = cluster(1);
        let fs = c.fs.clone();
        let comm = c.world.comm(0);
        c.sim.spawn("r0", async move {
            let f = File::open(&comm, &fs, "out", Hints::default());
            let regions: Vec<Region> = (0..64).map(|i| Region::new(i * 4096, 512)).collect();
            f.write_regions(&regions, method).await.unwrap();
            assert_eq!(f.handle().covered_bytes(), 64 * 512);
            assert_eq!(f.handle().overlap_bytes(), 0);
        });
        c.sim.run().unwrap();
        (c.fs.stats().requests, c.fs.open("out").dirty_bytes())
    };
    let (req_posix, dirty_posix) = run(WriteMethod::Posix);
    let (req_sieve, dirty_sieve) = run(WriteMethod::DataSieve);
    assert!(
        req_sieve < req_posix,
        "sieve {req_sieve} vs posix {req_posix}"
    );
    assert_eq!(dirty_posix, 64 * 512);
    // The sieved block spans first to last byte written: 63*4096 + 512.
    assert_eq!(dirty_sieve, 63 * 4096 + 512);
}

#[test]
fn data_sieve_respects_buffer_size_hint() {
    // A 4 KiB sieve buffer forces the 256 KiB span into many blocks; the
    // result must still be exact.
    let c = cluster(1);
    let fs = c.fs.clone();
    let comm = c.world.comm(0);
    c.sim.spawn("r0", async move {
        let hints = Hints {
            ind_wr_buffer_size: 4096,
            ..Hints::default()
        };
        let f = File::open(&comm, &fs, "out", hints);
        let regions: Vec<Region> = (0..64).map(|i| Region::new(i * 4096, 512)).collect();
        f.write_regions(&regions, WriteMethod::DataSieve)
            .await
            .unwrap();
        assert_eq!(f.handle().covered_bytes(), 64 * 512);
        assert_eq!(f.handle().overlap_bytes(), 0);
        // Blocks never span past the buffer, so no hole bytes dirty the
        // cache: each 512B region is its own gapless block.
        assert_eq!(f.handle().dirty_bytes(), 64 * 512);
    });
    c.sim.run().unwrap();
}

#[test]
fn data_sieve_contention_serializes_but_stays_correct() {
    // Two ranks sieve interleaved regions whose covering blocks overlap:
    // the byte-range lock serializes the read-modify-write cycles, so
    // coverage stays exact and overlap stays zero.
    let n = 2;
    let c = cluster(n);
    let fs = c.fs.clone();
    for rank in 0..n {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        c.sim.spawn(format!("r{rank}"), async move {
            let f = File::open(&comm, &fs, "out", Hints::default());
            let regions = interleaved(rank, n, 16, 256);
            f.write_regions(&regions, WriteMethod::DataSieve)
                .await
                .unwrap();
        });
    }
    c.sim.run().unwrap();
    let fh = c.fs.open("out");
    assert_eq!(fh.covered_bytes(), (n * 16 * 256) as u64);
    assert_eq!(fh.overlap_bytes(), 0);
    assert_eq!(fh.extent_count(), 1);
}

#[test]
fn collective_failure_is_agreed_by_all_ranks() {
    use s3a_faults::{FaultLog, FaultParams, FaultSchedule, ServerOutage};
    // Server 0 is down past every retry; only aggregator ranks touch the
    // file system, but *every* rank must leave the collective with the
    // same error, or the callers' next collective would mismatch.
    let n = 4;
    let c = cluster(n);
    let params = FaultParams {
        server_outages: vec![ServerOutage {
            server: 0,
            from: SimTime::ZERO,
            until: SimTime::from_secs(1000),
        }],
        io_retry_backoff: SimTime::from_millis(1),
        max_io_retries: 2,
        ..FaultParams::default()
    };
    c.fs.set_faults(FaultSchedule::new(params), FaultLog::new());
    let fs = c.fs.clone();
    let outcomes = Rc::new(std::cell::RefCell::new(Vec::new()));
    for rank in 0..n {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        let out = Rc::clone(&outcomes);
        c.sim.spawn(format!("r{rank}"), async move {
            let hints = Hints {
                cb_nodes: 2,
                ..Hints::default()
            };
            let f = File::open(&comm, &fs, "out", hints);
            let regions = interleaved(rank, n, 8, 700);
            let r = f.write_at_all(&regions).await;
            out.borrow_mut().push((rank, r));
        });
    }
    c.sim.run().unwrap();
    let outcomes = outcomes.borrow();
    assert_eq!(outcomes.len(), n);
    let first = outcomes[0].1;
    assert!(first.is_err(), "collective should fail: {first:?}");
    for (rank, r) in outcomes.iter() {
        assert_eq!(*r, first, "rank {rank} disagrees on the outcome");
    }
}

#[test]
fn collective_and_user_traffic_do_not_cross_match() {
    let n = 2;
    let c = cluster(n);
    let fs = c.fs.clone();
    for rank in 0..n {
        let comm = c.world.comm(rank);
        let fs = fs.clone();
        c.sim.spawn(format!("r{rank}"), async move {
            // Application message with a tag the collectives also derive
            // from sequence 0, sent before the file is opened.
            if rank == 0 {
                comm.send(1, 3, 777u32, 8).await;
            }
            let f = File::open(&comm, &fs, "out", Hints::default());
            let regions = interleaved(rank, n, 4, 256);
            f.write_at_all(&regions).await.unwrap();
            if rank == 1 {
                let m = comm.recv(0, 3).await;
                assert_eq!(m.downcast::<u32>(), 777);
            }
        });
    }
    c.sim.run().unwrap();
    assert_eq!(c.fs.open("out").covered_bytes(), 2 * 4 * 256);
}
