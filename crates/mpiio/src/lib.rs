//! # s3a-mpiio — a ROMIO-like MPI-IO layer
//!
//! Sits between the application and [`s3a_pvfs`], mirroring the I/O paths
//! the paper exercises through ROMIO:
//!
//! * [`File::write_at`] — independent contiguous write (the MW master's
//!   path);
//! * [`File::write_regions`] with [`WriteMethod::Posix`] — noncontiguous
//!   data written one region at a time, "the `MPI_Write()` call without
//!   optimization" (WW-POSIX);
//! * [`File::write_regions`] with [`WriteMethod::ListIo`] — PVFS2 native
//!   list I/O, batching an offset/length list per file-system request
//!   (WW-List);
//! * [`File::write_regions`] with [`WriteMethod::DataSieve`] — ROMIO's
//!   actual independent noncontiguous path (WW-DS): lock a covering
//!   block of at most `ind_wr_buffer_size` bytes, read it back, patch
//!   the holes, and write it out as one contiguous request;
//! * [`File::write_at_all`] — collective two-phase I/O (WW-Coll):
//!   allgather of access extents, partition of the aggregate range into
//!   file domains owned by `cb_nodes` aggregator ranks, `cb_buffer_size`-
//!   sized exchange+write rounds, and the implicit synchronization that
//!   the paper identifies as collective I/O's hidden cost.
//!
//! A [`File`] owns an internal sub-communicator (as real MPI-IO
//! implementations duplicate the user communicator), so collective file
//! traffic can never cross-match application messages.

use std::rc::Rc;

use s3a_mpi::Comm;
use s3a_net::EndpointId;
use s3a_obs::{ObsSink, Track};
use s3a_pvfs::{FileHandle, FileSystem, PvfsError, Region, SimSanitizer};

/// Communicator size above which the collective paths switch to their
/// scalable variants, the way MPICH selects collective algorithms by
/// communicator size. Below the threshold the historical algorithms run
/// unchanged (every checked-in reference run has ≤ 96 ranks, so their
/// bytes are preserved); above it:
///
/// * the extent exchange becomes gather + broadcast (O(n) messages,
///   log-depth) instead of the ring allgather's n² message storm;
/// * only aggregator ranks — the only writers in two-phase I/O — sync
///   after a collective, instead of all n ranks flooding every server.
pub const LARGE_COLL_RANKS: usize = 128;

/// Point-to-point tag for the aggregator table hand-off in the
/// large-comm extent exchange. File communicators carry no other user
/// traffic, and consecutive hand-offs between the same pair cannot
/// cross-match (per-pair delivery is non-overtaking).
const TABLE_TAG: s3a_mpi::Tag = 7001;

/// How [`File::write_regions`] maps a noncontiguous region list onto
/// file-system requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMethod {
    /// One independent contiguous write per region, issued sequentially.
    Posix,
    /// One operation carrying the full region list (PVFS2 list I/O).
    ListIo,
    /// ROMIO data sieving: per covering block of at most
    /// `ind_wr_buffer_size` bytes, lock the block, read it back, patch
    /// the holes, and write it out as one contiguous request.
    DataSieve,
}

/// MPI-IO hints controlling collective buffering (the `cb_*` hints ROMIO
/// reads from the info object).
#[derive(Debug, Clone, Copy)]
pub struct Hints {
    /// Number of aggregator ranks for two-phase I/O. ROMIO defaults to one
    /// per node; the caller supplies the value (0 = every rank).
    pub cb_nodes: usize,
    /// Bytes of each aggregator's exchange buffer per two-phase round.
    pub cb_buffer_size: u64,
    /// Bytes of the data-sieving buffer for independent noncontiguous
    /// writes (ROMIO's `ind_wr_buffer_size`, default 512 KiB). Each
    /// [`WriteMethod::DataSieve`] covering block is at most this large.
    pub ind_wr_buffer_size: u64,
}

impl Default for Hints {
    fn default() -> Self {
        Hints {
            cb_nodes: 0,
            cb_buffer_size: 4 * 1024 * 1024,
            ind_wr_buffer_size: 512 * 1024,
        }
    }
}

/// An open MPI-IO file on one rank.
pub struct File {
    comm: Comm,
    fh: FileHandle,
    hints: Hints,
    ep: EndpointId,
    /// Observability sink inherited from the file system at open time.
    obs: ObsSink,
    /// Race sanitizer inherited from the file system at open time.
    san: SimSanitizer,
    /// This rank's world rank — the track collective spans land on.
    world_rank: usize,
}

impl File {
    /// Collectively open `name` on `fs`. Every member of `comm` must call
    /// `open` with the same name and hints; each member gets its own
    /// `File` whose internal communicator is a duplicate of `comm`.
    pub fn open(comm: &Comm, fs: &FileSystem, name: &str, hints: Hints) -> File {
        let members: Vec<usize> = (0..comm.size()).collect();
        let dup = comm.sub(&members, &format!("mpiio:{name}"));
        let ep = comm.endpoint();
        let world_rank = comm.world_rank(comm.rank());
        File {
            comm: dup,
            fh: fs.open(name),
            hints,
            ep,
            obs: fs.obs(),
            san: fs.sanitizer(),
            world_rank,
        }
    }

    /// The rank of this process in the file's communicator.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// The underlying store handle (for verification, or for issuing
    /// independent I/O from a helper task).
    pub fn handle(&self) -> &FileHandle {
        &self.fh
    }

    /// The fabric endpoint this rank's file traffic uses.
    pub fn endpoint(&self) -> EndpointId {
        self.ep
    }

    /// Independent contiguous write (`MPI_File_write_at`).
    pub async fn write_at(&self, offset: u64, len: u64) -> Result<(), PvfsError> {
        self.fh.write_contiguous(self.ep, offset, len).await
    }

    /// Independent noncontiguous write of `regions` using `method`.
    pub async fn write_regions(
        &self,
        regions: &[Region],
        method: WriteMethod,
    ) -> Result<(), PvfsError> {
        match method {
            WriteMethod::Posix => {
                for r in regions {
                    self.fh.write_contiguous(self.ep, r.offset, r.len).await?;
                }
                Ok(())
            }
            WriteMethod::ListIo => self.fh.write_regions(self.ep, regions).await,
            WriteMethod::DataSieve => self.write_data_sieved(regions).await,
        }
    }

    /// ROMIO-style data sieving for an independent noncontiguous write.
    ///
    /// The region list is sorted and merged, then walked in covering
    /// blocks of at most `ind_wr_buffer_size` bytes. For each block the
    /// rank takes a byte-range lock (other sievers patching the same
    /// block would resurrect stale hole bytes), reads the block back if
    /// it has holes, and writes it out as one contiguous request. The
    /// win is request amortization when regions are dense; the cost is
    /// read-back traffic for the holes plus lock serialization.
    async fn write_data_sieved(&self, regions: &[Region]) -> Result<(), PvfsError> {
        let mut sorted: Vec<Region> = regions.iter().copied().filter(|r| r.len > 0).collect();
        if sorted.is_empty() {
            return Ok(());
        }
        sorted.sort_by_key(|r| r.offset);
        let merged = merge_regions(&sorted);
        let buf = self.hints.ind_wr_buffer_size.max(1);
        let sim = self.comm.sim();
        let mut cur = merged[0].offset;
        let end = merged.last().expect("nonempty").end();
        while cur < end {
            let wend = (cur + buf).min(end);
            let clipped = clip_regions(&merged, cur, wend);
            cur = wend;
            if clipped.is_empty() {
                continue;
            }
            // The covering block spans first data byte to last data byte
            // of this window — ROMIO never sieves past what it writes.
            let first = clipped.first().expect("nonempty");
            let last = clipped.last().expect("nonempty");
            let block = Region::new(first.offset, last.end() - first.offset);
            let data: u64 = clipped.iter().map(|r| r.len).sum();

            let t0 = sim.now();
            let _lock = self.fh.lock_range(self.ep, block.offset, block.len).await;
            let t_lock = sim.now();
            // Holes mean the block carries bytes this rank does not own:
            // read-modify-write. A gapless block skips the read.
            if data < block.len {
                self.fh
                    .read_contiguous(self.ep, block.offset, block.len)
                    .await?;
            }
            let t_read = sim.now();
            self.fh.write_sieved(self.ep, block, &clipped).await?;
            if self.obs.is_recording() {
                let t_write = sim.now();
                let track = Track::Rank(self.world_rank);
                self.obs
                    .span(track, "sieve.lock", t0, t_lock, &[("len", block.len)]);
                if t_read > t_lock {
                    self.obs
                        .span(track, "sieve.read", t_lock, t_read, &[("len", block.len)]);
                }
                self.obs.span(
                    track,
                    "sieve.write",
                    t_read,
                    t_write,
                    &[
                        ("len", block.len),
                        ("data", data),
                        ("holes", block.len - data),
                    ],
                );
                self.obs.add("sieve.blocks", 1);
                self.obs.observe("sieve.hole_bytes", block.len - data);
            }
        }
        Ok(())
    }

    /// Flush to stable storage (`MPI_File_sync`).
    pub async fn sync(&self) -> Result<(), PvfsError> {
        self.fh.sync(self.ep).await
    }

    /// Collective two-phase write (`MPI_File_write_at_all`). Every rank of
    /// the file's communicator must participate, passing its own (possibly
    /// empty) region list. Returns only when the collective completes on
    /// this rank.
    pub async fn write_at_all(&self, my_regions: &[Region]) -> Result<(), PvfsError> {
        self.write_at_all_timed(my_regions).await.map(|_| ())
    }

    /// Effective aggregator count for two-phase I/O on this file's
    /// communicator (`cb_nodes`, clamped; 0 = every rank).
    fn naggs(&self) -> usize {
        let n = self.comm.size();
        if self.hints.cb_nodes == 0 {
            n
        } else {
            self.hints.cb_nodes.min(n)
        }
    }

    /// Phase-1 extent exchange. Small communicators run the historical
    /// ring allgather: every rank learns every rank's access pattern.
    /// Past [`LARGE_COLL_RANKS`] the pattern is gathered at rank 0, the
    /// full table travels point-to-point to the other aggregators only —
    /// they alone consume it (to derive their receive counts) — and the
    /// remaining ranks get just the 16-byte aggregate extent via a
    /// binomial broadcast. That turns n rendezvous transfers of an
    /// O(total-regions) table per collective into `cb_nodes - 1`, which
    /// is what makes collective I/O usable at 10k ranks. Returns this
    /// rank's view of the table (empty on large-comm non-aggregators) and
    /// the aggregate `[lo, hi)` extent (`None` when no rank writes).
    async fn exchange_extents(
        &self,
        my_regions: &[Region],
        desc_bytes: u64,
    ) -> (Rc<Vec<Vec<Region>>>, Option<(u64, u64)>) {
        fn extent_of(all: &[Vec<Region>]) -> Option<(u64, u64)> {
            let lo = all.iter().flatten().map(|r| r.offset).min();
            let hi = all.iter().flatten().map(|r| r.end()).max();
            match (lo, hi) {
                (Some(l), Some(h)) if h > l => Some((l, h)),
                _ => None,
            }
        }
        if self.comm.size() <= LARGE_COLL_RANKS {
            let all = self.comm.allgather(my_regions.to_vec(), desc_bytes).await;
            let extent = extent_of(&all);
            return (Rc::new(all), extent);
        }
        let naggs = self.naggs();
        let me = self.comm.rank();
        let gathered = self.comm.gather(0, my_regions.to_vec(), desc_bytes).await;
        let (table, extent) = match gathered {
            Some(vs) => {
                let total: u64 = vs.iter().map(|v| 16 * v.len() as u64).sum();
                let extent = extent_of(&vs);
                let table = Rc::new(vs);
                // Ship the table to the other aggregators while the
                // extent broadcast fans out.
                let sends: Vec<_> = (1..naggs)
                    .map(|a| self.comm.isend(a, TABLE_TAG, Rc::clone(&table), total))
                    .collect();
                self.comm.bcast(0, Some(extent), 16).await;
                s3a_mpi::waitall_sends(&sends).await;
                (table, extent)
            }
            None if me < naggs => {
                let req = self.comm.irecv(0, TABLE_TAG);
                let extent = self.comm.bcast::<Option<(u64, u64)>>(0, None, 16).await;
                let table = req.wait().await.downcast::<Rc<Vec<Vec<Region>>>>();
                (table, extent)
            }
            None => {
                let extent = self.comm.bcast::<Option<(u64, u64)>>(0, None, 16).await;
                (Rc::new(Vec::new()), extent)
            }
        };
        (table, extent)
    }

    /// Post-collective durability flush. On small communicators every
    /// rank syncs — the historical behavior. Past [`LARGE_COLL_RANKS`]
    /// only aggregator ranks issue the sync: they are the only ranks
    /// that wrote in two-phase I/O, and an all-ranks sync fans n×servers
    /// requests into the file system without adding durability.
    pub async fn sync_collective(&self) -> Result<(), PvfsError> {
        if self.comm.size() <= LARGE_COLL_RANKS || self.comm.rank() < self.naggs() {
            self.sync().await
        } else {
            Ok(())
        }
    }

    /// [`File::write_at_all`], additionally reporting how the time split
    /// between the collective's inherent synchronization (the initial
    /// extent allgather, which blocks until the slowest participant
    /// arrives) and the exchange+write work that follows. This is the
    /// instrumentation the paper's phase analysis needs.
    pub async fn write_at_all_timed(
        &self,
        my_regions: &[Region],
    ) -> Result<CollectiveTiming, PvfsError> {
        let t0 = self.comm.sim().now();
        let n = self.comm.size();
        if self.san.is_armed() {
            // Participation check: a strict subset of ranks entering this
            // collective deadlocks the allgather below; record the entry
            // so the sanitizer can name the missing ranks afterwards.
            self.san
                .collective_enter(self.fh.name(), self.comm.context(), n, self.comm.rank(), t0);
        }
        let naggs = self.naggs();

        // Phase 1: everyone learns everyone's access pattern.
        let desc_bytes = 16 * my_regions.len() as u64;
        let (all_regions, extent) = self.exchange_extents(my_regions, desc_bytes).await;
        let synchronize = self.comm.sim().now() - t0;
        let t1 = self.comm.sim().now();
        if self.obs.is_recording() {
            self.obs.span(
                Track::Rank(self.world_rank),
                "coll.allgather",
                t0,
                t1,
                &[
                    ("my_regions", my_regions.len() as u64),
                    ("desc_bytes", desc_bytes),
                ],
            );
        }

        let (lo, hi) = match extent {
            Some(x) => x,
            None => {
                // Nothing to write anywhere: just synchronize.
                self.comm.barrier().await;
                return Ok(CollectiveTiming {
                    synchronize,
                    exchange_and_write: self.comm.sim().now() - t1,
                });
            }
        };

        // Phase 2: carve the aggregate extent into per-aggregator file
        // domains (aggregators are ranks 0..naggs of the file comm).
        let fd_size = (hi - lo).div_ceil(naggs as u64).max(1);
        let domain = |a: usize| -> (u64, u64) {
            let start = lo + fd_size * a as u64;
            let end = (start + fd_size).min(hi);
            (start.min(hi), end)
        };

        let rounds = fd_size.div_ceil(self.hints.cb_buffer_size).max(1);
        let me = self.comm.rank();
        // An I/O failure must not desynchronize the collective: remember it
        // and keep exchanging until the completion barrier, then report.
        let mut io_result: Result<(), PvfsError> = Ok(());

        for round in 0..rounds {
            // The window of each aggregator's domain handled this round.
            let window = |a: usize| -> (u64, u64) {
                let (ds, de) = domain(a);
                let ws = ds + round * self.hints.cb_buffer_size;
                let we = (ws + self.hints.cb_buffer_size).min(de);
                (ws.min(de), we)
            };

            // What I send to each aggregator: my regions clipped to its
            // window.
            let mut sends: Vec<(usize, Vec<Region>, u64)> = Vec::new();
            for a in 0..naggs {
                let (ws, we) = window(a);
                if we <= ws {
                    continue;
                }
                let clipped = clip_regions(my_regions, ws, we);
                if !clipped.is_empty() {
                    let data: u64 = clipped.iter().map(|r| r.len).sum();
                    let wire = data + 16 * clipped.len() as u64;
                    sends.push((a, clipped, wire));
                }
            }

            // How many ranks will send to me this round (only meaningful
            // if I am an aggregator): derivable from the allgathered
            // access pattern, exactly as each sender derives its sends.
            let recv_count = if me < naggs {
                let (ws, we) = window(me);
                if we <= ws {
                    0
                } else {
                    all_regions
                        .iter()
                        .filter(|regs| !clip_regions(regs, ws, we).is_empty())
                        .count()
                }
            } else {
                0
            };

            let round_start = self.comm.sim().now();
            let send_bytes: u64 = sends.iter().map(|(_, _, wire)| wire).sum();
            let send_count = sends.len() as u64;

            let received = self.comm.alltoallv_sparse(sends, recv_count).await;

            // Phase 3: aggregators coalesce and write their window.
            if me < naggs && !received.is_empty() {
                let mut regions: Vec<Region> =
                    received.into_iter().flat_map(|(_, regs)| regs).collect();
                regions.sort_by_key(|r| r.offset);
                let merged = merge_regions(&regions);
                if let Err(e) = self.fh.write_regions(self.ep, &merged).await {
                    if io_result.is_ok() {
                        io_result = Err(e);
                    }
                }
            }

            if self.obs.is_recording() {
                self.obs.span(
                    Track::Rank(self.world_rank),
                    "coll.round",
                    round_start,
                    self.comm.sim().now(),
                    &[
                        ("round", round),
                        ("cb_nodes", naggs as u64),
                        ("cb_buffer_size", self.hints.cb_buffer_size),
                        ("sends", send_count),
                        ("send_bytes", send_bytes),
                        ("recv_count", recv_count as u64),
                    ],
                );
                self.obs.add("coll.rounds", 1);
                self.obs.observe("coll.exchange_bytes", send_bytes);
            }
        }

        // Collective completion: nobody leaves before the data of every
        // rank has been written, and everybody leaves with the *same*
        // result — a rank that only aggregated successfully must still
        // see its peers' failures, or the callers' next collective would
        // mismatch. The allreduce (gather + bcast) subsumes the barrier;
        // the rank-order fold makes the agreed error deterministic (the
        // lowest-ranked failure wins).
        let agreed = self
            .comm
            .allreduce(io_result.err(), 8, |a, b| a.or(b))
            .await;
        if let Some(e) = agreed {
            return Err(e);
        }
        Ok(CollectiveTiming {
            synchronize,
            exchange_and_write: self.comm.sim().now() - t1,
        })
    }
}

/// Where the time of one [`File::write_at_all_timed`] call went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveTiming {
    /// Waiting in the initial extent exchange for the slowest participant
    /// — the inherent synchronization cost of collective I/O.
    pub synchronize: s3a_des::SimTime,
    /// Data exchange, aggregator writes, and the completion barrier.
    pub exchange_and_write: s3a_des::SimTime,
}

/// Clip `regions` to the half-open window `[ws, we)`.
fn clip_regions(regions: &[Region], ws: u64, we: u64) -> Vec<Region> {
    regions
        .iter()
        .filter_map(|r| {
            let s = r.offset.max(ws);
            let e = r.end().min(we);
            if e > s {
                Some(Region::new(s, e - s))
            } else {
                None
            }
        })
        .collect()
}

/// Merge a sorted region list, coalescing adjacent/overlapping entries.
fn merge_regions(sorted: &[Region]) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::new();
    for &r in sorted {
        if let Some(last) = out.last_mut() {
            if r.offset <= last.end() {
                let end = last.end().max(r.end());
                last.len = end - last.offset;
                continue;
            }
        }
        out.push(r);
    }
    out
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for File {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("File").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_keeps_inner_parts() {
        let regs = [Region::new(0, 10), Region::new(20, 10), Region::new(40, 10)];
        assert_eq!(
            clip_regions(&regs, 5, 45),
            vec![Region::new(5, 5), Region::new(20, 10), Region::new(40, 5)]
        );
        assert!(clip_regions(&regs, 10, 20).is_empty());
        assert_eq!(clip_regions(&regs, 0, 100), regs.to_vec());
    }

    #[test]
    fn merge_coalesces_adjacent_and_overlapping() {
        let regs = [
            Region::new(0, 10),
            Region::new(10, 5),
            Region::new(20, 5),
            Region::new(22, 10),
        ];
        assert_eq!(
            merge_regions(&regs),
            vec![Region::new(0, 15), Region::new(20, 12)]
        );
    }

    #[test]
    fn merge_empty_is_empty() {
        assert!(merge_regions(&[]).is_empty());
    }
}
