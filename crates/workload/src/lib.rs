//! # s3a-workload — sequence-search workload generation
//!
//! Synthesizes the data-dependent part of a parallel sequence search the
//! way S3aSim does: box histograms describe query and database sequence
//! lengths (with NT-database presets matching the paper's §3.3
//! characterization), and a seeded generator pre-computes every hit's
//! size and score so results are identical regardless of process count or
//! scheduling.

mod arrivals;
mod generate;
mod histogram;

pub use arrivals::{Arrival, ArrivalProcess};
pub use generate::{Hit, QueryWork, Workload, WorkloadParams};
pub use histogram::{Box, BoxHistogram};
