//! Pre-generated search workloads.
//!
//! Everything data-dependent — query lengths, per-query result counts,
//! which fragment each result matches, result sizes and scores — is drawn
//! up front from one seed, **independently of how the simulation later
//! schedules tasks**. This mirrors the paper's observation that S3aSim
//! results "are always identical since they are pseudo-randomly
//! generated" no matter how many processors run the search.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::histogram::BoxHistogram;

/// Parameters describing a search workload (paper §3.3 defaults).
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Number of input queries (paper: 20).
    pub queries: usize,
    /// Number of database fragments (paper: 128).
    pub fragments: usize,
    /// Query-length distribution.
    pub query_hist: BoxHistogram,
    /// Database-sequence-length distribution.
    pub db_hist: BoxHistogram,
    /// Minimum results per query over the whole database (paper: 1000).
    pub min_results: u64,
    /// Maximum results per query (paper: 2000).
    pub max_results: u64,
    /// Minimum size of one formatted result record (bytes).
    pub min_result_size: u64,
    /// Total size of the sequence database on the file system, in bytes
    /// (used by query-segmentation runs to model reloading a database
    /// that exceeds worker memory; the default approximates the 2005-era
    /// NT database).
    pub database_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            queries: 20,
            fragments: 128,
            query_hist: BoxHistogram::nt_queries(),
            db_hist: BoxHistogram::nt_database(),
            min_results: 1000,
            max_results: 2000,
            min_result_size: 128,
            database_bytes: 2 * 1024 * 1024 * 1024,
            // Chosen so the default workload emits ~208 MB of results —
            // the output volume the paper reports per data point.
            seed: 152,
        }
    }
}

/// One search hit: a formatted-output size and an alignment score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Bytes this hit contributes to the output file (query sequence,
    /// database sequence, and the alignment between them — up to three
    /// times the longer of the two, per the paper's model).
    pub size: u64,
    /// Alignment score; output is sorted by descending score.
    pub score: u64,
}

/// The pre-generated work for one query.
#[derive(Debug, Clone)]
pub struct QueryWork {
    /// Length of the query sequence in bytes.
    pub query_len: u64,
    /// Hits per fragment, each list sorted by descending score
    /// (workers return sorted results to keep the master's merge cheap).
    pub hits: Vec<Vec<Hit>>,
}

impl QueryWork {
    /// Total output bytes this query produces.
    pub fn total_bytes(&self) -> u64 {
        self.hits.iter().flatten().map(|h| h.size).sum()
    }

    /// Total hits across all fragments.
    pub fn total_hits(&self) -> usize {
        self.hits.iter().map(Vec::len).sum()
    }

    /// Output bytes produced by searching one fragment.
    pub fn fragment_bytes(&self, fragment: usize) -> u64 {
        self.hits[fragment].iter().map(|h| h.size).sum()
    }
}

/// A complete, schedule-independent workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Per-query work, in submission order.
    pub queries: Vec<QueryWork>,
    /// The parameters it was generated from.
    pub params: WorkloadParams,
}

impl Workload {
    /// Generate the workload for `params`.
    pub fn generate(params: &WorkloadParams) -> Workload {
        assert!(params.queries > 0, "need at least one query");
        assert!(params.fragments > 0, "need at least one fragment");
        assert!(
            params.min_results <= params.max_results,
            "result-count bounds inverted"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        let queries = (0..params.queries)
            .map(|_| Self::generate_query(params, &mut rng))
            .collect();
        Workload {
            queries,
            params: params.clone(),
        }
    }

    fn generate_query(params: &WorkloadParams, rng: &mut StdRng) -> QueryWork {
        let query_len = params.query_hist.sample(rng);
        let nresults = rng.random_range(params.min_results..=params.max_results);
        let mut hits: Vec<Vec<Hit>> = vec![Vec::new(); params.fragments];
        for _ in 0..nresults {
            let fragment = rng.random_range(0..params.fragments);
            let db_len = params.db_hist.sample(rng);
            let cap = 3 * query_len.max(db_len);
            let size = if cap <= params.min_result_size {
                params.min_result_size
            } else {
                rng.random_range(params.min_result_size..=cap)
            };
            let score = rng.random::<u64>();
            hits[fragment].push(Hit { size, score });
        }
        for frag in &mut hits {
            // (score desc, size desc): the order search tools emit results
            // in, and the tie-break the offset-assignment protocol relies
            // on (remaining ties have equal sizes, so layout is unaffected).
            frag.sort_by(|a, b| b.score.cmp(&a.score).then(b.size.cmp(&a.size)));
        }
        QueryWork { query_len, hits }
    }

    /// Total output bytes across all queries.
    pub fn total_bytes(&self) -> u64 {
        self.queries.iter().map(QueryWork::total_bytes).sum()
    }

    /// Total hits across all queries.
    pub fn total_hits(&self) -> usize {
        self.queries.iter().map(QueryWork::total_hits).sum()
    }

    /// Number of (query, fragment) tasks the master will schedule.
    pub fn task_count(&self) -> usize {
        self.queries.len() * self.params.fragments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workload_matches_paper_scale() {
        let w = Workload::generate(&WorkloadParams::default());
        assert_eq!(w.queries.len(), 20);
        assert_eq!(w.task_count(), 20 * 128);
        let hits = w.total_hits() as u64;
        assert!((20_000..=40_000).contains(&hits), "total hits {hits}");
        // Paper: each run produced roughly 208 MB of output.
        let mb = w.total_bytes() as f64 / 1e6;
        assert!(
            (120.0..320.0).contains(&mb),
            "total output {mb:.1} MB should be in the paper's ~208 MB ballpark"
        );
    }

    #[test]
    fn per_query_result_counts_bounded() {
        let w = Workload::generate(&WorkloadParams::default());
        for q in &w.queries {
            let n = q.total_hits() as u64;
            assert!((1000..=2000).contains(&n), "hits per query {n}");
        }
    }

    #[test]
    fn hits_sorted_by_descending_score_per_fragment() {
        let w = Workload::generate(&WorkloadParams::default());
        for q in &w.queries {
            for frag in &q.hits {
                for pair in frag.windows(2) {
                    assert!(pair[0].score >= pair[1].score);
                }
            }
        }
    }

    #[test]
    fn result_sizes_respect_minimum() {
        let params = WorkloadParams {
            min_result_size: 500,
            ..WorkloadParams::default()
        };
        let w = Workload::generate(&params);
        for q in &w.queries {
            for frag in &q.hits {
                for h in frag {
                    assert!(h.size >= 500);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&WorkloadParams::default());
        let b = Workload::generate(&WorkloadParams::default());
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.queries[0].hits, b.queries[0].hits);
        let c = Workload::generate(&WorkloadParams {
            seed: 999,
            ..WorkloadParams::default()
        });
        assert_ne!(a.total_bytes(), c.total_bytes());
    }

    #[test]
    fn fragment_bytes_sum_to_query_bytes() {
        let w = Workload::generate(&WorkloadParams::default());
        for q in &w.queries {
            let sum: u64 = (0..128).map(|f| q.fragment_bytes(f)).sum();
            assert_eq!(sum, q.total_bytes());
        }
    }

    #[test]
    fn tiny_workload_generates() {
        let params = WorkloadParams {
            queries: 1,
            fragments: 1,
            min_results: 1,
            max_results: 1,
            ..WorkloadParams::default()
        };
        let w = Workload::generate(&params);
        assert_eq!(w.total_hits(), 1);
    }

    #[test]
    fn degenerate_histograms_respected() {
        let params = WorkloadParams {
            query_hist: BoxHistogram::constant(100),
            db_hist: BoxHistogram::constant(10),
            min_result_size: 64,
            min_results: 10,
            max_results: 10,
            queries: 3,
            fragments: 4,
            database_bytes: 1 << 20,
            seed: 5,
        };
        let w = Workload::generate(&params);
        for q in &w.queries {
            assert_eq!(q.query_len, 100);
            for frag in &q.hits {
                for h in frag {
                    assert!(h.size >= 64 && h.size <= 300);
                }
            }
        }
    }
}
