//! Box histograms for sequence-length distributions.
//!
//! S3aSim describes its inputs with "box histograms": a set of value
//! ranges with relative weights; sampling picks a box by weight, then a
//! value uniformly inside it. The presets approximate the NCBI NT
//! database the paper characterizes (min 6 B, max ≈ 43 MB, mean ≈ 4401 B)
//! and are used for both database sequences and the 20-query input set
//! (the paper reuses the same histogram; 20 samples ≈ 86 KB of queries).

use rand::{Rng, RngExt};

/// One box: values in `[lo, hi)` with relative `weight`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Box {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
    /// Relative weight (need not be normalized).
    pub weight: f64,
}

/// A weighted-box distribution over `u64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxHistogram {
    boxes: Vec<Box>,
    total_weight: f64,
}

impl BoxHistogram {
    /// Build a histogram from boxes. Panics on empty input, inverted
    /// bounds, or non-positive weights.
    pub fn new(boxes: Vec<Box>) -> Self {
        assert!(!boxes.is_empty(), "histogram needs at least one box");
        for b in &boxes {
            assert!(b.lo < b.hi, "box bounds inverted: [{}, {})", b.lo, b.hi);
            assert!(
                b.weight.is_finite() && b.weight > 0.0,
                "box weight must be positive"
            );
        }
        let total_weight = boxes.iter().map(|b| b.weight).sum();
        BoxHistogram {
            boxes,
            total_weight,
        }
    }

    /// A single uniform range.
    pub fn uniform(lo: u64, hi: u64) -> Self {
        Self::new(vec![Box {
            lo,
            hi,
            weight: 1.0,
        }])
    }

    /// A point mass at `v`.
    pub fn constant(v: u64) -> Self {
        Self::new(vec![Box {
            lo: v,
            hi: v + 1,
            weight: 1.0,
        }])
    }

    /// Draw one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut pick = rng.random_range(0.0..self.total_weight);
        for b in &self.boxes {
            if pick < b.weight {
                return rng.random_range(b.lo..b.hi);
            }
            pick -= b.weight;
        }
        // Floating-point edge: fall back to the last box.
        let last = self.boxes.last().expect("nonempty");
        rng.random_range(last.lo..last.hi)
    }

    /// Smallest producible value.
    pub fn min(&self) -> u64 {
        self.boxes.iter().map(|b| b.lo).min().expect("nonempty")
    }

    /// Largest producible value (inclusive).
    pub fn max(&self) -> u64 {
        self.boxes.iter().map(|b| b.hi - 1).max().expect("nonempty")
    }

    /// Expected value (each box contributes its midpoint).
    pub fn mean(&self) -> f64 {
        self.boxes
            .iter()
            .map(|b| b.weight * (b.lo + b.hi - 1) as f64 / 2.0)
            .sum::<f64>()
            / self.total_weight
    }

    /// NT-database-like sequence lengths: min 6 B, max ≈ 43 MB, mean
    /// ≈ 4.4 KB (paper §3.3). The long tail is what creates the
    /// compute-time variance the paper's sync analysis leans on.
    pub fn nt_database() -> Self {
        Self::new(vec![
            Box {
                lo: 6,
                hi: 200,
                weight: 0.14,
            },
            Box {
                lo: 200,
                hi: 1_000,
                weight: 0.30,
            },
            Box {
                lo: 1_000,
                hi: 2_000,
                weight: 0.25,
            },
            Box {
                lo: 2_000,
                hi: 4_000,
                weight: 0.16,
            },
            Box {
                lo: 4_000,
                hi: 8_000,
                weight: 0.09,
            },
            Box {
                lo: 8_000,
                hi: 16_000,
                weight: 0.04,
            },
            Box {
                lo: 16_000,
                hi: 65_536,
                weight: 0.0145,
            },
            Box {
                lo: 65_536,
                hi: 1_048_576,
                weight: 0.001,
            },
            Box {
                lo: 1_048_576,
                hi: 43_000_000,
                weight: 0.00002,
            },
        ])
    }

    /// The paper's query set uses the same NT histogram (20 draws ≈ 86 KB).
    pub fn nt_queries() -> Self {
        Self::nt_database()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_sampling_stays_in_bounds() {
        let h = BoxHistogram::uniform(10, 20);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = h.sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn constant_always_returns_value() {
        let h = BoxHistogram::constant(42);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(h.sample(&mut rng), 42);
        }
    }

    #[test]
    fn weights_bias_selection() {
        let h = BoxHistogram::new(vec![
            Box {
                lo: 0,
                hi: 10,
                weight: 9.0,
            },
            Box {
                lo: 100,
                hi: 110,
                weight: 1.0,
            },
        ]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let high = (0..n).filter(|_| h.sample(&mut rng) >= 100).count();
        let frac = high as f64 / n as f64;
        assert!((0.07..0.13).contains(&frac), "high fraction {frac}");
    }

    #[test]
    fn nt_histogram_matches_paper_characteristics() {
        let h = BoxHistogram::nt_database();
        assert_eq!(h.min(), 6);
        assert!(h.max() > 40_000_000, "max {}", h.max());
        let mean = h.mean();
        assert!(
            (3_000.0..6_500.0).contains(&mean),
            "NT mean sequence length {mean} outside the paper's ~4401 ballpark"
        );
        // Empirical mean of 20 queries ≈ 86 KB total: check the analytic
        // mean implies 20 queries land in tens-of-KB territory.
        let total20 = mean * 20.0;
        assert!(
            (60_000.0..130_000.0).contains(&total20),
            "20 queries ≈ {total20} B"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let h = BoxHistogram::nt_database();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| h.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_box_rejected() {
        BoxHistogram::new(vec![Box {
            lo: 5,
            hi: 5,
            weight: 1.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "at least one box")]
    fn empty_histogram_rejected() {
        BoxHistogram::new(vec![]);
    }
}
