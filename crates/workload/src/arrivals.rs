//! Open-loop arrival processes for service-mode runs.
//!
//! A batch run hands the simulator every query at time zero; a service
//! run instead models clients submitting queries over virtual time. The
//! arrival process assigns each pre-generated query an arrival instant
//! and a tenant, drawn up front from one seed — exactly like the rest of
//! the workload, the stream is independent of how the simulation later
//! schedules anything, so service runs replay byte-identically.
//!
//! Three client populations are modeled:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless open-loop traffic at a
//!   constant offered rate (exponential inter-arrival gaps).
//! * [`ArrivalProcess::Bursty`] — a two-state Markov-modulated Poisson
//!   process (MMPP-2): the stream dwells in a base-rate state and a
//!   burst-rate state, switching after exponentially distributed dwell
//!   times.
//! * [`ArrivalProcess::Diurnal`] — a sinusoidal day/night rate swing
//!   between a trough and a peak, sampled by Lewis–Shedler thinning
//!   against the peak rate.
//!
//! All time arithmetic accumulates in integer nanoseconds; floats only
//! appear inside single-gap sampling, so no order-sensitive rounding can
//! leak into the virtual clock.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One client submission: when the query arrives and which tenant sent
/// it. Produced in nondecreasing time order; arrival `i` carries query
/// `i` of the pre-generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant in virtual nanoseconds.
    pub at_ns: u64,
    /// Submitting tenant, in `0..tenants`.
    pub tenant: usize,
}

/// How simulated clients submit queries over virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Constant-rate memoryless traffic: `rate` arrivals per second.
    Poisson {
        /// Offered arrival rate, queries per second.
        rate: f64,
    },
    /// Two-state MMPP: base-rate traffic punctuated by bursts.
    Bursty {
        /// Arrival rate (queries/s) in the quiet state.
        base_rate: f64,
        /// Arrival rate (queries/s) in the burst state.
        burst_rate: f64,
        /// Mean dwell time in each state, seconds (exponentially
        /// distributed).
        mean_dwell: f64,
    },
    /// Sinusoidal day/night swing between `trough_rate` and `peak_rate`
    /// with the given period (seconds).
    Diurnal {
        /// Lowest arrival rate (queries/s), at the start of each period.
        trough_rate: f64,
        /// Highest arrival rate (queries/s), half a period in.
        peak_rate: f64,
        /// Cycle length in seconds.
        period: f64,
    },
}

/// Convert a positive gap in seconds to whole nanoseconds.
fn gap_to_ns(secs: f64) -> u64 {
    (secs * 1e9) as u64
}

/// One exponential gap at `rate` events per second.
fn exp_gap_ns(rng: &mut StdRng, rate: f64) -> u64 {
    let u: f64 = rng.random_range(0.0..1.0);
    // 1 - u is in (0, 1], so the log is finite and the gap nonnegative.
    gap_to_ns(-(1.0 - u).ln() / rate)
}

impl ArrivalProcess {
    /// Short label used in reports and CSV rows.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }

    /// Long-run mean offered rate, queries per second (reporting only).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            // Equal mean dwell in both states: the average of the rates.
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                ..
            } => 0.5 * (base_rate + burst_rate),
            ArrivalProcess::Diurnal {
                trough_rate,
                peak_rate,
                ..
            } => 0.5 * (trough_rate + peak_rate),
        }
    }

    /// Draw `count` arrivals for `tenants` tenants from `seed`.
    ///
    /// The result is sorted by time (ties keep query order) and depends
    /// only on the arguments — never on wall-clock time or scheduling.
    pub fn generate(&self, count: usize, tenants: usize, seed: u64) -> Vec<Arrival> {
        assert!(tenants > 0, "need at least one tenant");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(count);
        let mut t_ns: u64 = 0;

        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                for _ in 0..count {
                    t_ns = t_ns.saturating_add(exp_gap_ns(&mut rng, rate));
                    out.push(Arrival {
                        at_ns: t_ns,
                        tenant: rng.random_range(0..tenants),
                    });
                }
            }
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                mean_dwell,
            } => {
                assert!(
                    base_rate > 0.0 && burst_rate > 0.0 && mean_dwell > 0.0,
                    "bursty parameters must be positive"
                );
                let mut in_burst = false;
                let mut dwell_left = exp_gap_ns(&mut rng, 1.0 / mean_dwell);
                while out.len() < count {
                    let rate = if in_burst { burst_rate } else { base_rate };
                    let gap = exp_gap_ns(&mut rng, rate);
                    if gap <= dwell_left {
                        // The next arrival lands inside the current state.
                        dwell_left -= gap;
                        t_ns = t_ns.saturating_add(gap);
                        out.push(Arrival {
                            at_ns: t_ns,
                            tenant: rng.random_range(0..tenants),
                        });
                    } else {
                        // The state flips first; restart the gap in the
                        // new state (the exponential is memoryless, so
                        // discarding the partial gap is exact).
                        t_ns = t_ns.saturating_add(dwell_left);
                        dwell_left = exp_gap_ns(&mut rng, 1.0 / mean_dwell);
                        in_burst = !in_burst;
                    }
                }
            }
            ArrivalProcess::Diurnal {
                trough_rate,
                peak_rate,
                period,
            } => {
                assert!(
                    trough_rate > 0.0 && peak_rate > 0.0 && period > 0.0,
                    "diurnal parameters must be positive"
                );
                // Lewis–Shedler thinning against the majorant rate.
                let majorant = peak_rate.max(trough_rate);
                let lo = peak_rate.min(trough_rate);
                let swing = majorant - lo;
                while out.len() < count {
                    t_ns = t_ns.saturating_add(exp_gap_ns(&mut rng, majorant));
                    let phase = (t_ns as f64 / 1e9) / period;
                    let rate_now =
                        lo + swing * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                    let u: f64 = rng.random_range(0.0..1.0);
                    if u * majorant < rate_now {
                        out.push(Arrival {
                            at_ns: t_ns,
                            tenant: rng.random_range(0..tenants),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn procs() -> [ArrivalProcess; 3] {
        [
            ArrivalProcess::Poisson { rate: 50.0 },
            ArrivalProcess::Bursty {
                base_rate: 20.0,
                burst_rate: 200.0,
                mean_dwell: 0.5,
            },
            ArrivalProcess::Diurnal {
                trough_rate: 10.0,
                peak_rate: 100.0,
                period: 4.0,
            },
        ]
    }

    #[test]
    fn same_seed_same_stream() {
        for p in procs() {
            let a = p.generate(200, 3, 42);
            let b = p.generate(200, 3, 42);
            assert_eq!(a, b, "{}", p.label());
            let c = p.generate(200, 3, 43);
            assert_ne!(a, c, "{} must depend on the seed", p.label());
        }
    }

    #[test]
    fn streams_are_sorted_and_tenants_in_range() {
        for p in procs() {
            let s = p.generate(500, 4, 7);
            assert_eq!(s.len(), 500);
            for w in s.windows(2) {
                assert!(w[0].at_ns <= w[1].at_ns, "{} out of order", p.label());
            }
            assert!(s.iter().all(|a| a.tenant < 4));
            // Every tenant shows up over 500 draws.
            for t in 0..4 {
                assert!(s.iter().any(|a| a.tenant == t), "tenant {t} never drew");
            }
        }
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let p = ArrivalProcess::Poisson { rate: 100.0 };
        let s = p.generate(2000, 1, 9);
        let span_secs = s.last().unwrap().at_ns as f64 / 1e9;
        let measured = 2000.0 / span_secs;
        assert!(
            (60.0..140.0).contains(&measured),
            "measured rate {measured}"
        );
    }

    #[test]
    fn bursty_has_heavier_gap_tail_than_poisson_of_same_mean() {
        let mean = 60.0;
        let pois = ArrivalProcess::Poisson { rate: mean }.generate(2000, 1, 5);
        let burst = ArrivalProcess::Bursty {
            base_rate: 20.0,
            burst_rate: 100.0,
            mean_dwell: 0.25,
        }
        .generate(2000, 1, 5);
        let max_gap = |s: &[Arrival]| s.windows(2).map(|w| w[1].at_ns - w[0].at_ns).max().unwrap();
        assert!(max_gap(&burst) > max_gap(&pois));
    }

    #[test]
    fn labels_and_mean_rates() {
        let [p, b, d] = procs();
        assert_eq!(p.label(), "poisson");
        assert_eq!(b.label(), "bursty");
        assert_eq!(d.label(), "diurnal");
        assert_eq!(p.mean_rate(), 50.0);
        assert_eq!(b.mean_rate(), 110.0);
        assert_eq!(d.mean_rate(), 55.0);
    }
}
