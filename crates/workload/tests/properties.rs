//! Property-based tests for workload generation: structural invariants
//! hold for arbitrary parameter combinations.

use proptest::prelude::*;

use s3a_workload::{Box, BoxHistogram, Workload, WorkloadParams};

fn histogram_strategy() -> impl Strategy<Value = BoxHistogram> {
    prop::collection::vec((1u64..100_000, 1u64..50_000, 1u32..100), 1..6).prop_map(|boxes| {
        BoxHistogram::new(
            boxes
                .into_iter()
                .map(|(lo, width, w)| Box {
                    lo,
                    hi: lo + width,
                    weight: w as f64,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Samples always fall inside the histogram's support.
    #[test]
    fn samples_within_support(h in histogram_strategy(), seed in 0u64..10_000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let v = h.sample(&mut rng);
            prop_assert!(v >= h.min() && v <= h.max(), "{v} outside [{}, {}]", h.min(), h.max());
        }
    }

    /// Workload invariants for arbitrary shapes: hit counts bounded per
    /// query, sizes respect the minimum and the 3x cap, lists sorted.
    #[test]
    fn workload_invariants(
        queries in 1usize..8,
        fragments in 1usize..40,
        min_r in 1u64..50,
        extra in 0u64..100,
        min_size in 1u64..4096,
        seed in 0u64..1_000_000,
    ) {
        let params = WorkloadParams {
            queries,
            fragments,
            query_hist: BoxHistogram::uniform(10, 10_000),
            db_hist: BoxHistogram::uniform(10, 10_000),
            min_results: min_r,
            max_results: min_r + extra,
            min_result_size: min_size,
            database_bytes: 1 << 30,
            seed,
        };
        let w = Workload::generate(&params);
        prop_assert_eq!(w.queries.len(), queries);
        prop_assert_eq!(w.task_count(), queries * fragments);
        for q in &w.queries {
            prop_assert_eq!(q.hits.len(), fragments);
            let n = q.total_hits() as u64;
            prop_assert!(n >= min_r && n <= min_r + extra, "hits {n}");
            let cap = 3 * q.query_len.max(params.db_hist.max());
            for frag in &q.hits {
                for pair in frag.windows(2) {
                    // (score desc, size desc)
                    let ord = pair[1].score.cmp(&pair[0].score)
                        .then(pair[1].size.cmp(&pair[0].size));
                    prop_assert_ne!(ord, std::cmp::Ordering::Greater);
                }
                for h in frag {
                    prop_assert!(h.size >= min_size, "size {} < min {min_size}", h.size);
                    prop_assert!(h.size <= cap.max(min_size), "size {} > cap {cap}", h.size);
                }
            }
        }
    }

    /// Same seed, same workload; different seed, (almost surely)
    /// different workload.
    #[test]
    fn seed_determines_everything(seed in 0u64..1_000_000) {
        let params = WorkloadParams {
            queries: 3,
            fragments: 8,
            min_results: 50,
            max_results: 80,
            seed,
            ..WorkloadParams::default()
        };
        let a = Workload::generate(&params);
        let b = Workload::generate(&params);
        prop_assert_eq!(a.total_bytes(), b.total_bytes());
        prop_assert_eq!(a.total_hits(), b.total_hits());
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            prop_assert_eq!(&qa.hits, &qb.hits);
        }
    }

    /// Aggregates agree with per-piece sums.
    #[test]
    fn totals_are_consistent(seed in 0u64..100_000) {
        let params = WorkloadParams {
            queries: 4,
            fragments: 10,
            min_results: 20,
            max_results: 60,
            seed,
            ..WorkloadParams::default()
        };
        let w = Workload::generate(&params);
        let by_query: u64 = w.queries.iter().map(|q| q.total_bytes()).sum();
        prop_assert_eq!(by_query, w.total_bytes());
        for q in &w.queries {
            let by_frag: u64 = (0..10).map(|f| q.fragment_bytes(f)).sum();
            prop_assert_eq!(by_frag, q.total_bytes());
        }
        let hits: usize = w.queries.iter().map(|q| q.total_hits()).sum();
        prop_assert_eq!(hits, w.total_hits());
    }
}
