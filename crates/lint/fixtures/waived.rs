// Fixture: properly-waived violations must be suppressed (file scans
// clean). Not compiled — scanned as text by the lint's self-tests.

// s3a-lint: allow(unordered-iter) -- keys are collected and sorted before any output
use std::collections::HashMap; // s3a-lint: allow(hash-collection) -- same justification as the unordered-iter waiver above

fn lookup_only(m: &std::collections::BTreeMap<u64, u64>, k: u64) -> Option<u64> {
    let t = Instant::now(); // s3a-lint: allow(wall-clock) -- same-line waiver form; mocked clock in this fixture
    let _ = t;
    m.get(&k).copied()
}
