// Fixture: qualified `std::collections` hash-collection paths must trip
// `hash-collection` (the brace import also trips `unordered-iter` on the
// same tokens — both rules are right). The qualified BTreeMap path below
// must NOT fire. Not compiled — scanned as text by the self-tests.
use std::collections::HashSet;
use std::collections::{BTreeMap, HashMap};

fn scratch() -> std::collections::HashMap<u64, u64> {
    std::collections::HashMap::new()
}

fn ordered() -> std::collections::BTreeMap<u64, u64> {
    std::collections::BTreeMap::new()
}

fn seen() -> HashSet<u64> {
    HashSet::new()
}
