// Fixture: malformed waivers must trip `bad-waiver` AND fail to
// suppress. Not compiled — scanned as text by the self-tests.

// s3a-lint: allow(wall-clock)
fn no_reason() {
    let _ = Instant::now();
}

// s3a-lint: allow(no-such-rule) -- confidently wrong
fn unknown_rule() {}
