// Fixture: narrowing casts on time/byte counters must trip
// `truncating-cast`. Not compiled — scanned as text by the self-tests.

fn pack(t: SimTime, total_bytes: u64) -> (u32, u32) {
    let wait_ns = t.as_nanos() as u32;
    let bytes32 = total_bytes as u32;
    (wait_ns, bytes32)
}

fn index(slots: &[u8]) -> u32 {
    // Index cast with no counter marker: must NOT fire.
    slots.len() as u32
}
