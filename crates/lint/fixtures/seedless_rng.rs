// Fixture: OS-entropy RNG constructors must trip `seedless-rng`.
// Not compiled — scanned as text by the lint's self-tests.

fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn seed() -> u64 {
    let rng = rand::rngs::StdRng::from_entropy();
    rand::random()
}
