// Fixture: float accumulation of converted time must trip `float-accum`.
// Not compiled — scanned as text by the lint's self-tests.

fn total_seconds(durations: &[SimTime]) -> f64 {
    let mut total = 0.0;
    for d in durations {
        total += d.as_secs_f64();
    }
    total
}

fn total_ns(points: &[SimTime]) -> f64 {
    points
        .iter()
        .map(|t| t.as_nanos() as f64)
        .sum()
}
