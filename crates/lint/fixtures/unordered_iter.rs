// Fixture: hash-ordered collections feeding an output path must trip
// `unordered-iter`. Not compiled — scanned as text by the self-tests.
use std::collections::{HashMap, HashSet};

fn report_rows(latency_by_rank: &HashMap<usize, u64>) -> Vec<String> {
    let mut rows = Vec::new();
    for (rank, ns) in latency_by_rank {
        rows.push(format!("{rank},{ns}"));
    }
    rows
}

fn seen_offsets() -> HashSet<u64> {
    HashSet::new()
}
