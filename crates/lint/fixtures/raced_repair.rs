// Fixture: the tempting-but-wrong repair/scrub implementation. Tracking
// degraded blocks in hash-ordered collections makes the repair queue's
// drain order per-process random, and picking replacement replicas with
// an OS-entropy RNG makes placement unreproducible — the shipped modules
// (crates/pvfs/src/replica.rs, fs.rs) use BTree maps and the seeded
// rendezvous hash instead. Not compiled — scanned as text by the
// self-tests.
use std::collections::{HashMap, HashSet};

struct RepairPlanner {
    degraded: HashMap<u64, Vec<usize>>,
    scrubbed: HashSet<u64>,
}

impl RepairPlanner {
    fn drain(&mut self) -> Vec<u64> {
        let mut queue = Vec::new();
        for (block, _survivors) in &self.degraded {
            queue.push(*block);
        }
        queue
    }

    fn pick_target(&self, live: &[usize]) -> usize {
        let mut rng = rand::thread_rng();
        live[rng.gen_range(0..live.len())]
    }

    fn scrub_order(&self) -> Vec<u64> {
        self.scrubbed.iter().copied().collect()
    }
}
