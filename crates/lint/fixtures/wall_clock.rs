// Fixture: every construct here must trip the `wall-clock` rule.
// Not compiled — scanned as text by the lint's self-tests.
use std::time::{Duration, Instant};

fn elapsed() -> Duration {
    let start = Instant::now();
    start.elapsed()
}

fn epoch() -> u64 {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
}
