//! CLI for the S3aSim determinism lint.
//!
//! ```text
//! s3a-lint check [--format text|json] [PATH...]
//! s3a-lint rules
//! ```
//!
//! `check` with no paths scans the workspace's production and test code:
//! `crates/` (excluding the lint itself and vendored stand-ins) and the
//! repo-root `tests/`. Exit status: 0 clean, 1 violations found, 2 usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use s3a_lint::{lint_paths, RULES};

fn usage() -> ExitCode {
    eprintln!("usage: s3a-lint check [--format text|json] [PATH...]");
    eprintln!("       s3a-lint rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "rules" => {
            for r in RULES {
                println!("{r}");
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let mut json = false;
            let mut paths: Vec<PathBuf> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--format" => match it.next().map(String::as_str) {
                        Some("json") => json = true,
                        Some("text") => json = false,
                        _ => return usage(),
                    },
                    "--format=json" => json = true,
                    "--format=text" => json = false,
                    flag if flag.starts_with('-') => return usage(),
                    p => paths.push(PathBuf::from(p)),
                }
            }
            if paths.is_empty() {
                paths.push(PathBuf::from("crates"));
                let root_tests = PathBuf::from("tests");
                if root_tests.is_dir() {
                    paths.push(root_tests);
                }
            }
            let report = match lint_paths(&paths) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("s3a-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
