//! `s3a-lint`: a token/line-level determinism lint for the S3aSim
//! workspace.
//!
//! The simulator's contract is bit-determinism: same parameters, same
//! `RunReport`, byte for byte, on every run and every machine. The
//! compiler cannot check that contract, and the three-run byte-compare in
//! CI only catches a violation after it has already made a run
//! irreproducible. This lint closes the gap with a handful of cheap,
//! high-signal rules applied to the source text itself:
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `wall-clock` | `Instant`, `SystemTime`, `std::time` — host time leaking into virtual time |
//! | `unordered-iter` | `HashMap` / `HashSet` — iteration order varies per process (RandomState) |
//! | `seedless-rng` | `thread_rng`, `OsRng`, `from_entropy`, `getrandom`, `rand::random` — OS-entropy RNG |
//! | `float-accum` | statements that accumulate (`+=` / `.sum(`) float-converted time — order-sensitive rounding |
//! | `truncating-cast` | narrowing `as` casts on values whose names mark them as time or byte counters |
//! | `hash-collection` | qualified `std::collections::HashMap`/`HashSet` paths — the import that smuggles the type in |
//! | `bad-waiver` | malformed waiver comments (unknown rule, or missing reason) |
//!
//! These are deliberately *textual* rules, not a type-system analysis:
//! the banned constructs have essentially no legitimate use anywhere in a
//! deterministic simulator, so a token match is already high-confidence.
//! The escape hatch for the rare justified use is an inline waiver that
//! forces the author to write down *why*:
//!
//! ```text
//! // s3a-lint: allow(float-accum) -- derived report metric, not clock arithmetic
//! ```
//!
//! A waiver covers its own line and the line (or statement) immediately
//! below it, and its reason is mandatory: `allow(...)` without a
//! ` -- reason` tail is itself a violation (`bad-waiver`).
//!
//! Comments and string/char literals are masked before matching, so
//! prose like "never call Instant::now here" does not trip the lint.
//! Waiver comments are recognized from the *raw* line, before masking.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Identifiers of every rule, in reporting order.
pub const RULES: [&str; 7] = [
    "wall-clock",
    "unordered-iter",
    "seedless-rng",
    "float-accum",
    "truncating-cast",
    "hash-collection",
    "bad-waiver",
];

/// One finding, pointing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Path as given to the scanner (repo-relative in the CLI).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Outcome of a lint run over a set of files.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of waivers that suppressed a finding.
    pub waivers_used: usize,
}

impl LintReport {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render findings as human-readable text diagnostics.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "s3a-lint: {} file(s) scanned, {} violation(s), {} waiver(s) used\n",
            self.files_scanned,
            self.violations.len(),
            self.waivers_used
        ));
        out
    }

    /// Render findings as a JSON document (hand-rolled; no dependencies).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message),
                json_str(&v.snippet)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"violations_total\": {},\n  \"waivers_used\": {}\n}}\n",
            self.files_scanned,
            self.violations.len(),
            self.waivers_used
        ));
        out
    }
}

/// Minimal JSON string escape.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed waiver comment: which rule it suppresses and where.
#[derive(Debug, Clone)]
struct Waiver {
    rule: String,
    /// 1-based line the comment sits on; covers this line and the next.
    line: usize,
    used: bool,
}

const WAIVER_TAG: &str = "s3a-lint: allow(";

/// Extract waivers from raw source lines. Malformed waivers (unknown
/// rule, missing ` -- reason`) are reported as `bad-waiver` violations.
fn collect_waivers(file: &str, raw_lines: &[&str]) -> (Vec<Waiver>, Vec<Violation>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for (i, raw) in raw_lines.iter().enumerate() {
        let line_no = i + 1;
        let Some(tag) = raw.find(WAIVER_TAG) else {
            continue;
        };
        let rest = &raw[tag + WAIVER_TAG.len()..];
        let mut report = |message: String| {
            bad.push(Violation {
                rule: "bad-waiver",
                file: file.to_string(),
                line: line_no,
                message,
                snippet: raw.trim().to_string(),
            });
        };
        let Some(close) = rest.find(')') else {
            report("waiver is missing the closing ')'".to_string());
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            report(format!(
                "waiver names unknown rule '{rule}' (known: {})",
                RULES.join(", ")
            ));
            continue;
        }
        let tail = &rest[close + 1..];
        let reason = tail.find("--").map(|p| tail[p + 2..].trim());
        match reason {
            Some(r) if !r.is_empty() => waivers.push(Waiver {
                rule,
                line: line_no,
                used: false,
            }),
            _ => report(format!(
                "waiver for '{rule}' has no reason; write `-- <why this is safe>`"
            )),
        }
    }
    (waivers, bad)
}

/// Strip comments and string/char literals from one source file,
/// replacing their contents with spaces so line numbers and column
/// positions survive. Handles `//`, nested `/* */`, `"..."` with
/// escapes, raw strings `r"..."` / `r#"..."#`, and char literals
/// (without swallowing lifetimes like `'a`).
fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![0u8; b.len()];
    out.copy_from_slice(b);
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for c in &mut out[from..to] {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = b[i..]
                    .iter()
                    .position(|&c| c == b'\n')
                    .map(|p| i + p)
                    .unwrap_or(b.len());
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i.min(b.len()));
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"..." or r#"..."# (any hash depth).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    'scan: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while k < b.len() && b[k] == b'#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    blank(&mut out, start, j.min(b.len()));
                    i = j;
                } else {
                    i += 1; // identifier starting with 'r', not a raw string
                }
            }
            b'\'' => {
                // Char literal or lifetime. A char literal closes within a
                // few bytes ('x', '\n', '\u{1F600}'); a lifetime never
                // closes with a quote before a non-identifier character.
                let rest = &b[i + 1..];
                let close = rest
                    .iter()
                    .take(12)
                    .position(|&c| c == b'\'')
                    .map(|p| i + 1 + p);
                let is_char = match close {
                    // 'a' style: anything but an unescaped immediate quote.
                    Some(c) if c > i + 1 => {
                        // Reject `'a'` being a lifetime followed by another
                        // lifetime's quote: lifetimes are `'ident` and
                        // idents never contain `\\` or `{`; a two-or-more
                        // byte span ending in a quote that starts with `\\`
                        // or is exactly one char wide is a literal.
                        c == i + 2 || b[i + 1] == b'\\' || rest.first() == Some(&b'{')
                    }
                    _ => false,
                };
                if let (true, Some(c)) = (is_char, close) {
                    blank(&mut out, i, c + 1);
                    i = c + 1;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking preserves UTF-8 (only ASCII replaced)")
}

/// Tokens whose presence on a masked line marks the value as a time or
/// byte counter (used by `truncating-cast`).
const COUNTER_MARKERS: [&str; 7] = [
    "_ns", "nanos", "SimTime", "bytes", "byte_", "offset", "micros",
];

fn has_counter_marker(line: &str) -> bool {
    COUNTER_MARKERS.iter().any(|m| line.contains(m))
}

/// Narrowing integer casts that can silently truncate a 64-bit counter.
const NARROW_CASTS: [&str; 6] = ["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"];

/// True when `line` contains `pat` as a whole cast (not a prefix of a
/// wider cast like `as u32` inside `as u320` — impossible in Rust, but
/// also `as u8` must not match inside `as u86`).
fn has_cast(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(p) = line[from..].find(pat) {
        let end = from + p + pat.len();
        let boundary = line[end..]
            .chars()
            .next()
            .map(|c| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(true);
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// Line-level rules: (rule, trigger tokens, message).
struct LineRule {
    rule: &'static str,
    tokens: &'static [&'static str],
    message: &'static str,
}

const LINE_RULES: [LineRule; 3] = [
    LineRule {
        rule: "wall-clock",
        tokens: &["Instant", "SystemTime", "std::time"],
        message: "wall-clock time source; use the DES virtual clock (s3a_des::SimTime) instead",
    },
    LineRule {
        rule: "unordered-iter",
        tokens: &["HashMap", "HashSet"],
        message:
            "hash-ordered collection; iteration order is per-process random — use BTreeMap/BTreeSet",
    },
    LineRule {
        rule: "seedless-rng",
        tokens: &[
            "thread_rng",
            "from_entropy",
            "OsRng",
            "rand::random",
            "getrandom",
        ],
        message: "OS-entropy RNG constructor; derive all randomness from the run seed",
    },
];

/// True when a waiver for `rule` covers `line` (same line or the line
/// directly above). Marks the waiver used.
fn waived(waivers: &mut [Waiver], rule: &str, line: usize) -> bool {
    for w in waivers.iter_mut() {
        if w.rule == rule && (w.line == line || w.line + 1 == line) {
            w.used = true;
            return true;
        }
    }
    false
}

/// Lint one file's source text. Returns the findings and the number of
/// waivers that suppressed one.
pub fn lint_source(file: &str, src: &str) -> (Vec<Violation>, usize) {
    let raw_lines: Vec<&str> = src.lines().collect();
    let (mut waivers, mut violations) = collect_waivers(file, &raw_lines);
    let masked = mask_source(src);
    let masked_lines: Vec<&str> = masked.lines().collect();

    let push = |violations: &mut Vec<Violation>,
                waivers: &mut [Waiver],
                rule: &'static str,
                line_no: usize,
                message: String,
                suppressed: &mut usize| {
        if waived(waivers, rule, line_no) {
            *suppressed += 1;
            return;
        }
        violations.push(Violation {
            rule,
            file: file.to_string(),
            line: line_no,
            message,
            snippet: raw_lines
                .get(line_no - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    };

    let mut suppressed = 0usize;
    for (i, line) in masked_lines.iter().enumerate() {
        let line_no = i + 1;
        for lr in &LINE_RULES {
            if lr.tokens.iter().any(|t| line.contains(t)) {
                let token = lr.tokens.iter().find(|t| line.contains(*t)).unwrap();
                push(
                    &mut violations,
                    &mut waivers,
                    lr.rule,
                    line_no,
                    format!("`{token}`: {}", lr.message),
                    &mut suppressed,
                );
            }
        }
        if NARROW_CASTS.iter().any(|c| has_cast(line, c)) && has_counter_marker(line) {
            let cast = NARROW_CASTS.iter().find(|c| has_cast(line, c)).unwrap();
            push(
                &mut violations,
                &mut waivers,
                "truncating-cast",
                line_no,
                format!(
                    "`{cast}` on a time/byte counter can silently truncate; keep 64-bit width or use try_into"
                ),
                &mut suppressed,
            );
        }
        // `hash-collection` complements `unordered-iter`: it anchors on
        // the *qualified path*, so the `use std::collections::{...}` line
        // that smuggles the type into scope is flagged even when later
        // uses are bare identifiers. (A qualified `BTreeMap` path is fine.)
        if line.contains("std::collections::")
            && (line.contains("HashMap") || line.contains("HashSet"))
        {
            let ty = if line.contains("HashMap") {
                "HashMap"
            } else {
                "HashSet"
            };
            push(
                &mut violations,
                &mut waivers,
                "hash-collection",
                line_no,
                format!(
                    "`std::collections::{ty}` path; hash collections are per-process random — import BTreeMap/BTreeSet instead"
                ),
                &mut suppressed,
            );
        }
    }

    // `float-accum` works on whole statements: the conversion and the
    // accumulation are usually on different lines of one expression.
    let mut stmt_start = 0usize; // 0-based index of first line in statement
    let mut stmt = String::new();
    let mut depth = 0isize; // net open parens/brackets across the statement
    for (i, line) in masked_lines.iter().enumerate() {
        if stmt.is_empty() {
            stmt_start = i;
        }
        stmt.push_str(line);
        stmt.push('\n');
        for c in line.chars() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth = (depth - 1).max(0),
                _ => {}
            }
        }
        let t = line.trim_end();
        // A `;`, brace, or blank line ends the statement — but only at
        // bracket depth zero: a `;` inside a closure argument does not
        // end the enclosing expression.
        let ends = depth == 0
            && (t.ends_with(';') || t.ends_with('{') || t.ends_with('}') || t.is_empty());
        if !ends && i + 1 < masked_lines.len() {
            continue;
        }
        let accum = stmt.contains("+=") || stmt.contains(".sum(");
        let float_time = stmt.contains("secs_f64")
            || stmt.contains("as_nanos() as f64")
            || stmt.contains("as_micros() as f64");
        if accum && float_time {
            // Point at the accumulating line within the statement.
            let rel = masked_lines[stmt_start..=i]
                .iter()
                .position(|l| l.contains("+=") || l.contains(".sum("))
                .unwrap_or(0);
            let line_no = stmt_start + rel + 1;
            // A waiver anywhere in the statement (or just above it) covers
            // the whole statement.
            let covered = (stmt_start.saturating_sub(0)..=i + 1)
                .any(|ln| waived(&mut waivers, "float-accum", ln + 1))
                || waived(&mut waivers, "float-accum", stmt_start + 1);
            if covered {
                suppressed += 1;
            } else {
                push(
                    &mut violations,
                    &mut waivers,
                    "float-accum",
                    line_no,
                    "floating-point accumulation of converted time; rounding is order-sensitive — sum in integer nanoseconds".to_string(),
                    &mut suppressed,
                );
            }
        }
        stmt.clear();
    }

    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (violations, suppressed)
}

/// Recursively collect `.rs` files under `root`, in sorted order, skipping
/// directories that are not lint targets (`target`, `fixtures`, the lint
/// crate itself, and vendored stand-ins).
fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "fixtures" | "vendor" | ".git" | "lint") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under the given roots (files are accepted too).
pub fn lint_paths(roots: &[PathBuf]) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for root in roots {
        if root.is_dir() {
            collect_rs_files(root, &mut files)?;
        } else if root.is_file() {
            files.push(root.clone());
        } else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file or directory: {}", root.display()),
            ));
        }
    }
    let mut report = LintReport::default();
    for file in &files {
        let src = fs::read_to_string(file)?;
        let label = file.to_string_lossy().into_owned();
        let (violations, suppressed) = lint_source(&label, &src);
        report.violations.extend(violations);
        report.waivers_used += suppressed;
        report.files_scanned += 1;
    }
    report.violations.sort_by_key(|v| (v.file.clone(), v.line));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_comments_and_strings() {
        let src = "let a = 1; // Instant::now in prose\nlet b = \"SystemTime\";\n/* HashMap */ let c = 2;\n";
        let masked = mask_source(src);
        assert!(!masked.contains("Instant"));
        assert!(!masked.contains("SystemTime"));
        assert!(!masked.contains("HashMap"));
        assert!(masked.contains("let a = 1;"));
        assert!(masked.contains("let c = 2;"));
    }

    #[test]
    fn masking_preserves_line_count_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> &'a str {\n    /* multi\n       line */ x\n}\n";
        let masked = mask_source(src);
        assert_eq!(src.lines().count(), masked.lines().count());
        assert!(masked.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn char_literals_are_masked() {
        let src = "let q = '\"'; let n = '\\n'; let x = \"HashMap\";";
        let masked = mask_source(src);
        assert!(!masked.contains("HashMap"), "masked: {masked}");
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "let s = r#\"Instant::now() \"quoted\" \"#; let t = 1;";
        let masked = mask_source(src);
        assert!(!masked.contains("Instant"));
        assert!(masked.contains("let t = 1;"));
    }

    #[test]
    fn wall_clock_flagged_but_not_in_comment() {
        let src = "// Instant::now is banned\nlet t = Instant::now();\n";
        let (v, _) = lint_source("t.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wall-clock");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn waiver_suppresses_and_is_counted() {
        let src = "// s3a-lint: allow(unordered-iter) -- keys re-sorted before output\nlet m = HashMap::new();\n";
        let (v, suppressed) = lint_source("t.rs", src);
        assert!(v.is_empty(), "unexpected: {v:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn hash_collection_fires_on_qualified_paths_only() {
        let (v, _) = lint_source("t.rs", "use std::collections::HashSet;\n");
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"hash-collection"), "got {rules:?}");
        let (v, _) = lint_source("t.rs", "use std::collections::BTreeMap;\n");
        assert!(v.is_empty(), "BTreeMap path must not fire: {v:?}");
        // Bare identifiers are `unordered-iter`'s job, not this rule's.
        let (v, _) = lint_source("t.rs", "let m = HashMap::new();\n");
        assert!(v.iter().all(|v| v.rule != "hash-collection"), "{v:?}");
    }

    #[test]
    fn waiver_without_reason_is_a_violation() {
        let src = "// s3a-lint: allow(wall-clock)\nlet t = Instant::now();\n";
        let (v, _) = lint_source("t.rs", src);
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"bad-waiver"), "got {rules:?}");
        assert!(
            rules.contains(&"wall-clock"),
            "reasonless waiver must not suppress: {rules:?}"
        );
    }

    #[test]
    fn waiver_for_unknown_rule_is_a_violation() {
        let src = "// s3a-lint: allow(made-up) -- because\nlet x = 1;\n";
        let (v, _) = lint_source("t.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "bad-waiver");
    }

    #[test]
    fn float_accum_spans_statement_lines() {
        let src = "let total: f64 = xs\n    .iter()\n    .map(|x| x.as_secs_f64())\n    .sum();\n";
        let (v, _) = lint_source("t.rs", src);
        assert_eq!(v.len(), 1, "got {v:?}");
        assert_eq!(v[0].rule, "float-accum");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn truncating_cast_needs_counter_marker() {
        let clean = "let idx = slots.len() as u32;\n";
        let (v, _) = lint_source("t.rs", clean);
        assert!(v.is_empty(), "index cast must not fire: {v:?}");
        let dirty = "let ns = t.as_nanos() as u32;\n";
        let (v, _) = lint_source("t.rs", dirty);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "truncating-cast");
    }

    #[test]
    fn cast_token_respects_word_boundary() {
        assert!(has_cast("x as u8;", "as u8"));
        assert!(has_cast("(x as u8)", "as u8"));
        assert!(!has_cast("x as u86", "as u8"));
    }

    #[test]
    fn json_output_escapes_and_counts() {
        let (violations, _) = lint_source("a\"b.rs", "let t = SystemTime::now();\n");
        let report = LintReport {
            violations,
            files_scanned: 1,
            waivers_used: 0,
        };
        let json = report.render_json();
        assert!(json.contains("\"violations_total\": 1"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\"rule\": \"wall-clock\""));
    }
}
