//! Self-tests: run the lint over the known-bad fixture files and assert
//! each rule fires where expected (and only there).

use std::path::PathBuf;

use s3a_lint::{lint_paths, lint_source, RULES};

fn fixture(name: &str) -> (Vec<s3a_lint::Violation>, usize) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    lint_source(name, &src)
}

fn rules_fired(name: &str) -> Vec<&'static str> {
    let (violations, _) = fixture(name);
    let mut rules: Vec<_> = violations.iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn wall_clock_fixture_trips_only_wall_clock() {
    let (v, _) = fixture("wall_clock.rs");
    assert!(v.len() >= 3, "Instant + SystemTime + std::time: {v:?}");
    assert!(v.iter().all(|v| v.rule == "wall-clock"), "{v:?}");
    // Diagnostics carry file:line.
    assert!(v.iter().all(|v| v.line > 0 && v.file == "wall_clock.rs"));
}

#[test]
fn unordered_iter_fixture_trips_unordered_iter() {
    let (v, _) = fixture("unordered_iter.rs");
    let unordered = v.iter().filter(|v| v.rule == "unordered-iter").count();
    assert!(unordered >= 2, "HashMap + HashSet: {v:?}");
    // The qualified brace import legitimately trips `hash-collection` too;
    // nothing else may fire.
    assert!(
        v.iter()
            .all(|v| v.rule == "unordered-iter" || v.rule == "hash-collection"),
        "{v:?}"
    );
}

#[test]
fn hash_collection_fixture_trips_qualified_paths_not_btreemap() {
    let (v, _) = fixture("hash_collection.rs");
    let fired: Vec<_> = v.iter().filter(|v| v.rule == "hash-collection").collect();
    // Two imports + two qualified uses inside `scratch` (decl and body).
    assert!(fired.len() >= 4, "qualified Hash paths: {v:?}");
    assert!(
        fired
            .iter()
            .all(|v| !v.snippet.contains("BTreeMap") || v.snippet.contains("HashMap")),
        "qualified BTreeMap must not fire alone: {v:?}"
    );
    // `ordered()` uses only std::collections::BTreeMap — those lines are clean.
    assert!(
        v.iter().all(|v| !(12..=14).contains(&v.line)),
        "BTreeMap-only lines fired: {v:?}"
    );
}

#[test]
fn seedless_rng_fixture_trips_only_seedless_rng() {
    let (v, _) = fixture("seedless_rng.rs");
    assert!(v.len() >= 3, "thread_rng + from_entropy + random: {v:?}");
    assert!(v.iter().all(|v| v.rule == "seedless-rng"), "{v:?}");
}

#[test]
fn float_accum_fixture_trips_both_accumulation_forms() {
    let (v, _) = fixture("float_accum.rs");
    let lines: Vec<usize> = v
        .iter()
        .filter(|v| v.rule == "float-accum")
        .map(|v| v.line)
        .collect();
    assert_eq!(lines.len(), 2, "`+=` form and `.sum()` form: {v:?}");
}

#[test]
fn truncating_cast_fixture_fires_on_counters_not_indices() {
    let (v, _) = fixture("truncating_cast.rs");
    let casts: Vec<_> = v.iter().filter(|v| v.rule == "truncating-cast").collect();
    assert_eq!(casts.len(), 2, "wait_ns + bytes32, not slots.len(): {v:?}");
    assert!(casts.iter().all(|v| v.line <= 8), "index cast fired: {v:?}");
}

#[test]
fn waived_fixture_is_clean_and_counts_waivers() {
    let (v, suppressed) = fixture("waived.rs");
    assert!(v.is_empty(), "waivers must suppress: {v:?}");
    assert_eq!(
        suppressed, 3,
        "above-line, same-line, and hash-collection waivers must all be exercised"
    );
}

#[test]
fn bad_waiver_fixture_reports_and_does_not_suppress() {
    let fired = rules_fired("bad_waiver.rs");
    assert!(fired.contains(&"bad-waiver"), "{fired:?}");
    assert!(
        fired.contains(&"wall-clock"),
        "reasonless waiver must not suppress: {fired:?}"
    );
}

#[test]
fn raced_repair_fixture_trips_unordered_iter_and_seedless_rng() {
    let (v, suppressed) = fixture("raced_repair.rs");
    let unordered = v.iter().filter(|v| v.rule == "unordered-iter").count();
    let seedless = v.iter().filter(|v| v.rule == "seedless-rng").count();
    assert!(unordered >= 3, "HashMap field + HashSet + import: {v:?}");
    assert!(seedless >= 1, "thread_rng target pick: {v:?}");
    assert!(
        v.iter().all(|v| {
            v.rule == "unordered-iter"
                || v.rule == "seedless-rng"
                || (v.rule == "hash-collection" && v.snippet.contains("std::collections"))
        }),
        "{v:?}"
    );
    assert_eq!(suppressed, 0, "the bad sketch must not hide behind waivers");
}

/// The real repair planner and scrub task the fixture caricatures: the
/// shipped pvfs modules (replica placement, block tracking, repair queue,
/// scrub loop) pass the determinism rules outright — BTree maps and the
/// seeded rendezvous hash, zero waivers.
#[test]
fn shipped_repair_and_scrub_modules_lint_clean_without_waivers() {
    let pvfs_src = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .join("pvfs")
        .join("src");
    for module in ["replica.rs", "fs.rs"] {
        let path = pvfs_src.join(module);
        assert!(path.is_file(), "missing module {}", path.display());
        let report = lint_paths(std::slice::from_ref(&path)).unwrap();
        assert!(
            report.is_clean(),
            "{module} has violations:\n{}",
            report.render_text()
        );
        assert_eq!(report.waivers_used, 0, "{module} leans on a waiver");
    }
}

#[test]
fn every_rule_has_at_least_one_firing_fixture() {
    let fixtures = [
        "wall_clock.rs",
        "unordered_iter.rs",
        "seedless_rng.rs",
        "float_accum.rs",
        "truncating_cast.rs",
        "hash_collection.rs",
        "bad_waiver.rs",
    ];
    let mut fired: Vec<&str> = fixtures.iter().flat_map(|f| rules_fired(f)).collect();
    fired.sort();
    fired.dedup();
    for rule in RULES {
        assert!(fired.contains(&rule), "no fixture exercises rule '{rule}'");
    }
}

#[test]
fn workspace_scan_is_clean() {
    // The lint's promise to CI: the shipped tree has zero unwaived
    // violations. Walk up from this crate to the workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .to_path_buf();
    let roots = vec![root.join("crates"), root.join("tests")];
    let report = lint_paths(&roots).unwrap();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 30, "scan looks truncated");
}

#[test]
fn json_format_lists_fixture_violations() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("wall_clock.rs");
    let report = lint_paths(&[path]).unwrap();
    let json = report.render_json();
    assert!(json.contains("\"rule\": \"wall-clock\""));
    assert!(json.contains("\"files_scanned\": 1"));
    assert!(json.contains("wall_clock.rs"));
}
