//! # s3a-faults — deterministic fault injection
//!
//! A fault run is described entirely by a [`FaultParams`] value: which
//! workers crash and when (virtual time), the per-message probabilities of
//! loss / duplication / extra delay on the fabric, and per-server slowdown
//! ("limping server") and outage windows on the PVFS side. Given the same
//! parameters the injected fault pattern is bit-for-bit identical across
//! runs — message-level decisions are drawn from a counted hash stream per
//! (src, dst) endpoint pair, not from shared mutable RNG state, so they do
//! not depend on scheduling order of unrelated traffic.
//!
//! Two runtime objects are built from the parameters:
//!
//! * [`FaultSchedule`] — the decision oracle the network and file-system
//!   layers consult ("does this message get lost?", "is server 3 down at
//!   t?").
//! * [`FaultLog`] — a shared recorder; every injection, detection, retry
//!   and reassignment lands here as a timestamped [`FaultEvent`], and
//!   [`FaultLog::report`] folds the log into the per-run "recovery tax"
//!   summary ([`FaultReport`]).

use s3a_des::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A window during which one PVFS server runs slow by a constant factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSlowdown {
    /// Server index (0-based).
    pub server: usize,
    /// Start of the slow window (inclusive).
    pub from: SimTime,
    /// End of the slow window (exclusive).
    pub until: SimTime,
    /// Service-time multiplier (> 1.0 = slower).
    pub factor: f64,
}

/// A window during which one PVFS server does not answer at all. Clients
/// retry with a fixed backoff until the window ends or their retry budget
/// is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOutage {
    /// Server index (0-based).
    pub server: usize,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

/// A window during which *every* server in one failure domain is
/// unavailable — the "rack loses power" case replicated placement is
/// built to survive. Domains are resolved to concrete servers by
/// [`FaultParams::expand_domains`] (a server belongs to domain
/// `server % failure_domains`), because only the file-system layer knows
/// the server count and domain count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainOutage {
    /// Failure-domain index (0-based).
    pub domain: usize,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive). Use a far-future time for a
    /// permanent domain death.
    pub until: SimTime,
}

/// Latent silent corruption on one server: from `at` onward, each block
/// replica written to the server *before* `at` is corrupt with
/// probability `per_mille`/1000 (decided by a deterministic per-block
/// hash, so replays see the same rot). The corruption is silent — it is
/// only *observed* when a checksum verification (read or scrub) touches
/// the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCorruption {
    /// Server index (0-based).
    pub server: usize,
    /// When the rot sets in.
    pub at: SimTime,
    /// Per-mille probability that a given resident block is corrupted.
    pub per_mille: u16,
}

/// Complete description of the faults injected into one run. The default
/// value injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultParams {
    /// Seed for the per-message fault decisions. Two runs with the same
    /// seed and traffic pattern draw identical decisions.
    pub seed: u64,
    /// `(worker_rank, crash_time)`: the worker fail-stops at the first
    /// obligation-free point at or after `crash_time`.
    pub worker_crashes: Vec<(usize, SimTime)>,
    /// `(master_rank, crash_time)`: in sharded-master runs the master
    /// fail-stops at the first obligation-free point at or after
    /// `crash_time` (and only before the shutdown quiesce — a schedule
    /// that the run outpaces never fires). Rank 0 is the coordinator
    /// and must not appear here.
    pub master_crashes: Vec<(usize, SimTime)>,
    /// Per-mille probability that a message is lost on the wire and must
    /// be retransmitted by the transport.
    pub msg_loss_per_mille: u16,
    /// Per-mille probability that a message is duplicated (the copy burns
    /// fabric resources; delivery is deduplicated).
    pub msg_dup_per_mille: u16,
    /// Per-mille probability that a message is held up by
    /// [`FaultParams::msg_extra_delay`] before delivery.
    pub msg_delay_per_mille: u16,
    /// Extra in-flight delay applied to delayed messages.
    pub msg_extra_delay: SimTime,
    /// How long the transport waits before retransmitting a lost message.
    pub msg_retransmit_timeout: SimTime,
    /// Slow-server windows.
    pub server_slowdowns: Vec<ServerSlowdown>,
    /// Server outage windows.
    pub server_outages: Vec<ServerOutage>,
    /// Whole-failure-domain outage windows (see [`DomainOutage`]); the
    /// runner expands these into per-server outages once the server and
    /// domain counts are known.
    pub domain_outages: Vec<DomainOutage>,
    /// Latent silent-corruption windows (see [`ServerCorruption`]).
    pub server_corruptions: Vec<ServerCorruption>,
    /// How often live workers heartbeat the master.
    pub heartbeat_interval: SimTime,
    /// Silence threshold after which the master declares a worker dead.
    pub detection_timeout: SimTime,
    /// How many times a client retries a request into an outage window
    /// before giving up with an error.
    pub max_io_retries: u32,
    /// Pause between outage retries.
    pub io_retry_backoff: SimTime,
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams {
            seed: 0,
            worker_crashes: Vec::new(),
            master_crashes: Vec::new(),
            msg_loss_per_mille: 0,
            msg_dup_per_mille: 0,
            msg_delay_per_mille: 0,
            msg_extra_delay: SimTime::from_millis(5),
            msg_retransmit_timeout: SimTime::from_millis(1),
            server_slowdowns: Vec::new(),
            server_outages: Vec::new(),
            domain_outages: Vec::new(),
            server_corruptions: Vec::new(),
            heartbeat_interval: SimTime::from_millis(250),
            detection_timeout: SimTime::from_secs(3),
            max_io_retries: 64,
            io_retry_backoff: SimTime::from_millis(20),
        }
    }
}

impl FaultParams {
    /// True if any fault source is configured.
    pub fn any(&self) -> bool {
        !self.worker_crashes.is_empty()
            || !self.master_crashes.is_empty()
            || self.msg_loss_per_mille > 0
            || self.msg_dup_per_mille > 0
            || self.msg_delay_per_mille > 0
            || !self.server_slowdowns.is_empty()
            || !self.server_outages.is_empty()
            || !self.domain_outages.is_empty()
            || !self.server_corruptions.is_empty()
    }

    /// Resolve every [`DomainOutage`] into per-server [`ServerOutage`]
    /// windows for a deployment of `servers` servers grouped into
    /// `failure_domains` domains (`failure_domains == 0` means each
    /// server is its own domain). Pure: the result is a new parameter
    /// set with `domain_outages` drained into `server_outages`, in
    /// ascending server order so replays stay identical.
    pub fn expand_domains(&self, servers: usize, failure_domains: usize) -> FaultParams {
        let mut out = self.clone();
        if out.domain_outages.is_empty() {
            return out;
        }
        let domains = if failure_domains == 0 {
            servers
        } else {
            failure_domains.min(servers)
        };
        for d in std::mem::take(&mut out.domain_outages) {
            for server in 0..servers {
                if domains > 0 && server % domains == d.domain {
                    out.server_outages.push(ServerOutage {
                        server,
                        from: d.from,
                        until: d.until,
                    });
                }
            }
        }
        out
    }

    /// True if any worker crash is scheduled (this is what switches the
    /// master into its polling / failure-detection mode).
    pub fn crashes(&self) -> bool {
        !self.worker_crashes.is_empty()
    }

    /// True if any master crash is scheduled (this is what switches the
    /// sharded masters into their polling / failure-detection mode).
    pub fn master_crashes(&self) -> bool {
        !self.master_crashes.is_empty()
    }

    /// True if any message-level fault is configured.
    pub fn message_faults(&self) -> bool {
        self.msg_loss_per_mille > 0 || self.msg_dup_per_mille > 0 || self.msg_delay_per_mille > 0
    }

    /// Crash-point enumeration for the model checker: `count` variants of
    /// this schedule, the `k`-th delaying every master-crash time by
    /// `k * step` (saturating). Variant 0 is `self` unchanged. Sliding
    /// the crash instants across the protocol timeline exposes fail-stop
    /// points a single fixed schedule would never hit (mid-steal,
    /// mid-layout, mid-quiesce).
    pub fn master_crash_grid(&self, step: SimTime, count: usize) -> Vec<FaultParams> {
        (0..count.max(1))
            .map(|k| {
                let mut p = self.clone();
                for (_, t) in &mut p.master_crashes {
                    let shift = step.as_nanos().saturating_mul(k as u64);
                    *t = t.saturating_add(SimTime::from_nanos(shift));
                }
                p
            })
            .collect()
    }
}

/// The fate of a single message, decided by [`FaultSchedule::message_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFault {
    /// Delivered normally.
    None,
    /// Dropped on the wire; the transport retransmits after its timeout.
    Lose,
    /// A spurious copy also occupies the fabric; delivery is deduplicated.
    Duplicate,
    /// Delivery is held up by the configured extra delay.
    Delay,
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash. Public because
/// it is the repo's one sanctioned seeded hash: the replica placement
/// layer reuses it for rendezvous scores so placement decisions replay
/// bit-identically.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decision oracle built from [`FaultParams`]. Shared (behind `Rc`) by the
/// fabric, the file system, and the master/worker logic.
pub struct FaultSchedule {
    params: FaultParams,
    /// Per-(src, dst) message counters: the n-th message on a pair always
    /// gets the n-th decision of that pair's hash stream, independent of
    /// what other pairs are doing.
    pair_counters: RefCell<BTreeMap<(usize, usize), u64>>,
}

impl FaultSchedule {
    /// Build the oracle for one run.
    pub fn new(params: FaultParams) -> Rc<FaultSchedule> {
        Rc::new(FaultSchedule {
            params,
            pair_counters: RefCell::new(BTreeMap::new()),
        })
    }

    /// The parameters this schedule was built from.
    pub fn params(&self) -> &FaultParams {
        &self.params
    }

    /// When (if ever) the worker with this world rank is scheduled to
    /// crash.
    pub fn crash_time(&self, rank: usize) -> Option<SimTime> {
        self.params
            .worker_crashes
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|&(_, t)| t)
    }

    /// When (if ever) the master shard with this world rank is scheduled
    /// to crash.
    pub fn master_crash_time(&self, rank: usize) -> Option<SimTime> {
        self.params
            .master_crashes
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|&(_, t)| t)
    }

    /// Decide the fate of the next message from `src` to `dst`. Draws one
    /// decision from the pair's deterministic stream, so callers must call
    /// this exactly once per logical message.
    pub fn message_fault(&self, src: usize, dst: usize) -> MsgFault {
        let p = &self.params;
        if !p.message_faults() {
            return MsgFault::None;
        }
        let n = {
            let mut counters = self.pair_counters.borrow_mut();
            let c = counters.entry((src, dst)).or_insert(0);
            *c += 1;
            *c
        };
        let key = p
            .seed
            .wrapping_add((src as u64) << 42)
            .wrapping_add((dst as u64) << 21)
            .wrapping_add(n);
        let roll = (splitmix64(key) % 1000) as u16;
        let lose = p.msg_loss_per_mille;
        let dup = lose + p.msg_dup_per_mille;
        let delay = dup + p.msg_delay_per_mille;
        if roll < lose {
            MsgFault::Lose
        } else if roll < dup {
            MsgFault::Duplicate
        } else if roll < delay {
            MsgFault::Delay
        } else {
            MsgFault::None
        }
    }

    /// Service-time multiplier for `server` at time `now` (1.0 = healthy).
    pub fn server_delay_factor(&self, server: usize, now: SimTime) -> f64 {
        self.params
            .server_slowdowns
            .iter()
            .filter(|s| s.server == server && s.from <= now && now < s.until)
            .map(|s| s.factor)
            .fold(1.0, f64::max)
    }

    /// If `server` is inside an outage window at `now`, the time the
    /// window ends.
    pub fn server_outage_until(&self, server: usize, now: SimTime) -> Option<SimTime> {
        self.params
            .server_outages
            .iter()
            .filter(|o| o.server == server && o.from <= now && now < o.until)
            .map(|o| o.until)
            .max()
    }

    /// Silent-corruption oracle: is the replica of block `block` (of the
    /// file identified by `salt`) that was written to `server` at
    /// `written_at` corrupt when inspected at `now`? Deterministic — the
    /// per-block coin is a hash of (seed, salt, block, server), so a
    /// replay, a read, and a scrub all see the same rot.
    pub fn block_corrupted(
        &self,
        server: usize,
        salt: u64,
        block: u64,
        written_at: SimTime,
        now: SimTime,
    ) -> bool {
        self.params.server_corruptions.iter().any(|c| {
            if c.server != server || written_at >= c.at || now < c.at {
                return false;
            }
            let key = self
                .params
                .seed
                .wrapping_add(splitmix64(salt))
                .wrapping_add(splitmix64(block.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .wrapping_add((server as u64) << 17);
            ((splitmix64(key) % 1000) as u16) < c.per_mille
        })
    }
}

/// One recorded fault-related occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A message was dropped on the wire (and will be retransmitted).
    MsgLost { src: usize, dst: usize },
    /// A spurious duplicate occupied the fabric.
    MsgDuplicated { src: usize, dst: usize },
    /// A message was held up by the configured extra delay.
    MsgDelayed { src: usize, dst: usize },
    /// A client backed off and retried a request into a server outage.
    IoRetry { server: usize },
    /// A worker fail-stopped.
    WorkerCrashed { rank: usize },
    /// The master's failure detector declared a worker dead.
    WorkerDetected { rank: usize },
    /// An in-flight or revoked `(query, fragment)` task went back on the
    /// queue for a surviving worker.
    TaskReassigned { query: usize, fragment: usize },
    /// A committed-offset batch lost with a dead worker was bundled for
    /// recomputation and rewrite by a survivor.
    BatchRepaired { batch: usize, bytes: u64 },
    /// The repair planner declared a PVFS server permanently dead (its
    /// outage window outlasts the failure detector's patience).
    ServerDeclaredDead { server: usize },
    /// A checksum verification (read-path or scrub) caught a corrupt
    /// block replica on a server.
    BlockCorruptionDetected { server: usize, block: u64 },
    /// The repair planner re-replicated one block replica onto a server.
    BlockReplicated { server: usize, bytes: u64 },
    /// A master shard fail-stopped.
    MasterCrashed { rank: usize },
    /// The coordinator's failure detector declared a master shard dead.
    MasterDetected { rank: usize },
    /// A surviving shard adopted a dead shard's query space, rebuilding
    /// the given number of incomplete batches from scratch.
    ShardTakeover {
        dead: usize,
        successor: usize,
        batches: usize,
    },
}

/// A timestamped [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time at which the event was recorded.
    pub at: SimTime,
    /// What happened.
    pub kind: FaultKind,
}

/// Shared, append-only event recorder. Cloning shares the underlying log.
#[derive(Clone, Default)]
pub struct FaultLog {
    events: Rc<RefCell<Vec<FaultEvent>>>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// Append one event.
    pub fn record(&self, at: SimTime, kind: FaultKind) {
        self.events.borrow_mut().push(FaultEvent { at, kind });
    }

    /// Snapshot of all events recorded so far, in record order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.borrow().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Fold the log into the per-run recovery-tax summary.
    pub fn report(&self) -> FaultReport {
        let mut r = FaultReport::default();
        let mut crash_at: BTreeMap<usize, SimTime> = BTreeMap::new();
        for ev in self.events.borrow().iter() {
            match ev.kind {
                FaultKind::MsgLost { .. } => r.msg_lost += 1,
                FaultKind::MsgDuplicated { .. } => r.msg_duplicated += 1,
                FaultKind::MsgDelayed { .. } => r.msg_delayed += 1,
                FaultKind::IoRetry { .. } => r.io_retries += 1,
                FaultKind::WorkerCrashed { rank } => {
                    r.crashes += 1;
                    crash_at.insert(rank, ev.at);
                }
                FaultKind::WorkerDetected { rank } => {
                    r.detections += 1;
                    if let Some(&t) = crash_at.get(&rank) {
                        r.detection_latency += ev.at.saturating_sub(t);
                    }
                }
                FaultKind::TaskReassigned { .. } => r.tasks_reassigned += 1,
                FaultKind::BatchRepaired { batch: _, bytes } => {
                    r.batches_repaired += 1;
                    r.bytes_repaired += bytes;
                }
                FaultKind::ServerDeclaredDead { .. } => r.servers_declared_dead += 1,
                FaultKind::BlockCorruptionDetected { .. } => r.corruptions_detected += 1,
                FaultKind::BlockReplicated { server: _, bytes } => {
                    r.blocks_re_replicated += 1;
                    r.bytes_re_replicated += bytes;
                }
                FaultKind::MasterCrashed { rank } => {
                    r.master_crashes += 1;
                    crash_at.insert(rank, ev.at);
                }
                FaultKind::MasterDetected { rank } => {
                    r.master_detections += 1;
                    if let Some(&t) = crash_at.get(&rank) {
                        r.detection_latency += ev.at.saturating_sub(t);
                    }
                }
                FaultKind::ShardTakeover { batches, .. } => {
                    r.shard_takeovers += 1;
                    r.batches_rebuilt += batches as u64;
                }
            }
        }
        r
    }
}

/// Aggregated fault / recovery counters for one run — the "recovery tax"
/// breakdown alongside the run's phase times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Messages lost on the wire (each cost one retransmission).
    pub msg_lost: u64,
    /// Spurious duplicate copies injected.
    pub msg_duplicated: u64,
    /// Messages held up by the extra-delay fault.
    pub msg_delayed: u64,
    /// Outage-window retries paid by PVFS clients.
    pub io_retries: u64,
    /// Workers that fail-stopped.
    pub crashes: u64,
    /// Dead workers the master's detector caught.
    pub detections: u64,
    /// Sum over detected workers of (detection time - crash time).
    pub detection_latency: SimTime,
    /// `(query, fragment)` tasks requeued from dead workers.
    pub tasks_reassigned: u64,
    /// Committed batches a survivor had to recompute and rewrite.
    pub batches_repaired: u64,
    /// Output bytes rewritten through batch repair.
    pub bytes_repaired: u64,
    /// PVFS servers the repair planner declared permanently dead.
    pub servers_declared_dead: u64,
    /// Corrupt block replicas caught by checksum verification.
    pub corruptions_detected: u64,
    /// Block replicas rebuilt by background re-replication.
    pub blocks_re_replicated: u64,
    /// Bytes moved by background re-replication (the recovery storm).
    pub bytes_re_replicated: u64,
    /// Master shards that fail-stopped.
    pub master_crashes: u64,
    /// Dead master shards the coordinator's detector caught.
    pub master_detections: u64,
    /// Takeovers of a dead shard's query space by a survivor.
    pub shard_takeovers: u64,
    /// Incomplete batches a successor shard rebuilt from scratch.
    pub batches_rebuilt: u64,
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crashes={} detected={} (latency {}) reassigned={} repaired={} ({} B) \
             msg lost/dup/delayed={}/{}/{} io-retries={} dead-servers={} \
             corruptions={} re-replicated={} ({} B) \
             master-crashes={} master-detected={} takeovers={} rebuilt={}",
            self.crashes,
            self.detections,
            self.detection_latency,
            self.tasks_reassigned,
            self.batches_repaired,
            self.bytes_repaired,
            self.msg_lost,
            self.msg_duplicated,
            self.msg_delayed,
            self.io_retries,
            self.servers_declared_dead,
            self.corruptions_detected,
            self.blocks_re_replicated,
            self.bytes_re_replicated,
            self.master_crashes,
            self.master_detections,
            self.shard_takeovers,
            self.batches_rebuilt,
        )
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for FaultSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultSchedule").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for FaultLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultLog").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg_params() -> FaultParams {
        FaultParams {
            seed: 42,
            msg_loss_per_mille: 100,
            msg_dup_per_mille: 50,
            msg_delay_per_mille: 100,
            ..FaultParams::default()
        }
    }

    #[test]
    fn default_injects_nothing() {
        let p = FaultParams::default();
        assert!(!p.any());
        let s = FaultSchedule::new(p);
        for i in 0..100 {
            assert_eq!(s.message_fault(0, i), MsgFault::None);
        }
        assert_eq!(s.crash_time(3), None);
        assert_eq!(s.server_delay_factor(0, SimTime::from_secs(1)), 1.0);
        assert_eq!(s.server_outage_until(0, SimTime::from_secs(1)), None);
    }

    #[test]
    fn message_decisions_replay_identically() {
        let a = FaultSchedule::new(msg_params());
        let b = FaultSchedule::new(msg_params());
        let seq_a: Vec<MsgFault> = (0..500).map(|i| a.message_fault(i % 7, i % 5)).collect();
        let seq_b: Vec<MsgFault> = (0..500).map(|i| b.message_fault(i % 7, i % 5)).collect();
        assert_eq!(seq_a, seq_b);
        // Roughly the configured 25% of messages should be faulted.
        let faulted = seq_a.iter().filter(|f| **f != MsgFault::None).count();
        assert!((50..250).contains(&faulted), "faulted = {faulted}");
    }

    #[test]
    fn pair_streams_are_independent_of_interleaving() {
        // Pair (0,1)'s n-th decision does not depend on traffic on (2,3).
        let a = FaultSchedule::new(msg_params());
        let b = FaultSchedule::new(msg_params());
        let seq_a: Vec<MsgFault> = (0..100).map(|_| a.message_fault(0, 1)).collect();
        let seq_b: Vec<MsgFault> = (0..100)
            .map(|_| {
                b.message_fault(2, 3); // interleaved unrelated traffic
                b.message_fault(0, 1)
            })
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn crash_lookup() {
        let p = FaultParams {
            worker_crashes: vec![(2, SimTime::from_secs(1)), (5, SimTime::from_secs(2))],
            ..FaultParams::default()
        };
        assert!(p.crashes() && p.any());
        let s = FaultSchedule::new(p);
        assert_eq!(s.crash_time(2), Some(SimTime::from_secs(1)));
        assert_eq!(s.crash_time(5), Some(SimTime::from_secs(2)));
        assert_eq!(s.crash_time(1), None);
    }

    #[test]
    fn server_windows() {
        let p = FaultParams {
            server_slowdowns: vec![ServerSlowdown {
                server: 1,
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(2),
                factor: 8.0,
            }],
            server_outages: vec![ServerOutage {
                server: 0,
                from: SimTime::from_secs(3),
                until: SimTime::from_secs(4),
            }],
            ..FaultParams::default()
        };
        let s = FaultSchedule::new(p);
        assert_eq!(s.server_delay_factor(1, SimTime::from_millis(500)), 1.0);
        assert_eq!(s.server_delay_factor(1, SimTime::from_millis(1500)), 8.0);
        assert_eq!(s.server_delay_factor(1, SimTime::from_secs(2)), 1.0);
        assert_eq!(s.server_delay_factor(0, SimTime::from_millis(1500)), 1.0);
        assert_eq!(
            s.server_outage_until(0, SimTime::from_millis(3500)),
            Some(SimTime::from_secs(4))
        );
        assert_eq!(s.server_outage_until(0, SimTime::from_secs(4)), None);
        assert_eq!(s.server_outage_until(1, SimTime::from_millis(3500)), None);
    }

    #[test]
    fn domain_outage_expands_to_member_servers() {
        let p = FaultParams {
            domain_outages: vec![DomainOutage {
                domain: 1,
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(9),
            }],
            ..FaultParams::default()
        };
        assert!(p.any());
        // 8 servers in 4 domains: domain 1 = servers {1, 5}.
        let e = p.expand_domains(8, 4);
        assert!(e.domain_outages.is_empty());
        let down: Vec<usize> = e.server_outages.iter().map(|o| o.server).collect();
        assert_eq!(down, vec![1, 5]);
        for o in &e.server_outages {
            assert_eq!(o.from, SimTime::from_secs(1));
            assert_eq!(o.until, SimTime::from_secs(9));
        }
        // failure_domains == 0: every server is its own domain.
        let solo = p.expand_domains(8, 0);
        let down: Vec<usize> = solo.server_outages.iter().map(|o| o.server).collect();
        assert_eq!(down, vec![1]);
    }

    #[test]
    fn corruption_oracle_is_deterministic_and_windowed() {
        let p = FaultParams {
            seed: 7,
            server_corruptions: vec![ServerCorruption {
                server: 2,
                at: SimTime::from_secs(5),
                per_mille: 1000, // every resident block rots
            }],
            ..FaultParams::default()
        };
        assert!(p.any());
        let s = FaultSchedule::new(p);
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(6);
        // Written before the rot, inspected after it: corrupt.
        assert!(s.block_corrupted(2, 99, 0, early, late));
        // Inspected before the rot sets in: still clean.
        assert!(!s.block_corrupted(2, 99, 0, early, SimTime::from_secs(2)));
        // Written after the rot (e.g. a repair rewrite): clean.
        assert!(!s.block_corrupted(2, 99, 0, late, late));
        // Different server: untouched.
        assert!(!s.block_corrupted(1, 99, 0, early, late));
        // Replays agree.
        for blk in 0..32 {
            let a = s.block_corrupted(2, 123, blk, early, late);
            let b = s.block_corrupted(2, 123, blk, early, late);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn corruption_oracle_respects_per_mille() {
        let p = FaultParams {
            seed: 11,
            server_corruptions: vec![ServerCorruption {
                server: 0,
                at: SimTime::from_secs(1),
                per_mille: 300,
            }],
            ..FaultParams::default()
        };
        let s = FaultSchedule::new(p);
        let hit = (0..1000u64)
            .filter(|&b| s.block_corrupted(0, 5, b, SimTime::ZERO, SimTime::from_secs(2)))
            .count();
        assert!((150..450).contains(&hit), "corrupted {hit}/1000");
    }

    #[test]
    fn replication_events_fold_into_report() {
        let log = FaultLog::new();
        let t = SimTime::from_secs;
        log.record(t(1), FaultKind::ServerDeclaredDead { server: 3 });
        log.record(
            t(2),
            FaultKind::BlockCorruptionDetected {
                server: 1,
                block: 7,
            },
        );
        log.record(
            t(3),
            FaultKind::BlockReplicated {
                server: 4,
                bytes: 65536,
            },
        );
        log.record(
            t(4),
            FaultKind::BlockReplicated {
                server: 5,
                bytes: 1024,
            },
        );
        let r = log.report();
        assert_eq!(r.servers_declared_dead, 1);
        assert_eq!(r.corruptions_detected, 1);
        assert_eq!(r.blocks_re_replicated, 2);
        assert_eq!(r.bytes_re_replicated, 66560);
        assert!(r.to_string().contains("dead-servers=1"));
        assert!(r.to_string().contains("re-replicated=2"));
    }

    #[test]
    fn log_folds_into_report() {
        let log = FaultLog::new();
        let t = SimTime::from_secs;
        log.record(t(1), FaultKind::WorkerCrashed { rank: 3 });
        log.record(t(2), FaultKind::WorkerDetected { rank: 3 });
        log.record(
            t(2),
            FaultKind::TaskReassigned {
                query: 0,
                fragment: 1,
            },
        );
        log.record(
            t(2),
            FaultKind::TaskReassigned {
                query: 0,
                fragment: 2,
            },
        );
        log.record(
            t(2),
            FaultKind::BatchRepaired {
                batch: 0,
                bytes: 128,
            },
        );
        log.record(t(3), FaultKind::MsgLost { src: 1, dst: 0 });
        log.record(t(3), FaultKind::IoRetry { server: 2 });
        let r = log.report();
        assert_eq!(r.crashes, 1);
        assert_eq!(r.detections, 1);
        assert_eq!(r.detection_latency, t(1));
        assert_eq!(r.tasks_reassigned, 2);
        assert_eq!(r.batches_repaired, 1);
        assert_eq!(r.bytes_repaired, 128);
        assert_eq!(r.msg_lost, 1);
        assert_eq!(r.io_retries, 1);
        assert_eq!(log.len(), 7);
        // The Display form is a stable single line.
        assert!(r.to_string().contains("crashes=1"));
    }
}
