//! Microbenchmarks of the simulation substrates: how fast the engine,
//! MPI layer, and file-system model execute on the host. These guard the
//! simulator's own performance (events/second), not simulated time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::rc::Rc;

use s3a_des::{Barrier, Queue, Sim, SimTime};
use s3a_mpi::{MpiConfig, World};
use s3a_net::Fabric;
use s3a_pvfs::{FileSystem, PvfsConfig, Region};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des-engine");

    g.bench_function("spawn_join_1000", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.spawn("root", async move {
                for i in 0..1000 {
                    let s2 = s.clone();
                    s.spawn(format!("t{i}"), async move {
                        s2.sleep(SimTime::from_nanos(i)).await;
                    })
                    .join()
                    .await;
                }
            });
            sim.run().expect("no deadlock")
        })
    });

    g.bench_function("timer_wheel_10k_events", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..100u64 {
                let s = sim.clone();
                sim.spawn(format!("p{i}"), async move {
                    for k in 0..100u64 {
                        s.sleep(SimTime::from_nanos((i * 37 + k * 101) % 1000))
                            .await;
                    }
                });
            }
            sim.run().expect("no deadlock")
        })
    });

    g.bench_function("queue_handoff_10k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let q: Queue<u64> = Queue::new(&sim);
            {
                let q = q.clone();
                sim.spawn("producer", async move {
                    for i in 0..10_000u64 {
                        q.push(i);
                    }
                });
            }
            {
                let q = q.clone();
                sim.spawn("consumer", async move {
                    for _ in 0..10_000u64 {
                        q.pop().await;
                    }
                });
            }
            sim.run().expect("no deadlock")
        })
    });

    g.bench_function("barrier_64_parties_100_rounds", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let bar = Barrier::new(&sim, 64);
            for i in 0..64 {
                let bar = bar.clone();
                let s = sim.clone();
                sim.spawn(format!("p{i}"), async move {
                    for r in 0..100u64 {
                        s.sleep(SimTime::from_nanos((i as u64 * 13 + r) % 50)).await;
                        bar.arrive().await;
                    }
                });
            }
            sim.run().expect("no deadlock")
        })
    });

    g.finish();
}

fn bench_mpi(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi-layer");

    g.bench_function("pingpong_1000_rt", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let world = World::new(&sim, 2, MpiConfig::default());
            for rank in 0..2 {
                let comm = world.comm(rank);
                sim.spawn(format!("r{rank}"), async move {
                    for i in 0..1000u32 {
                        if comm.rank() == 0 {
                            comm.send(1, 1, i, 64).await;
                            let _ = comm.recv(1, 2).await;
                        } else {
                            let _ = comm.recv(0, 1).await;
                            comm.send(0, 2, i, 64).await;
                        }
                    }
                });
            }
            sim.run().expect("no deadlock")
        })
    });

    g.bench_function("allgather_32_ranks", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let world = World::new(&sim, 32, MpiConfig::default());
            for rank in 0..32 {
                let comm = world.comm(rank);
                sim.spawn(format!("r{rank}"), async move {
                    for _ in 0..5 {
                        let v = comm.allgather(rank as u64, 64).await;
                        assert_eq!(v.len(), 32);
                    }
                });
            }
            sim.run().expect("no deadlock")
        })
    });

    g.bench_function("rendezvous_64_large_sends", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let world = World::new(&sim, 2, MpiConfig::default());
            for rank in 0..2 {
                let comm = world.comm(rank);
                sim.spawn(format!("r{rank}"), async move {
                    for _ in 0..64 {
                        if comm.rank() == 0 {
                            comm.send(1, 1, (), 256 * 1024).await;
                        } else {
                            let _ = comm.recv(0, 1).await;
                        }
                    }
                });
            }
            sim.run().expect("no deadlock")
        })
    });

    g.finish();
}

fn bench_pvfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("pvfs-model");
    let scattered: Vec<Region> = (0..512).map(|i| Region::new(i * 9000, 4000)).collect();

    g.bench_function("contiguous_16MiB", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new();
                let (fs, client) = FileSystem::standalone(
                    &sim,
                    PvfsConfig::default(),
                    s3a_net::NetConfig::default(),
                );
                (sim, fs, client)
            },
            |(sim, fs, client)| {
                let fh = fs.open("out");
                sim.spawn("w", async move {
                    fh.write_contiguous(client, 0, 16 * 1024 * 1024)
                        .await
                        .unwrap();
                });
                sim.run().expect("no deadlock")
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("list_write_512_regions", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new();
                let (fs, client) = FileSystem::standalone(
                    &sim,
                    PvfsConfig::default(),
                    s3a_net::NetConfig::default(),
                );
                (sim, fs, client, scattered.clone())
            },
            |(sim, fs, client, regions)| {
                let fh = fs.open("out");
                sim.spawn("w", async move {
                    fh.write_regions(client, &regions).await.unwrap();
                    fh.sync(client).await.unwrap();
                });
                sim.run().expect("no deadlock")
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("parallel_16_clients", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let cfg = PvfsConfig::default();
            let fabric = Rc::new(Fabric::new(16 + cfg.servers, s3a_net::NetConfig::default()));
            let fs = FileSystem::new(&sim, cfg, fabric, 16);
            for cl in 0..16usize {
                let fh = fs.open("out");
                sim.spawn(format!("c{cl}"), async move {
                    let regions: Vec<Region> = (0..64)
                        .map(|i| Region::new((i * 16 + cl as u64) * 5000, 5000))
                        .collect();
                    fh.write_regions(s3a_net::EndpointId(cl), &regions)
                        .await
                        .unwrap();
                });
            }
            sim.run().expect("no deadlock")
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine, bench_mpi, bench_pvfs
}
criterion_main!(benches);
