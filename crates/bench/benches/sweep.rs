//! Sweep-executor and DES hot-path benchmarks.
//!
//! Two groups: `sweep_executor` times the same batch of simulations
//! through `run_batch` at increasing thread counts (the parallel-executor
//! speedup on a multi-core host), and `des_hot_path` times the engine
//! micro-paths the optimization work targets — the timed-event poll loop
//! and the waiter-list wake path.
//!
//! Besides the usual stdout report, measurements are written to
//! `BENCH_sweep.json` at the workspace root. Set `S3ASIM_BENCH_QUICK=1`
//! for a reduced smoke run (CI).

use criterion::{BenchmarkId, Criterion, Stopwatch};

use s3a_bench::small_params;
use s3a_des::{Queue, Sim, SimTime};
use s3asim::{run_batch, ArrivalProcess, RunMode, SchedPolicy, ServiceParams, SimParams, Strategy};

fn quick() -> bool {
    std::env::var("S3ASIM_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// The batch every executor benchmark runs: one small simulation per
/// strategy and process count.
fn batch_params() -> Vec<SimParams> {
    let procs: &[usize] = if quick() { &[4] } else { &[4, 8, 16] };
    let mut params = Vec::new();
    for &strategy in &Strategy::EXTENDED_SET {
        for &p in procs {
            params.push(small_params(p, strategy));
        }
    }
    params
}

fn bench_executor(c: &mut Criterion) {
    let params = batch_params();
    let mut g = c.benchmark_group("sweep_executor");
    g.sample_size(if quick() { 1 } else { 5 });
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| run_batch(&params, threads).expect("batch runs and verifies")),
        );
    }
    g.finish();
}

/// Single-strategy end-to-end runs: the unoptimized POSIX path vs. the
/// locked read-modify-write sieve path, so the regression gate watches
/// the new lock-manager and sieve code on its own.
fn bench_strategy_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategy_io");
    g.sample_size(if quick() { 1 } else { 5 });
    for strategy in [Strategy::WwPosix, Strategy::WwSieve] {
        let params = small_params(8, strategy);
        g.bench_function(strategy.label(), |b| {
            b.iter(|| run_batch(std::slice::from_ref(&params), 1).expect("run verifies"))
        });
    }
    g.finish();
}

/// Replication-overhead series: the same WW-List run at r=1, r=2, r=3.
/// The r=1 entry must stay on the exact pre-replication fast path — the
/// regression gate pins it against the checked-in baseline — while the
/// replicated entries price the quorum writes and block tracking.
fn bench_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication_overhead");
    g.sample_size(if quick() { 1 } else { 5 });
    for replicas in [1usize, 2, 3] {
        let mut params = small_params(8, Strategy::WwList);
        if replicas > 1 {
            params.testbed.pvfs.replicas = replicas;
            params.testbed.pvfs.write_quorum = 2;
            params.testbed.pvfs.failure_domains = 4;
        }
        g.bench_with_input(BenchmarkId::new("replicas", replicas), &params, |b, p| {
            b.iter(|| run_batch(std::slice::from_ref(p), 1).expect("run verifies"))
        });
    }
    g.finish();
}

/// Open-loop service runs: the master's admission/scheduling loop and
/// per-query commit tracking on top of the same small workload, once per
/// scheduling policy. Prices the service-mode event loop (arrival wake-ups,
/// per-query batches, policy picks) against the batch-mode baseline above.
fn bench_service_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_latency");
    g.sample_size(if quick() { 1 } else { 5 });
    for policy in SchedPolicy::ALL {
        let mut params = small_params(8, Strategy::WwList);
        params.workload.queries = 24;
        params.mode = RunMode::Service(ServiceParams {
            arrivals: ArrivalProcess::Poisson { rate: 6.0 },
            policy,
            tenants: 2,
            queue_capacity: 12,
            arrival_seed: 11,
            poll_interval: SimTime::from_millis(5),
        });
        g.bench_with_input(
            BenchmarkId::new("policy", policy.label()),
            &params,
            |b, p| b.iter(|| run_batch(std::slice::from_ref(p), 1).expect("service run verifies")),
        );
    }
    g.finish();
}

fn bench_des_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_hot_path");
    // The hot-path iterations are microseconds each; a quick sample of 2
    // was noisy enough to trip the gate, so quick mode samples just as
    // densely as the full run.
    g.sample_size(10);

    // Timed-event churn: many tasks sleeping in short staggered bursts —
    // exercises the heap pop -> direct poll path and the single-borrow
    // sleep poll.
    let (tasks, rounds) = if quick() { (50u64, 10u32) } else { (200, 50) };
    g.bench_function("sleep_storm", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..tasks {
                let s = sim.clone();
                sim.spawn(format!("t{i}"), async move {
                    for r in 0..rounds {
                        s.sleep(SimTime::from_nanos(i % 7 + u64::from(r % 3) + 1))
                            .await;
                    }
                });
            }
            sim.run().expect("no deadlock")
        })
    });

    // Waiter-list churn: one producer feeding many blocked consumers —
    // every push wakes the whole waiter list through the batched
    // `ready_all` path.
    let (consumers, items) = if quick() { (16u32, 128u32) } else { (64, 1024) };
    g.bench_function("queue_wake_churn", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let q: Queue<u32> = Queue::new(&sim);
            for i in 0..consumers {
                let q = q.clone();
                let n = items / consumers;
                sim.spawn(format!("c{i}"), async move {
                    let mut sum = 0u64;
                    for _ in 0..n {
                        sum += u64::from(q.pop().await);
                    }
                    sum
                });
            }
            let s = sim.clone();
            sim.spawn("producer", async move {
                for i in 0..items {
                    s.sleep(SimTime::from_nanos(1)).await;
                    q.push(i);
                }
            });
            sim.run().expect("no deadlock")
        })
    });

    g.finish();

    // Engine throughput over a full-size sleep storm, reported as raw
    // events/sec. `bench_gate` compares ids containing "events_per_sec"
    // higher-is-better, so this entry holds a throughput floor rather
    // than a latency ceiling.
    let (tasks, rounds) = if quick() {
        (200u64, 50u32)
    } else {
        (2000, 100)
    };
    let reps = 3u64;
    let mut events = 0u64;
    let sw = Stopwatch::new();
    for _ in 0..reps {
        let sim = Sim::new();
        for i in 0..tasks {
            let s = sim.clone();
            sim.spawn(format!("t{i}"), async move {
                for r in 0..rounds {
                    s.sleep(SimTime::from_nanos(i % 7 + u64::from(r % 3) + 1))
                        .await;
                }
            });
        }
        sim.run().expect("no deadlock");
        events += sim.stats().events;
    }
    let eps = events as f64 / (sw.elapsed_ns().max(1) as f64 / 1e9);
    c.record("des_hot_path/events_per_sec", reps, eps);
}

/// Engine-scaling series: the `repro scale` workload (64 queries x 512
/// fragments against a 128-server PVFS) at 1k — and, outside quick mode,
/// 4k and 10k — worker ranks, master/worker strategy, one timed run per
/// point. Quick mode runs only the 1k point; the checked-in baseline
/// carries only ids quick CI emits, so the larger points inform local
/// runs without gating.
fn bench_scale_ranks(c: &mut Criterion) {
    use s3a_workload::WorkloadParams;
    let rank_counts: &[usize] = if quick() {
        &[1000]
    } else {
        &[1000, 4000, 10_000]
    };
    for &workers in rank_counts {
        let mut p = SimParams {
            procs: workers + 1,
            strategy: Strategy::Mw,
            workload: WorkloadParams {
                queries: 64,
                fragments: 512,
                min_results: 100,
                max_results: 200,
                ..WorkloadParams::default()
            },
            ..SimParams::default()
        };
        p.testbed.pvfs.servers = 128;
        let sw = Stopwatch::new();
        run_batch(std::slice::from_ref(&p), 1).expect("scale run verifies");
        c.record(format!("scale/ranks/{workers}"), 1, sw.elapsed_ns() as f64);
    }
}

/// Sharded-master series: the scale workload at 1k workers under 1, 2,
/// and 4 master shards (WW-List), reported as engine events/sec so the
/// gate holds a throughput floor per shard count. The masters=1 entry
/// runs the unchanged single-master path — pinning it next to the
/// sharded entries keeps the shard machinery honest about its overhead.
fn bench_shards(c: &mut Criterion) {
    use s3a_workload::WorkloadParams;
    let workers = if quick() { 500 } else { 1000 };
    for masters in [1usize, 2, 4] {
        let mut p = SimParams {
            procs: workers + masters,
            num_masters: masters,
            strategy: Strategy::WwList,
            workload: WorkloadParams {
                queries: 64,
                fragments: 512,
                min_results: 100,
                max_results: 200,
                ..WorkloadParams::default()
            },
            ..SimParams::default()
        };
        p.testbed.pvfs.servers = 128;
        p.testbed.mpi.ranks_per_node = 1;
        let sw = Stopwatch::new();
        let reports = run_batch(std::slice::from_ref(&p), 1).expect("shard run verifies");
        let eps = reports[0].engine.events as f64 / (sw.elapsed_ns().max(1) as f64 / 1e9);
        c.record(format!("shards/masters/{masters}/events_per_sec"), 1, eps);
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_executor(&mut c);
    bench_strategy_io(&mut c);
    bench_replication(&mut c);
    bench_service_latency(&mut c);
    bench_des_hot_path(&mut c);
    bench_scale_ranks(&mut c);
    bench_shards(&mut c);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    c.save_json(path).expect("write BENCH_sweep.json");
    println!("wrote {path}");
}
