//! One Criterion benchmark per paper figure: measures the host-side cost
//! of regenerating a representative data point of each figure (the full
//! sweeps live in the `repro` binary). Keeps the figure paths exercised
//! under `cargo bench` and tracks simulator performance regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use s3a_bench::params_for;
use s3a_bench::Point;
use s3asim::{run, Strategy};

fn bench_fig2_point(c: &mut Criterion) {
    // Figure 2: overall time vs. procs. Representative point: 32 procs.
    let mut g = c.benchmark_group("fig2_proc_scaling");
    g.sample_size(10);
    for strategy in Strategy::PAPER_SET {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let params = params_for(Point {
                    procs: 32,
                    speed: 1.0,
                    strategy,
                    sync: false,
                });
                b.iter(|| {
                    let r = run(&params);
                    r.verify().expect("exact output");
                    r.overall
                })
            },
        );
    }
    g.finish();
}

fn bench_fig34_breakdowns(c: &mut Criterion) {
    // Figures 3/4: phase breakdowns under the sync option.
    let mut g = c.benchmark_group("fig3_fig4_sync_breakdowns");
    g.sample_size(10);
    for strategy in Strategy::PAPER_SET {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let params = params_for(Point {
                    procs: 32,
                    speed: 1.0,
                    strategy,
                    sync: true,
                });
                b.iter(|| {
                    let r = run(&params);
                    r.verify().expect("exact output");
                    r.worker_mean
                })
            },
        );
    }
    g.finish();
}

fn bench_fig5_point(c: &mut Criterion) {
    // Figure 5: overall time vs. compute speed at 64 procs.
    let mut g = c.benchmark_group("fig5_compute_scaling");
    g.sample_size(10);
    for speed in [0.4, 6.4] {
        g.bench_with_input(BenchmarkId::from_parameter(speed), &speed, |b, &speed| {
            let params = params_for(Point {
                procs: 64,
                speed,
                strategy: Strategy::WwList,
                sync: false,
            });
            b.iter(|| {
                let r = run(&params);
                r.verify().expect("exact output");
                r.overall
            })
        });
    }
    g.finish();
}

fn bench_fig67_breakdowns(c: &mut Criterion) {
    // Figures 6/7: speed-sweep breakdowns; the slow-compute end is the
    // heavy case (largest simulated spans).
    let mut g = c.benchmark_group("fig6_fig7_speed_breakdowns");
    g.sample_size(10);
    for strategy in [Strategy::Mw, Strategy::WwColl] {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let params = params_for(Point {
                    procs: 64,
                    speed: 0.4,
                    strategy,
                    sync: true,
                });
                b.iter(|| {
                    let r = run(&params);
                    r.verify().expect("exact output");
                    r.worker_mean
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2_point,
    bench_fig34_breakdowns,
    bench_fig5_point,
    bench_fig67_breakdowns
);
criterion_main!(benches);
