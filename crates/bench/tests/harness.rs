//! Tests for the figure-reproduction harness itself: table rendering,
//! claim arithmetic, and the small-parameter helpers.

use s3a_bench::{paper, params_for, small_params, Point, PROC_SWEEP, SPEED_SWEEP};
use s3asim::{run, Strategy};

#[test]
fn sweep_constants_match_the_paper() {
    assert_eq!(PROC_SWEEP, [2, 4, 8, 16, 32, 48, 64, 96]);
    assert_eq!(SPEED_SWEEP.len(), 9);
    assert_eq!(SPEED_SWEEP[0], 0.1);
    assert_eq!(SPEED_SWEEP[8], 25.6);
    // Each speed doubles the previous one.
    for w in SPEED_SWEEP.windows(2) {
        assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
    }
}

#[test]
fn params_for_carries_the_point() {
    let p = params_for(Point {
        procs: 48,
        speed: 3.2,
        strategy: Strategy::WwColl,
        sync: true,
    });
    assert_eq!(p.procs, 48);
    assert_eq!(p.compute_speed, 3.2);
    assert_eq!(p.strategy, Strategy::WwColl);
    assert!(p.query_sync);
    // Paper workload untouched.
    assert_eq!(p.workload.queries, 20);
    assert_eq!(p.workload.fragments, 128);
}

#[test]
fn claims_cover_both_suites_and_three_rivals() {
    let at_96 = paper::CLAIMS.iter().filter(|c| c.procs == 96).count();
    let at_64 = paper::CLAIMS.iter().filter(|c| c.procs == 64).count();
    assert_eq!(at_96, 6);
    assert_eq!(at_64, 6);
    for rival in [Strategy::Mw, Strategy::WwPosix, Strategy::WwColl] {
        assert_eq!(
            paper::CLAIMS.iter().filter(|c| c.slower == rival).count(),
            4,
            "{rival} should appear in 4 claims"
        );
    }
    // All factors are "WW-List wins" statements.
    for c in paper::CLAIMS {
        assert!(c.factor > 1.0);
    }
}

#[test]
fn measure_computes_the_ratio() {
    let claim = paper::CLAIMS[0];
    let a = run(&small_params(4, claim.slower));
    let b = run(&small_params(4, Strategy::WwList));
    let (measured, target) = paper::measure(&claim, &a, &b);
    assert_eq!(target, claim.factor);
    let expect = a.overall.as_secs_f64() / b.overall.as_secs_f64();
    assert!((measured - expect).abs() < 1e-12);
}

#[test]
fn small_params_run_quickly_and_exactly() {
    for strategy in Strategy::PAPER_SET {
        let r = run(&small_params(6, strategy));
        r.verify().unwrap_or_else(|e| panic!("{strategy}: {e}"));
        assert!(r.engine.events > 0);
    }
}

#[test]
fn major_phases_listed_once_each() {
    let phases = s3a_bench::major_phases();
    let mut seen = std::collections::BTreeSet::new();
    for p in phases {
        assert!(seen.insert(p.index()), "duplicate phase {p}");
    }
}
