//! Benchmark regression gate for CI.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [tolerance_pct]
//! ```
//!
//! Compares a fresh `BENCH_sweep.json` (written by `cargo bench --bench
//! sweep`) against the checked-in `BENCH_baseline.json`. Every benchmark
//! id present in the baseline must exist in the current run and its
//! `mean_ns` must not exceed the baseline by more than the tolerance
//! (default 25%). Ids new in the current run are reported but never fail
//! the gate. Exit status: 0 = within tolerance, 1 = regression or missing
//! id, 2 = usage/parse error.
//!
//! Most entries are latencies where lower is better. Ids containing
//! `events_per_sec` are throughputs and are gated in the opposite
//! direction: the current value must not fall below the baseline by more
//! than the tolerance.
//!
//! Timings in CI are noisy; the tolerance is deliberately wide so the
//! gate only catches order-of-magnitude mistakes (an accidentally
//! quadratic wake path, a lost fast path), not scheduler jitter.

use std::process::exit;

use s3a_obs::json::{self, Value};

fn usage() -> ! {
    eprintln!("usage: bench_gate <baseline.json> <current.json> [tolerance_pct]");
    exit(2);
}

/// Extract `id -> mean_ns` from a criterion-style `{"benchmarks": [...]}`
/// document.
fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        exit(2);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: {path} is not valid JSON: {e}");
        exit(2);
    });
    let Some(benches) = doc.get("benchmarks").and_then(Value::as_arr) else {
        eprintln!("bench_gate: {path}: missing \"benchmarks\" array");
        exit(2);
    };
    let mut out = Vec::new();
    for b in benches {
        let (Some(id), Some(mean)) = (
            b.get("id").and_then(Value::as_str),
            b.get("mean_ns").and_then(Value::as_num),
        ) else {
            eprintln!("bench_gate: {path}: entry without id/mean_ns");
            exit(2);
        };
        out.push((id.to_string(), mean));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(base_path), Some(cur_path)) = (args.first(), args.get(1)) else {
        usage();
    };
    let tolerance_pct: f64 = match args.get(2) {
        None => 25.0,
        Some(t) => t.parse().unwrap_or_else(|_| usage()),
    };

    let baseline = load(base_path);
    let current = load(cur_path);
    let limit = 1.0 + tolerance_pct / 100.0;
    let mut failures = 0usize;

    println!(
        "{:<34} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "current", "ratio"
    );
    for (id, base_mean) in &baseline {
        let Some((_, cur_mean)) = current.iter().find(|(cid, _)| cid == id) else {
            println!("{id:<34} {base_mean:>12.0} {:>12} {:>8}  MISSING", "-", "-");
            failures += 1;
            continue;
        };
        let ratio = if *base_mean > 0.0 {
            cur_mean / base_mean
        } else {
            1.0
        };
        // Throughput series regress by falling, latency series by rising.
        let higher_is_better = id.contains("events_per_sec");
        let regressed = if higher_is_better {
            ratio < 1.0 / limit
        } else {
            ratio > limit
        };
        println!(
            "{id:<34} {base_mean:>12.0} {cur_mean:>12.0} {ratio:>7.2}x  {}",
            if regressed { "REGRESSED" } else { "ok" }
        );
        if regressed {
            failures += 1;
        }
    }
    for (id, cur_mean) in &current {
        if !baseline.iter().any(|(bid, _)| bid == id) {
            println!(
                "{id:<34} {:>12} {cur_mean:>12.0} {:>8}  new (ignored)",
                "-", "-"
            );
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} benchmark(s) regressed beyond {tolerance_pct:.0}% or went missing"
        );
        exit(1);
    }
    println!(
        "bench_gate: all {} benchmarks within {tolerance_pct:.0}% of baseline",
        baseline.len()
    );
}
