//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! repro fig2      overall execution time vs. process count (both sync modes)
//! repro fig3      phase breakdowns vs. procs: MW and WW-POSIX
//! repro fig4      phase breakdowns vs. procs: WW-List and WW-Coll
//! repro fig5      overall execution time vs. compute speed (64 procs)
//! repro fig6      phase breakdowns vs. speed: MW and WW-POSIX
//! repro fig7      phase breakdowns vs. speed: WW-List and WW-Coll
//! repro claims    score the paper's headline ratios against this build
//! repro colllist  the conclusion's proposed list-I/O collective vs. WW-Coll
//! repro sieve     data-sieving crossover: WW-DS vs. WW-POSIX over worker count
//! repro faults    recovery tax per strategy under injected faults
//! repro replication  durability vs. write amplification: replicated PVFS under domain death
//! repro service   open-loop service mode: tail latency per strategy × scheduling policy
//! repro scale     engine throughput at 1k/4k/10k ranks (--quick: 1k only)
//! repro shards    sharded-master sweep: masters x strategy x workers (--quick: small)
//! repro mc        bounded schedule-space model check of the failover protocol (--quick: CI smoke)
//! repro trace     request-level observability capture (Chrome trace + metrics)
//! repro all       everything above (figures share sweep runs)
//! ```
//!
//! Exit codes distinguish the typed failure classes: `1` for generic
//! failures (deadlock, verification, outage past the retry budget),
//! `2` for usage/parameter errors, `3` when a read found every copy of
//! a block corrupt (checksum mismatch), `4` when a write could not
//! reach its replica quorum.
//!
//! `--trace-out FILE` (valid anywhere on the command line) redirects the
//! `trace` command's Chrome JSON; giving the flag with no subcommand
//! implies `trace`.
//!
//! Tables are printed to stdout; machine-readable CSVs land in
//! `results/`. Absolute times are simulated seconds on the calibrated
//! testbed model; the comparison targets are the *shapes* (who wins, by
//! what factor) — see EXPERIMENTS.md.

use std::fs;
use std::path::Path;

use s3a_bench::{
    paper, run_proc_sweep, run_sieve_sweep, run_speed_sweep, small_params, Point, Sweep,
    SIEVE_PROC_SWEEP,
};
use s3asim::{
    default_threads, export_chrome, export_metrics_csv, run_batch, try_run, ArrivalProcess,
    Columns, PvfsError, RunReport, SchedPolicy, ServiceParams, SimError, SimParams, SimTime,
    Strategy,
};

/// Map a typed failure to a distinct process exit code so scripts can
/// tell an unreachable server from rotten data from a missed quorum.
fn exit_code(e: &SimError) -> i32 {
    match e {
        SimError::InvalidParams(_) => 2,
        SimError::Io(PvfsError::ChecksumMismatch { .. }) => 3,
        SimError::Io(PvfsError::InsufficientReplicas { .. }) => 4,
        _ => 1,
    }
}

/// Report a typed failure and exit — no panic backtrace for predictable
/// errors (bad parameters, deadlock diagnosis, verification mismatch,
/// unrecoverable I/O).
fn fail(context: &str, e: &SimError) -> ! {
    eprintln!("repro: {context}: {e}");
    std::process::exit(exit_code(e));
}

/// Run one configuration, exiting with a readable error on failure. The
/// report arrives verified (see [`try_run`]).
fn run_or_exit(context: &str, params: &SimParams) -> RunReport {
    try_run(params).unwrap_or_else(|e| fail(context, &e))
}

fn write_results(name: &str, contents: &str) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if fs::write(&path, contents).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }
}

struct Cache {
    proc_sweep: Option<Sweep>,
    speed_sweep: Option<Sweep>,
}

impl Cache {
    fn procs(&mut self) -> &Sweep {
        self.proc_sweep.get_or_insert_with(|| {
            let s = run_proc_sweep(true).unwrap_or_else(|e| fail("process sweep", &e));
            write_results("proc_sweep.csv", &s.csv());
            s
        })
    }

    fn speeds(&mut self) -> &Sweep {
        self.speed_sweep.get_or_insert_with(|| {
            let s = run_speed_sweep(true).unwrap_or_else(|e| fail("compute-speed sweep", &e));
            write_results("speed_sweep.csv", &s.csv());
            s
        })
    }
}

fn fig2(c: &mut Cache) {
    let s = c.procs();
    println!("==== Figure 2: overall execution time vs. processes ====");
    println!("{}", s.overall_table("procs"));
}

fn fig3(c: &mut Cache) {
    let s = c.procs();
    println!("==== Figure 3: phase breakdowns vs. processes (MW, WW-POSIX) ====");
    for strategy in [Strategy::Mw, Strategy::WwPosix] {
        for sync in [false, true] {
            println!("{}", s.phase_table(strategy, sync, "procs"));
        }
    }
}

fn fig4(c: &mut Cache) {
    let s = c.procs();
    println!("==== Figure 4: phase breakdowns vs. processes (WW-List, WW-Coll) ====");
    for strategy in [Strategy::WwList, Strategy::WwColl] {
        for sync in [false, true] {
            println!("{}", s.phase_table(strategy, sync, "procs"));
        }
    }
}

fn fig5(c: &mut Cache) {
    let s = c.speeds();
    println!("==== Figure 5: overall execution time vs. compute speed (64 procs) ====");
    println!("{}", s.overall_table("speed"));
}

fn fig6(c: &mut Cache) {
    let s = c.speeds();
    println!("==== Figure 6: phase breakdowns vs. compute speed (MW, WW-POSIX) ====");
    for strategy in [Strategy::Mw, Strategy::WwPosix] {
        for sync in [false, true] {
            println!("{}", s.phase_table(strategy, sync, "speed"));
        }
    }
}

fn fig7(c: &mut Cache) {
    let s = c.speeds();
    println!("==== Figure 7: phase breakdowns vs. compute speed (WW-List, WW-Coll) ====");
    for strategy in [Strategy::WwList, Strategy::WwColl] {
        for sync in [false, true] {
            println!("{}", s.phase_table(strategy, sync, "speed"));
        }
    }
}

fn claims(c: &mut Cache) {
    println!("==== Paper headline claims vs. this reproduction ====");
    println!(
        "{:<44} {:>10} {:>10} {:>8}",
        "claim (slower strategy vs WW-List)", "paper", "measured", "ok?"
    );
    let mut csv = String::from("procs,speed,sync,slower,paper_factor,measured_factor\n");
    for claim in paper::CLAIMS {
        let sweep = if claim.procs == 96 {
            c.procs()
        } else {
            c.speeds()
        };
        let slower = sweep.get(claim.procs, claim.speed, claim.slower, claim.sync);
        let list = sweep.get(claim.procs, claim.speed, Strategy::WwList, claim.sync);
        let (measured, target) = paper::measure(&claim, slower, list);
        // "Shape holds" = same winner and the factor within ~2x either way.
        let ok = measured > 1.0 && measured / target < 2.0 && target / measured < 2.0;
        println!(
            "{:<44} {:>9.2}x {:>9.2}x {:>8}",
            format!(
                "{} @ {}p speed {} {}",
                claim.slower,
                claim.procs,
                claim.speed,
                if claim.sync { "sync" } else { "no-sync" }
            ),
            target,
            measured,
            if ok { "yes" } else { "OFF" }
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{:.3}\n",
            claim.procs,
            claim.speed,
            claim.sync,
            claim.slower.label(),
            claim.factor,
            measured
        ));
    }
    let list_sync = c
        .procs()
        .get(96, 1.0, Strategy::WwList, true)
        .overall
        .as_secs_f64();
    let coll_sync = c
        .procs()
        .get(96, 1.0, Strategy::WwColl, true)
        .overall
        .as_secs_f64();
    println!(
        "\nabsolute anchors at 96p/sync: WW-List {:.2}s (paper {:.2}s), WW-Coll {:.2}s (paper {:.2}s)",
        list_sync,
        paper::WW_LIST_SYNC_96,
        coll_sync,
        paper::WW_COLL_SYNC_96
    );
    write_results("claims.csv", &csv);
}

fn colllist() {
    println!("==== Conclusion follow-up: list-I/O collective vs. two-phase WW-Coll ====");
    println!("(the paper suggests collective I/O built on list I/O + forced sync");
    println!(" may beat ROMIO's two-phase for this access pattern)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>9}",
        "procs", "WW-Coll", "WW-CollList", "speedup"
    );
    let proc_counts = [16usize, 32, 64, 96];
    let params: Vec<SimParams> = proc_counts
        .iter()
        .flat_map(|&procs| {
            [Strategy::WwColl, Strategy::WwCollList].map(|strategy| {
                s3a_bench::params_for(Point {
                    procs,
                    speed: 1.0,
                    strategy,
                    sync: false,
                })
            })
        })
        .collect();
    let reports =
        run_batch(&params, default_threads()).unwrap_or_else(|e| fail("colllist study", &e));
    let mut csv = String::from("procs,ww_coll_s,ww_colllist_s\n");
    for (pair, &procs) in reports.chunks(2).zip(&proc_counts) {
        let a = pair[0].overall.as_secs_f64();
        let b = pair[1].overall.as_secs_f64();
        println!("{procs:>8} {a:>11.2}s {b:>11.2}s {:>8.2}x", a / b);
        csv.push_str(&format!("{procs},{a:.3},{b:.3}\n"));
    }
    write_results("colllist.csv", &csv);
}

/// The data-sieving follow-up (Thakur, Gropp & Lusk): WW-DS vs. the
/// unoptimized WW-POSIX over worker count. Each query's output is
/// interleaved across workers, so worker count controls how dense one
/// worker's regions sit in the file — the knob the crossover turns on.
fn sieve() {
    println!("==== Data sieving: WW-DS vs. WW-POSIX over worker count ====");
    println!("(few workers = dense regions: one locked read-modify-write");
    println!(" replaces many requests; many workers = sparse regions and");
    println!(" contended locks: the read-back and serialization lose)\n");
    let s = run_sieve_sweep(true).unwrap_or_else(|e| fail("sieve sweep", &e));
    write_results("sieve_sweep.csv", &s.csv());
    println!("{}", s.overall_table("procs"));
    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>9}",
        "procs", "WW-POSIX", "WW-DS", "ratio", "winner"
    );
    for procs in SIEVE_PROC_SWEEP {
        let posix = s
            .get(procs, 1.0, Strategy::WwPosix, false)
            .overall
            .as_secs_f64();
        let ds = s
            .get(procs, 1.0, Strategy::WwSieve, false)
            .overall
            .as_secs_f64();
        println!(
            "{procs:>6} {posix:>11.2}s {ds:>11.2}s {:>8.2}x {:>9}",
            posix / ds,
            if ds < posix { "WW-DS" } else { "WW-POSIX" }
        );
    }
    println!();
}

/// Reproduce the introduction's motivation (§1): query segmentation
/// stops scaling when the database outgrows worker memory, and wastes
/// processors when queries are few; database segmentation does neither.
fn segmentation() {
    use s3asim::Segmentation;
    println!("==== Intro motivation: query vs database segmentation ====");
    println!("(1 GiB worker memory; WW-List writes; paper workload)\n");
    println!(
        "{:>6} {:>10} {:>16} {:>16} {:>16}",
        "procs", "db size", "db-seg", "query-seg", "reload I/O"
    );
    let mut csv = String::from("procs,db_gib,db_seg_s,query_seg_s,bytes_read\n");
    for procs in [8usize, 32, 64] {
        for db_gib in [1u64, 4] {
            let mut base = SimParams {
                procs,
                ..SimParams::default()
            };
            base.workload.database_bytes = db_gib * 1024 * 1024 * 1024;
            let pair = run_batch(
                &[
                    SimParams {
                        segmentation: Segmentation::Database,
                        ..base.clone()
                    },
                    SimParams {
                        segmentation: Segmentation::Query,
                        ..base
                    },
                ],
                default_threads(),
            )
            .unwrap_or_else(|e| fail("segmentation study", &e));
            let (db, qs) = (&pair[0], &pair[1]);
            println!(
                "{:>6} {:>7}GiB {:>15.1}s {:>15.1}s {:>13.1}GB",
                procs,
                db_gib,
                db.overall.as_secs_f64(),
                qs.overall.as_secs_f64(),
                qs.fs.bytes_read as f64 / 1e9
            );
            csv.push_str(&format!(
                "{},{},{:.2},{:.2},{}\n",
                procs,
                db_gib,
                db.overall.as_secs_f64(),
                qs.overall.as_secs_f64(),
                qs.fs.bytes_read
            ));
        }
    }
    println!(
        "\nAs §1 argues: once the database exceeds memory, query segmentation\n\
         drowns in reload I/O, and its parallelism is capped by the query count."
    );
    write_results("segmentation.csv", &csv);
}

/// Robustness study: the recovery tax each write strategy pays under a
/// deterministic fault schedule. Every faulty run is still verified to
/// produce the complete, dense, score-ordered output file — faults may
/// only cost time, never bytes.
fn faults() {
    use s3a_des::SimTime;
    use s3asim::{try_run_with_restart, FaultParams, ServerOutage, ServerSlowdown};

    let base = |strategy: Strategy| SimParams {
        procs: 16,
        strategy,
        write_every_n_queries: 2,
        ..SimParams::default()
    };
    let crashed = |strategy: Strategy| {
        let mut p = base(strategy);
        p.faults = FaultParams {
            worker_crashes: vec![(3, SimTime::from_secs(2))],
            ..FaultParams::default()
        };
        p
    };
    let mut csv = String::from(
        "strategy,fault,clean_s,faulty_s,tax_s,detect_ms,reassigned,repaired,repaired_kb,io_retries\n",
    );

    println!("==== Robustness: recovery tax per write strategy ====");
    println!("(worker 3 fail-stops at t=2s, mid-batch; master heartbeat");
    println!(" detection, task reassignment, and batch repair take over)\n");
    println!(
        "{:>10} {:>9} {:>9} {:>7} {:>10} {:>6} {:>9} {:>11}",
        "strategy", "clean", "crashed", "tax", "detect", "reasgn", "repaired", "repaired-KB"
    );
    // One batch drives the whole table: for every strategy, the clean
    // baseline, the crashed run, and its determinism replay run across
    // the thread pool; reports come back in input order, already
    // verified (faults may only cost time, never bytes).
    let strategies = [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwSieve,
    ];
    let params: Vec<SimParams> = strategies
        .iter()
        .flat_map(|&s| [base(s), crashed(s), crashed(s)])
        .collect();
    let reports = run_batch(&params, default_threads()).unwrap_or_else(|e| fail("fault study", &e));
    for (trio, &strategy) in reports.chunks(3).zip(&strategies) {
        let (clean, faulty, again) = (&trio[0], &trio[1], &trio[2]);
        let f = faulty.faults.as_ref().expect("fault report");
        assert_eq!(f.detections, 1, "{strategy}: detector missed the crash");
        let (a, b) = (clean.overall.as_secs_f64(), faulty.overall.as_secs_f64());
        println!(
            "{:>10} {:>8.2}s {:>8.2}s {:>6.2}s {:>8.0}ms {:>6} {:>9} {:>10.0}K",
            strategy.label(),
            a,
            b,
            b - a,
            f.detection_latency.as_secs_f64() * 1e3,
            f.tasks_reassigned,
            f.batches_repaired,
            f.bytes_repaired as f64 / 1024.0
        );
        csv.push_str(&format!(
            "{},crash,{a:.3},{b:.3},{:.3},{:.1},{},{},{:.1},{}\n",
            strategy.label(),
            b - a,
            f.detection_latency.as_secs_f64() * 1e3,
            f.tasks_reassigned,
            f.batches_repaired,
            f.bytes_repaired as f64 / 1024.0,
            f.io_retries
        ));
        // Determinism spot-check: the same schedule must replay exactly
        // even when the replay ran on a different worker thread.
        assert_eq!(
            faulty.csv_row(),
            again.csv_row(),
            "{strategy}: not replayable"
        );
        assert_eq!(faulty.faults, again.faults, "{strategy}: not replayable");
    }
    println!("  (each faulty run re-ran byte-identical: schedules are deterministic)\n");

    println!("---- lossy fabric: 3% loss, 2% duplication, 4% extra delay (WW-List) ----");
    {
        let mut p = base(Strategy::WwList);
        p.faults = FaultParams {
            seed: 7,
            msg_loss_per_mille: 30,
            msg_dup_per_mille: 20,
            msg_delay_per_mille: 40,
            ..FaultParams::default()
        };
        let pair = run_batch(&[base(Strategy::WwList), p], default_threads())
            .unwrap_or_else(|e| fail("lossy-fabric study", &e));
        let (clean, r) = (&pair[0], &pair[1]);
        let f = r.faults.as_ref().expect("fault report");
        let (a, b) = (clean.overall.as_secs_f64(), r.overall.as_secs_f64());
        println!(
            "  clean {a:.2}s, lossy {b:.2}s (Δ {:+.2}s); lost/dup/delayed = {}/{}/{}\n",
            b - a,
            f.msg_lost,
            f.msg_duplicated,
            f.msg_delayed
        );
        csv.push_str(&format!(
            "{},lossy-fabric,{a:.3},{b:.3},{:.3},,,,,\n",
            Strategy::WwList.label(),
            b - a
        ));
    }

    println!("---- degraded PVFS: server 0 at 1/4 speed, server 1 down 2-40s (WW-POSIX) ----");
    {
        let mut p = base(Strategy::WwPosix);
        p.faults = FaultParams {
            server_slowdowns: vec![ServerSlowdown {
                server: 0,
                from: SimTime::ZERO,
                until: SimTime::from_secs(10_000),
                factor: 4.0,
            }],
            server_outages: vec![ServerOutage {
                server: 1,
                from: SimTime::from_secs(2),
                until: SimTime::from_secs(40),
            }],
            // A retry budget that outlasts the outage: clients back off
            // half a second at a time instead of failing the run.
            max_io_retries: 100,
            io_retry_backoff: SimTime::from_millis(500),
            ..FaultParams::default()
        };
        let pair = run_batch(&[base(Strategy::WwPosix), p], default_threads())
            .unwrap_or_else(|e| fail("degraded-pvfs study", &e));
        let (clean, r) = (&pair[0], &pair[1]);
        let f = r.faults.as_ref().expect("fault report");
        let (a, b) = (clean.overall.as_secs_f64(), r.overall.as_secs_f64());
        println!(
            "  clean {a:.2}s, degraded {b:.2}s (tax {:.2}s); outage retries paid: {}\n",
            b - a,
            f.io_retries
        );
        csv.push_str(&format!(
            "{},degraded-pvfs,{a:.3},{b:.3},{:.3},,,,,{}\n",
            Strategy::WwPosix.label(),
            b - a,
            f.io_retries
        ));
    }

    println!("---- checkpoint-restart: kill once the first extent is durable ----");
    println!("(the commit log is the checkpoint; a restarted run re-plans only the");
    println!(" non-contiguous remainder and the merged file still verifies exact)\n");
    println!(
        "{:>10} {:>9} {:>11} {:>9} {:>13}",
        "strategy", "full", "durable-at", "resumed", "batches-kept"
    );
    let restart_strategies = [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwColl,
    ];
    let restart_params: Vec<SimParams> = restart_strategies.iter().map(|&s| base(s)).collect();
    let fulls = run_batch(&restart_params, default_threads())
        .unwrap_or_else(|e| fail("restart baselines", &e));
    for ((p, full), &strategy) in restart_params.iter().zip(&fulls).zip(&restart_strategies) {
        let kill = full
            .commits
            .entries()
            .iter()
            .find(|e| e.base == 0)
            .expect("some batch starts the file")
            .committed_at;
        // `try_run_with_restart` verifies both runs and the merged
        // coverage before returning the outcome.
        let outcome = try_run_with_restart(p, kill)
            .unwrap_or_else(|e| fail(&format!("{strategy} restart"), &e));
        println!(
            "{:>10} {:>8.2}s {:>9.1}KB {:>8.2}s {:>13}",
            strategy.label(),
            full.overall.as_secs_f64(),
            outcome.resume.base_offset as f64 / 1024.0,
            outcome.second.overall.as_secs_f64(),
            outcome.resume.done_batches.len()
        );
        csv.push_str(&format!(
            "{},restart,{:.3},{:.3},,,,{},,\n",
            strategy.label(),
            full.overall.as_secs_f64(),
            outcome.second.overall.as_secs_f64(),
            outcome.resume.done_batches.len()
        ));
    }
    write_results("faults.csv", &csv);
}

/// Replication study: durability vs. write amplification. For every
/// strategy, four configurations run on the same workload — plain
/// `r=1`, replicated `r=2` and `r=3` (`w=2`) over 4 failure domains,
/// and `r=3` with one whole domain (4 of the 16 servers) losing power
/// permanently mid-run. The replicated runs must survive the domain
/// death with zero lost blocks and replay byte-identically; an `r=1`
/// run on the same fault schedule must fail with the typed outage error
/// instead of fabricating output.
fn replication() {
    use s3a_des::SimTime;
    use s3asim::{DomainOutage, FaultParams};

    let base = |strategy: Strategy, replicas: usize| {
        let mut p = SimParams {
            procs: 16,
            strategy,
            write_every_n_queries: 2,
            ..SimParams::default()
        };
        if replicas > 1 {
            p.testbed.pvfs.replicas = replicas;
            p.testbed.pvfs.write_quorum = 2;
            p.testbed.pvfs.failure_domains = 4;
        }
        p
    };
    let domain_death = || FaultParams {
        domain_outages: vec![DomainOutage {
            domain: 1,
            from: SimTime::from_secs(2),
            until: SimTime::from_secs(1_000_000),
        }],
        detection_timeout: SimTime::from_millis(500),
        max_io_retries: 8,
        io_retry_backoff: SimTime::from_millis(20),
        ..FaultParams::default()
    };

    println!("==== Replication: durability vs. write amplification ====");
    println!("(r=3, w=2 over 4 failure domains; at t=2s domain 1 — 4 of the");
    println!(" 16 servers — loses power for good; background re-replication");
    println!(" rebuilds every under-replicated block over the shared fabric)\n");
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>7} {:>10} {:>9} {:>8} {:>6} {:>6}",
        "strategy",
        "r=1",
        "r=2",
        "r=3",
        "amp",
        "r=3+death",
        "repair-KB",
        "repaired",
        "dead",
        "lost"
    );

    // Per strategy: r=1/2/3 clean, r=3 + domain death, and the death run
    // again (the determinism replay) — all across the pool.
    let params: Vec<SimParams> = Strategy::EXTENDED_SET
        .iter()
        .flat_map(|&s| {
            let mut died = base(s, 3);
            died.faults = domain_death();
            [base(s, 1), base(s, 2), base(s, 3), died.clone(), died]
        })
        .collect();
    let reports =
        run_batch(&params, default_threads()).unwrap_or_else(|e| fail("replication study", &e));
    let mut csv = String::new();
    for (set, &strategy) in reports.chunks(5).zip(Strategy::EXTENDED_SET.iter()) {
        let (r1, r2, r3, died, again) = (&set[0], &set[1], &set[2], &set[3], &set[4]);
        let f = died.faults.as_ref().expect("fault report");
        assert_eq!(
            died.fs.lost_blocks, 0,
            "{strategy}: a domain death under r=3 must lose nothing"
        );
        assert_eq!(
            died.csv_row(),
            again.csv_row(),
            "{strategy}: recovery must replay byte-identically"
        );
        assert_eq!(
            died.fs, again.fs,
            "{strategy}: recovery must replay byte-identically"
        );
        let amp =
            (r3.fs.bytes_written + r3.fs.replica_bytes_written) as f64 / r3.fs.bytes_written as f64;
        println!(
            "{:>10} {:>8.2}s {:>8.2}s {:>8.2}s {:>6.2}x {:>9.2}s {:>9.0} {:>8} {:>6} {:>6}",
            strategy.label(),
            r1.overall.as_secs_f64(),
            r2.overall.as_secs_f64(),
            r3.overall.as_secs_f64(),
            amp,
            died.overall.as_secs_f64(),
            died.fs.repair_bytes as f64 / 1024.0,
            died.fs.repaired_blocks,
            f.servers_declared_dead,
            died.fs.lost_blocks
        );
        for (config, r) in [
            ("r1", r1),
            ("r2", r2),
            ("r3", r3),
            ("r3+domain-death", died),
        ] {
            let rf = r.faults.as_ref();
            let mut cols = Columns::new();
            cols.push("strategy", strategy.label())
                .push("config", config)
                .push("overall_s", format!("{:.3}", r.overall.as_secs_f64()))
                .push("bytes_written", r.fs.bytes_written)
                .push("replica_bytes", r.fs.replica_bytes_written)
                .push("repair_bytes", r.fs.repair_bytes)
                .push("repaired_blocks", r.fs.repaired_blocks)
                .push("lost_blocks", r.fs.lost_blocks)
                .push(
                    "servers_declared_dead",
                    rf.map_or(0, |f| f.servers_declared_dead),
                );
            if csv.is_empty() {
                csv.push_str(&cols.header());
                csv.push('\n');
            }
            csv.push_str(&cols.row());
            csv.push('\n');
        }
    }
    println!("  (each death run re-ran byte-identical: recovery is deterministic)\n");

    println!("---- the same domain death without replication (WW-List, r=1) ----");
    let mut honest = base(Strategy::WwList, 1);
    honest.faults = domain_death();
    match try_run(&honest) {
        Err(e @ SimError::Io(_)) => println!(
            "  fails honestly: {e}\n  (repro would exit with code {})\n",
            exit_code(&e)
        ),
        Ok(_) => panic!("an unreplicated run cannot survive a permanent domain death"),
        Err(e) => fail("unreplicated domain death", &e),
    }
    write_results("replication.csv", &csv);
}

/// Design-choice sensitivity studies (DESIGN.md §6): each varies one knob
/// the paper holds fixed and reports the simulated overall time.
fn ablations() {
    let base = |strategy: Strategy| SimParams {
        procs: 64,
        strategy,
        ..SimParams::default()
    };
    let mut csv = String::from("study,knob,strategy,overall_s\n");
    // §2's motivation for frequent writes: resumability. Expected redo
    // time for a crash at a uniformly random moment, per granularity.
    {
        use s3asim::expected_lost_time;
        println!("---- ablation: crash-resumability vs write granularity (WW-List) ----");
        for gran in [1usize, 5, 20] {
            let p = SimParams {
                procs: 64,
                strategy: Strategy::WwList,
                write_every_n_queries: gran,
                ..SimParams::default()
            };
            let r = run_or_exit("crash-resumability ablation", &p);
            let loss = expected_lost_time(&r.commits, r.overall);
            println!(
                "  every {:>2} queries: overall {:>7.2}s, expected redo after crash {:>6.2}s",
                gran,
                r.overall.as_secs_f64(),
                loss.as_secs_f64()
            );
            csv.push_str(&format!(
                "crash-resumability,every {gran} queries,WW-List,{:.3}\n",
                loss.as_secs_f64()
            ));
        }
        println!();
    }

    let mut study = |name: &str, runs: Vec<(String, Strategy, SimParams)>| {
        println!("---- ablation: {name} ----");
        for (knob, strategy, params) in runs {
            let r = run_or_exit(&format!("{name}/{knob}"), &params);
            println!(
                "  {:<24} {:<11} {:>9.2}s",
                knob,
                strategy.label(),
                r.overall.as_secs_f64()
            );
            csv.push_str(&format!(
                "{name},{knob},{},{:.3}\n",
                strategy.label(),
                r.overall.as_secs_f64()
            ));
        }
        println!();
    };

    // Eager/rendezvous threshold: governs how result gathers hit the
    // master under MW.
    study(
        "eager-threshold (MW)",
        [1024u64, 16 * 1024, 256 * 1024]
            .into_iter()
            .map(|t| {
                let mut p = base(Strategy::Mw);
                p.testbed.mpi.eager_threshold = t;
                (format!("{}KiB", t / 1024), Strategy::Mw, p)
            })
            .collect(),
    );

    // List-I/O batching: 1 region per request degenerates to WW-POSIX.
    study(
        "list-io-max-regions (WW-List)",
        [1usize, 8, 64, 512]
            .into_iter()
            .map(|m| {
                let mut p = base(Strategy::WwList);
                p.testbed.pvfs.list_io_max_regions = m;
                (format!("{m} regions"), Strategy::WwList, p)
            })
            .collect(),
    );

    // Paper §4: "a larger file system configuration with more I/O
    // bandwidth may have provided more scalable I/O performance".
    study(
        "server-count (WW-List / WW-POSIX)",
        [4usize, 16, 64]
            .into_iter()
            .flat_map(|n| {
                [Strategy::WwList, Strategy::WwPosix]
                    .into_iter()
                    .map(move |s| {
                        let mut p = base(s);
                        p.testbed.pvfs.servers = n;
                        (format!("{n} servers"), s, p)
                    })
            })
            .collect(),
    );

    // Two-phase aggregator count (cb_nodes hint).
    study(
        "aggregators (WW-Coll)",
        [1usize, 2, 4, 8, 16, 32]
            .into_iter()
            .map(|n| {
                let mut p = base(Strategy::WwColl);
                p.cb_nodes = n;
                (format!("{n} aggs"), Strategy::WwColl, p)
            })
            .collect(),
    );

    // Write granularity: n=20 is write-at-end (mpiBLAST 1.2 / pioBLAST).
    study(
        "write-granularity (WW-List / MW)",
        [1usize, 5, 20]
            .into_iter()
            .flat_map(|n| {
                [Strategy::WwList, Strategy::Mw].into_iter().map(move |s| {
                    let mut p = base(s);
                    p.write_every_n_queries = n;
                    (format!("every {n} queries"), s, p)
                })
            })
            .collect(),
    );

    // §2.1's aside: "nonblocking I/O could reduce this overhead".
    study(
        "mw-nonblocking-io (MW, 8 and 64 procs)",
        [(8usize, false), (8, true), (64, false), (64, true)]
            .into_iter()
            .map(|(procs, nb)| {
                let mut p = base(Strategy::Mw);
                p.procs = procs;
                p.mw_nonblocking_io = nb;
                (
                    format!("{procs}p {}", if nb { "nonblocking" } else { "blocking" }),
                    Strategy::Mw,
                    p,
                )
            })
            .collect(),
    );

    // Client flow-control window: how much a single client can pipeline.
    study(
        "client-window (MW)",
        [1u64, 2, 4, 8]
            .into_iter()
            .map(|w| {
                let mut p = base(Strategy::Mw);
                p.testbed.pvfs.client_window = w;
                (format!("window {w}"), Strategy::Mw, p)
            })
            .collect(),
    );

    write_results("ablations.csv", &csv);
}

/// Capture request-level observability for all five strategies and
/// export it: Chrome `trace_event` JSON (one process group per strategy,
/// one track per rank and per PVFS server), a metrics-registry CSV, and
/// the usual report CSV. Runs go through the parallel sweep pool, so the
/// export also demonstrates that recording is replay-deterministic across
/// thread counts (the CI determinism job `cmp`s two captures).
fn trace_capture(out: Option<&str>) {
    let params: Vec<SimParams> = Strategy::EXTENDED_SET
        .iter()
        .map(|&strategy| SimParams {
            trace: true,
            observe: true,
            ..small_params(6, strategy)
        })
        .collect();
    let reports = run_batch(&params, default_threads()).unwrap_or_else(|e| fail("trace", &e));
    let runs: Vec<(&str, &RunReport)> = Strategy::EXTENDED_SET
        .iter()
        .map(|s| s.label())
        .zip(&reports)
        .collect();

    println!("==== Request-level trace: 6 procs, small workload ====");
    for (label, report) in &runs {
        println!(
            "---- {label}: {:.3}s simulated ----",
            report.overall.as_secs_f64()
        );
        print!("{}", s3asim::observe::summarize(report));
    }

    let chrome = export_chrome(&runs);
    match out {
        Some(path) => {
            if let Some(dir) = Path::new(path)
                .parent()
                .filter(|d| !d.as_os_str().is_empty())
            {
                let _ = fs::create_dir_all(dir);
            }
            match fs::write(path, &chrome) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => {
                    eprintln!("repro: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => write_results("trace.json", &chrome),
    }
    write_results("trace_metrics.csv", &export_metrics_csv(&runs));
    let mut report_csv = String::new();
    for (i, r) in reports.iter().enumerate() {
        let cols = r.columns();
        if i == 0 {
            report_csv.push_str(&cols.header());
            report_csv.push('\n');
        }
        report_csv.push_str(&cols.row());
        report_csv.push('\n');
    }
    write_results("trace_report.csv", &report_csv);
    println!("(open the JSON in chrome://tracing or ui.perfetto.dev)");
}

/// Open-loop service mode: every strategy × scheduling policy at two
/// offered loads, reporting per-query tail latency and shed counts.
fn service() {
    let loads: [f64; 2] = [2.0, 8.0];
    let config = |strategy: Strategy, policy: SchedPolicy, rate: f64| {
        SimParams::builder()
            .procs(8)
            .strategy(strategy)
            .with_workload(|w| {
                w.queries = 48;
                w.fragments = 8;
                w.min_results = 50;
                w.max_results = 400;
            })
            .service(ServiceParams {
                arrivals: ArrivalProcess::Poisson { rate },
                policy,
                tenants: 2,
                queue_capacity: 12,
                arrival_seed: 11,
                poll_interval: SimTime::from_millis(5),
            })
            .build()
            .unwrap_or_else(|e| {
                eprintln!("repro: service params: {e}");
                std::process::exit(2);
            })
    };

    println!("==== Service mode: open-loop tail latency per strategy × policy ====");
    println!("(Poisson arrivals at two offered loads; 8 procs, 48 queries, 2 tenants,");
    println!(" queue capacity 12; latency = client submission → durable reply)\n");

    let params: Vec<SimParams> = loads
        .iter()
        .flat_map(|&rate| {
            SchedPolicy::ALL.iter().flat_map(move |&policy| {
                Strategy::EXTENDED_SET
                    .iter()
                    .map(move |&s| config(s, policy, rate))
            })
        })
        .collect();
    let reports =
        run_batch(&params, default_threads()).unwrap_or_else(|e| fail("service study", &e));

    let mut csv = String::new();
    let mut it = reports.iter();
    for &rate in &loads {
        println!("---- offered load {rate} queries/s ----");
        println!(
            "{:>10} {:>6} {:>9} {:>9} {:>9} {:>9} {:>5} {:>5}",
            "strategy", "policy", "p50", "p99", "p999", "wait-p99", "shed", "peak"
        );
        for _policy in &SchedPolicy::ALL {
            for _strategy in Strategy::EXTENDED_SET.iter() {
                let r = it.next().expect("one report per configuration");
                let svc = r.service.as_ref().expect("service report");
                println!(
                    "{:>10} {:>6} {:>8.3}s {:>8.3}s {:>8.3}s {:>8.3}s {:>5} {:>5}",
                    r.strategy.label(),
                    svc.policy.label(),
                    svc.latency.p50.as_secs_f64(),
                    svc.latency.p99.as_secs_f64(),
                    svc.latency.p999.as_secs_f64(),
                    svc.wait.p99.as_secs_f64(),
                    svc.shed,
                    svc.queue_peak
                );
                let cols = r.service_columns().expect("service columns");
                if csv.is_empty() {
                    csv.push_str(&cols.header());
                    csv.push('\n');
                }
                csv.push_str(&cols.row());
                csv.push('\n');
            }
        }
        println!();
    }
    write_results("service.csv", &csv);
}

/// Engine-scaling study: wall-clock throughput of the calendar-queue DES
/// core at 1k/4k/10k worker ranks against a 128-server PVFS. Two output
/// families with different determinism contracts:
///
/// * `results/scale.csv` — simulated quantities only (virtual time, event
///   and message counts). Byte-identical across runs and thread counts;
///   CI runs the study twice and `cmp`s the files.
/// * `results/scale_wall.csv` + `results/scale_bench.json` — host
///   wall-clock times and events/sec, inherently run-dependent. The JSON
///   is criterion-shaped so `bench_gate` can assert an events/sec floor.
///
/// Points run sequentially (never through the sweep pool): each one is
/// large, and a timed run sharing cores with its neighbors would report
/// contention, not engine speed.
fn scale(quick: bool) {
    use s3a_workload::WorkloadParams;
    let rank_counts: &[usize] = if quick {
        &[1000]
    } else {
        &[1000, 4000, 10_000]
    };
    let strategies = [
        Strategy::Mw,
        Strategy::WwPosix,
        Strategy::WwList,
        Strategy::WwColl,
    ];
    let params_for = |workers: usize, strategy: Strategy| SimParams {
        procs: workers + 1,
        strategy,
        workload: WorkloadParams {
            queries: 64,
            fragments: 512,
            min_results: 100,
            max_results: 200,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    };

    println!("==== Engine scaling: ranks x strategy on a 128-server PVFS ====");
    println!("(64 queries x 512 fragments; virtual quantities are deterministic,");
    println!(" wall times and events/sec are host measurements)\n");
    println!(
        "{:>7} {:>9} {:>10} {:>12} {:>10} {:>12}",
        "ranks", "strategy", "virtual", "events", "wall", "events/sec"
    );

    let mut sim_csv = String::new();
    let mut wall_csv = String::from("ranks,strategy,wall_s,events_per_sec\n");
    let mut bench = criterion::Criterion::default();
    for &workers in rank_counts {
        let mut ranks_wall_ns = 0u64;
        let mut ranks_events = 0u64;
        for &strategy in &strategies {
            let mut p = params_for(workers, strategy);
            p.testbed.pvfs.servers = 128;
            let sw = criterion::Stopwatch::new();
            let r = run_or_exit(&format!("scale {workers}x{strategy}"), &p);
            let wall_ns = sw.elapsed_ns().max(1);
            let wall_s = wall_ns as f64 / 1e9;
            let eps = r.engine.events as f64 / wall_s;
            ranks_wall_ns += wall_ns;
            ranks_events += r.engine.events;
            println!(
                "{workers:>7} {:>9} {:>9.2}s {:>12} {:>9.2}s {:>12.0}",
                strategy.label(),
                r.overall.as_secs_f64(),
                r.engine.events,
                wall_s,
                eps
            );
            let mut cols = Columns::new();
            cols.push("ranks", workers)
                .push("strategy", strategy.label())
                .push("overall_s", format!("{:.3}", r.overall.as_secs_f64()))
                .push("events", r.engine.events)
                .push("polls", r.engine.polls)
                .push("spawned", r.engine.spawned)
                .push("mpi_messages", r.mpi.messages)
                .push("mpi_payload_bytes", r.mpi.payload_bytes)
                .push("fs_requests", r.fs.requests)
                .push("fs_bytes_written", r.fs.bytes_written);
            if sim_csv.is_empty() {
                sim_csv.push_str(&cols.header());
                sim_csv.push('\n');
            }
            sim_csv.push_str(&cols.row());
            sim_csv.push('\n');
            wall_csv.push_str(&format!(
                "{workers},{},{wall_s:.3},{eps:.0}\n",
                strategy.label()
            ));
        }
        let ranks_eps = ranks_events as f64 / (ranks_wall_ns as f64 / 1e9);
        bench.record(format!("scale/ranks/{workers}"), 1, ranks_wall_ns as f64);
        bench.record(format!("scale/events_per_sec/{workers}"), 1, ranks_eps);
    }
    write_results("scale.csv", &sim_csv);
    write_results("scale_wall.csv", &wall_csv);
    if fs::create_dir_all("results").is_ok() && bench.save_json("results/scale_bench.json").is_ok()
    {
        eprintln!("wrote results/scale_bench.json");
    }
}

/// Sharded-master study: where does splitting the master stop paying?
/// Masters × strategy × worker count on the scale workload. Like `scale`,
/// two output families: `results/shards.csv` carries simulated quantities
/// only (virtual time, events, steal counters) and is byte-identical
/// across reruns and thread counts — CI runs the study twice and `cmp`s
/// the files — while `results/shards_wall.csv` + `shards_bench.json`
/// carry host wall-clock measurements.
fn shards(quick: bool) {
    use s3a_workload::WorkloadParams;
    let master_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let worker_counts: &[usize] = if quick {
        &[1000]
    } else {
        &[1000, 4000, 10_000]
    };
    let strategies = [Strategy::Mw, Strategy::WwList];
    let params_for = |workers: usize, masters: usize, strategy: Strategy| {
        let mut p = SimParams {
            procs: workers + masters,
            num_masters: masters,
            strategy,
            observe: true,
            workload: WorkloadParams {
                queries: 64,
                fragments: 512,
                min_results: 100,
                max_results: 200,
                ..WorkloadParams::default()
            },
            ..SimParams::default()
        };
        p.testbed.pvfs.servers = 128;
        // One rank per node: master counts change the process count, and
        // node-sharing would let that parity shift the network topology
        // under the comparison.
        p.testbed.mpi.ranks_per_node = 1;
        p
    };

    println!("==== Sharded master: masters x strategy x workers ====");
    println!("(scale workload: 64 queries x 512 fragments, 128-server PVFS;");
    println!(" virtual quantities are deterministic, wall times are host");
    println!(" measurements; speedup is virtual time vs the 1-master run)\n");

    let mut sim_csv = String::new();
    let mut wall_csv = String::from("masters,workers,strategy,wall_s,events_per_sec\n");
    let mut bench = criterion::Criterion::default();
    let mut per_masters: std::collections::BTreeMap<usize, (u64, u64)> =
        std::collections::BTreeMap::new();
    for &workers in worker_counts {
        println!("---- {workers} workers ----");
        println!(
            "{:>8} {:>9} {:>10} {:>9} {:>8} {:>8} {:>8} {:>10}",
            "masters", "strategy", "virtual", "speedup", "steals", "tasks", "empty", "events"
        );
        for &strategy in &strategies {
            let mut solo_virtual = None;
            for &masters in master_counts {
                let p = params_for(workers, masters, strategy);
                let sw = criterion::Stopwatch::new();
                let r = run_or_exit(&format!("shards {masters}m x {workers}w x {strategy}"), &p);
                let wall_ns = sw.elapsed_ns().max(1);
                let obs = r.obs.as_ref().expect("observe=true yields a report");
                let steals = obs.metrics.counter("shard.steals.requested");
                let stolen = obs.metrics.counter("shard.steals.tasks");
                let empty = obs.metrics.counter("shard.steals.empty");
                let virt = r.overall.as_secs_f64();
                let speedup = match solo_virtual {
                    None => {
                        solo_virtual = Some(virt);
                        1.0
                    }
                    Some(base) => base / virt,
                };
                println!(
                    "{masters:>8} {:>9} {virt:>9.2}s {speedup:>8.2}x {steals:>8} {stolen:>8} {empty:>8} {:>10}",
                    strategy.label(),
                    r.engine.events,
                );
                let mut cols = Columns::new();
                cols.push("masters", masters)
                    .push("workers", workers)
                    .push("strategy", strategy.label())
                    .push("overall_s", format!("{virt:.3}"))
                    .push("events", r.engine.events)
                    .push("mpi_messages", r.mpi.messages)
                    .push("steals_requested", steals)
                    .push("steal_tasks_moved", stolen)
                    .push("steals_empty", empty);
                if sim_csv.is_empty() {
                    sim_csv.push_str(&cols.header());
                    sim_csv.push('\n');
                }
                sim_csv.push_str(&cols.row());
                sim_csv.push('\n');
                let wall_s = wall_ns as f64 / 1e9;
                wall_csv.push_str(&format!(
                    "{masters},{workers},{},{wall_s:.3},{:.0}\n",
                    strategy.label(),
                    r.engine.events as f64 / wall_s
                ));
                let slot = per_masters.entry(masters).or_insert((0, 0));
                slot.0 += wall_ns;
                slot.1 += r.engine.events;
            }
        }
        println!();
    }
    for (masters, (wall_ns, events)) in &per_masters {
        bench.record(
            format!("shards/masters/{masters}/events_per_sec"),
            1,
            *events as f64 / (*wall_ns as f64 / 1e9),
        );
    }
    write_results("shards.csv", &sim_csv);
    write_results("shards_wall.csv", &wall_csv);
    if fs::create_dir_all("results").is_ok() && bench.save_json("results/shards_bench.json").is_ok()
    {
        eprintln!("wrote results/shards_bench.json");
    }
}

/// Bounded schedule-space model check of the 2-master failover protocol
/// under MW and the list-I/O collective. Quick mode is the CI smoke
/// configuration: ≤ 2 same-tick deviations per schedule, one crash
/// point, a few hundred runs per strategy. A violation prints its
/// minimized counterexample and fails the command.
fn model_check(quick: bool) {
    use s3a_mc::{explore, McConfig, Scenario};

    let mut cfg = McConfig::quick();
    if !quick {
        cfg.max_deviations = 3;
        cfg.max_runs = 4000;
        cfg.crash_points = 3;
        cfg.stop_on_first_violation = false;
    }
    println!(
        "== model check: 2-master failover, deviations <= {}, {} crash point(s), <= {} runs each ==",
        cfg.max_deviations, cfg.crash_points, cfg.max_runs
    );
    println!(
        "{:<12} {:>8} {:>9} {:>11} {:>16} {:>11}",
        "strategy", "runs", "distinct", "duplicates", "decision_points", "violations"
    );
    let mut csv = String::from(
        "strategy,masters,workers,runs,distinct,duplicates,decision_points,violations\n",
    );
    let mut failed = false;
    for strategy in [Strategy::Mw, Strategy::WwList] {
        let scenario = Scenario::failover(strategy, 2, 8);
        let report = explore(&scenario, &cfg);
        println!(
            "{:<12} {:>8} {:>9} {:>11} {:>16} {:>11}",
            strategy.label(),
            report.runs,
            report.distinct,
            report.duplicates,
            report.decision_points,
            report.counterexamples.len()
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            strategy.label(),
            scenario.masters,
            scenario.procs - scenario.masters,
            report.runs,
            report.distinct,
            report.duplicates,
            report.decision_points,
            report.counterexamples.len()
        ));
        for cx in &report.counterexamples {
            failed = true;
            println!("counterexample ({}):", cx.violation);
            print!("{}", cx.to_json().pretty());
        }
    }
    println!();
    write_results("mc.csv", &csv);
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    // A fatal simulated I/O error unwinds as a typed payload that the
    // fallible runner entry points catch; when one still reaches a
    // thread boundary, the default "panicked at ..." noise adds nothing
    // to the typed message `fail` prints — suppress it for this payload.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<s3asim::IoFailure>().is_none() {
            default_hook(info);
        }
    }));
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        if i + 1 >= args.len() {
            eprintln!("repro: --trace-out needs a file argument");
            std::process::exit(2);
        }
        trace_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let default_cmd = if trace_out.is_some() { "trace" } else { "all" };
    let what = args.first().map(String::as_str).unwrap_or(default_cmd);
    let mut cache = Cache {
        proc_sweep: None,
        speed_sweep: None,
    };
    match what {
        "fig2" => fig2(&mut cache),
        "fig3" => fig3(&mut cache),
        "fig4" => fig4(&mut cache),
        "fig5" => fig5(&mut cache),
        "fig6" => fig6(&mut cache),
        "fig7" => fig7(&mut cache),
        "claims" => claims(&mut cache),
        "colllist" => colllist(),
        "sieve" => sieve(),
        "ablate" => ablations(),
        "faults" => faults(),
        "replication" => replication(),
        "segmentation" => segmentation(),
        "service" => service(),
        "scale" => scale(args.iter().any(|a| a == "--quick")),
        "shards" => shards(args.iter().any(|a| a == "--quick")),
        "mc" => model_check(args.iter().any(|a| a == "--quick")),
        "trace" => trace_capture(trace_out.as_deref()),
        "all" => {
            fig2(&mut cache);
            fig3(&mut cache);
            fig4(&mut cache);
            fig5(&mut cache);
            fig6(&mut cache);
            fig7(&mut cache);
            claims(&mut cache);
            colllist();
            sieve();
            segmentation();
            ablations();
            faults();
            replication();
            service();
            trace_capture(trace_out.as_deref());
        }
        other => {
            eprintln!("unknown target '{other}'");
            eprintln!("usage: repro [--trace-out FILE] [fig2|fig3|fig4|fig5|fig6|fig7|claims|colllist|sieve|segmentation|ablate|faults|replication|service|scale [--quick]|shards [--quick]|mc [--quick]|trace|all]");
            std::process::exit(2);
        }
    }
}
