//! # s3a-bench — figure reproduction and benchmark support
//!
//! Defines the paper's two evaluation sweeps (process scaling, Figures
//! 2–4; compute-speed scaling, Figures 5–7), runs them through
//! [`s3asim::run`], and renders the same series the paper plots: overall
//! execution time per strategy (Figures 2 and 5) and per-phase worker
//! breakdowns (Figures 3, 4, 6 and 7). The paper's headline comparisons
//! are encoded in [`paper::CLAIMS`] so the harness (and the test suite)
//! can check each reproduced shape against the published one.

use s3asim::{Phase, RunReport, SimParams, Strategy};

// The sweep machinery lives in the `s3asim` facade (crates/core); this
// crate adds the paper's concrete sweeps on top and re-exports the types
// so existing `s3a_bench::{Point, Sweep}` imports keep working.
pub use s3asim::{Point, SimError, Sweep, SweepOptions};

/// The process counts of the scaling suite (paper §3.3, Figures 2–4).
pub const PROC_SWEEP: [usize; 8] = [2, 4, 8, 16, 32, 48, 64, 96];

/// The compute-speed multipliers of the second suite (Figures 5–7).
pub const SPEED_SWEEP: [f64; 9] = [0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6];

/// Process count used by the compute-speed suite.
pub const SPEED_SUITE_PROCS: usize = 64;

/// Build the [`SimParams`] for one sweep point (paper-default workload and
/// testbed).
pub fn params_for(p: Point) -> SimParams {
    SimParams {
        procs: p.procs,
        strategy: p.strategy,
        query_sync: p.sync,
        compute_speed: p.speed,
        ..SimParams::default()
    }
}

/// The points of the process-scaling suite, in presentation order.
pub fn proc_sweep_points() -> Vec<Point> {
    let mut points = Vec::new();
    for sync in [false, true] {
        for strategy in Strategy::PAPER_SET {
            for procs in PROC_SWEEP {
                points.push(Point {
                    procs,
                    speed: 1.0,
                    strategy,
                    sync,
                });
            }
        }
    }
    points
}

/// The points of the compute-speed suite, in presentation order.
pub fn speed_sweep_points() -> Vec<Point> {
    let mut points = Vec::new();
    for sync in [false, true] {
        for strategy in Strategy::PAPER_SET {
            for speed in SPEED_SWEEP {
                points.push(Point {
                    procs: SPEED_SUITE_PROCS,
                    speed,
                    strategy,
                    sync,
                });
            }
        }
    }
    points
}

/// Run the full process-scaling suite (Figures 2–4): every strategy and
/// sync mode at each process count, across the default thread pool.
pub fn run_proc_sweep(progress: bool) -> Result<Sweep, SimError> {
    Sweep::run(
        "process scaling (Figures 2-4)",
        proc_sweep_points(),
        params_for,
        SweepOptions {
            progress,
            ..SweepOptions::default()
        },
    )
}

/// Run the full compute-speed suite (Figures 5–7) at 64 processes.
pub fn run_speed_sweep(progress: bool) -> Result<Sweep, SimError> {
    Sweep::run(
        "compute-speed scaling (Figures 5-7)",
        speed_sweep_points(),
        params_for,
        SweepOptions {
            progress,
            ..SweepOptions::default()
        },
    )
}

/// The process counts of the data-sieving crossover suite. Worker count
/// controls region density: each query's output is interleaved across
/// workers, so a worker's share of a batch is dense at 2 procs and
/// hole-riddled at 64.
pub const SIEVE_PROC_SWEEP: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Parameters for one point of the data-sieving crossover suite: the
/// paper-structure workload with larger per-hit results, so a worker's
/// batch spans enough bytes for request amortization vs. read-back waste
/// to trade blows as density falls.
pub fn sieve_params_for(p: Point) -> SimParams {
    use s3a_workload::WorkloadParams;
    SimParams {
        procs: p.procs,
        strategy: p.strategy,
        query_sync: p.sync,
        compute_speed: p.speed,
        workload: WorkloadParams {
            queries: 6,
            fragments: 32,
            min_results: 2000,
            max_results: 4000,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    }
}

/// The points of the crossover suite: WW-POSIX vs. WW-DS at each process
/// count (Thakur et al.'s data-sieving comparison, applied to the
/// paper's workload shape).
pub fn sieve_sweep_points() -> Vec<Point> {
    let mut points = Vec::new();
    for strategy in [Strategy::WwPosix, Strategy::WwSieve] {
        for procs in SIEVE_PROC_SWEEP {
            points.push(Point {
                procs,
                speed: 1.0,
                strategy,
                sync: false,
            });
        }
    }
    points
}

/// Run the data-sieving crossover suite (WW-DS vs. WW-POSIX over worker
/// count; see EXPERIMENTS.md).
pub fn run_sieve_sweep(progress: bool) -> Result<Sweep, SimError> {
    Sweep::run(
        "data-sieving crossover (WW-DS vs WW-POSIX)",
        sieve_sweep_points(),
        sieve_params_for,
        SweepOptions {
            progress,
            ..SweepOptions::default()
        },
    )
}

/// The paper's quantitative comparisons, used to score the reproduction.
pub mod paper {
    use super::*;

    /// One headline comparison: at `(procs, speed, sync)`, `slower` takes
    /// `factor`× the time of WW-List (the paper states "WW-List
    /// outperforms X by (factor−1)·100%").
    #[derive(Debug, Clone, Copy)]
    pub struct Claim {
        /// Where the comparison is made.
        pub procs: usize,
        /// Compute speed of the comparison.
        pub speed: f64,
        /// Query-sync mode of the comparison.
        pub sync: bool,
        /// The strategy WW-List is compared against.
        pub slower: Strategy,
        /// Paper-reported time ratio `slower / WW-List`.
        pub factor: f64,
    }

    /// Section 4's headline ratios.
    pub const CLAIMS: [Claim; 12] = [
        // 96 processes, base speed (Figure 2 discussion).
        Claim {
            procs: 96,
            speed: 1.0,
            sync: false,
            slower: Strategy::Mw,
            factor: 4.64,
        },
        Claim {
            procs: 96,
            speed: 1.0,
            sync: false,
            slower: Strategy::WwPosix,
            factor: 1.33,
        },
        Claim {
            procs: 96,
            speed: 1.0,
            sync: false,
            slower: Strategy::WwColl,
            factor: 1.75,
        },
        Claim {
            procs: 96,
            speed: 1.0,
            sync: true,
            slower: Strategy::Mw,
            factor: 2.82,
        },
        Claim {
            procs: 96,
            speed: 1.0,
            sync: true,
            slower: Strategy::WwPosix,
            factor: 1.37,
        },
        Claim {
            procs: 96,
            speed: 1.0,
            sync: true,
            slower: Strategy::WwColl,
            factor: 1.13,
        },
        // 64 processes, compute speed 25.6 (Figure 5 discussion).
        Claim {
            procs: 64,
            speed: 25.6,
            sync: false,
            slower: Strategy::Mw,
            factor: 6.92,
        },
        Claim {
            procs: 64,
            speed: 25.6,
            sync: false,
            slower: Strategy::WwPosix,
            factor: 1.32,
        },
        Claim {
            procs: 64,
            speed: 25.6,
            sync: false,
            slower: Strategy::WwColl,
            factor: 1.98,
        },
        Claim {
            procs: 64,
            speed: 25.6,
            sync: true,
            slower: Strategy::Mw,
            factor: 5.44,
        },
        Claim {
            procs: 64,
            speed: 25.6,
            sync: true,
            slower: Strategy::WwPosix,
            factor: 1.65,
        },
        Claim {
            procs: 64,
            speed: 25.6,
            sync: true,
            slower: Strategy::WwColl,
            factor: 1.58,
        },
    ];

    /// Paper absolute anchors (seconds) for the sync cases at 96 procs.
    pub const WW_LIST_SYNC_96: f64 = 40.24;
    /// WW-Coll with sync at 96 procs.
    pub const WW_COLL_SYNC_96: f64 = 45.54;

    /// Compare a claim against two measured runs; returns
    /// `(measured_factor, paper_factor)`.
    pub fn measure(claim: &Claim, slower: &RunReport, list: &RunReport) -> (f64, f64) {
        (
            slower.overall.as_secs_f64() / list.overall.as_secs_f64(),
            claim.factor,
        )
    }
}

/// Small workload for fast benches and tests: same structure as the paper
/// workload, ~50× less work.
pub fn small_params(procs: usize, strategy: Strategy) -> SimParams {
    use s3a_workload::WorkloadParams;
    SimParams {
        procs,
        strategy,
        workload: WorkloadParams {
            queries: 4,
            fragments: 16,
            min_results: 100,
            max_results: 200,
            ..WorkloadParams::default()
        },
        ..SimParams::default()
    }
}

/// The phases with visibly nonzero mass in the paper's stacked bars; used
/// by smoke checks.
pub fn major_phases() -> [Phase; 5] {
    [
        Phase::DataDistribution,
        Phase::Compute,
        Phase::GatherResults,
        Phase::Io,
        Phase::Sync,
    ]
}
