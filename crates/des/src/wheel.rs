//! The engine's timed-event queue: a hierarchical timing wheel (calendar
//! queue) keyed on integer-nanosecond virtual time.
//!
//! The wheel replaces the original `BinaryHeap<Reverse<WakeEvent>>` (kept
//! below as a test oracle, [`heap_ref`]) with O(1) amortized push/pop at
//! any queue size, while preserving the heap's *exact* total order:
//! events leave in ascending `(time, seq)` order, bit for bit.
//!
//! # Structure
//!
//! Eleven levels of 64 slots each; level `g` buckets events by bits
//! `[6g, 6g+6)` of their absolute timestamp, so the levels together cover
//! the full 64-bit nanosecond range (level 10 holds the top 4 bits, which
//! is where the `SimTime::MAX` "infinitely far" sentinel lands). An event
//! is placed by the highest 6-bit group in which its timestamp differs
//! from the wheel cursor:
//!
//! ```text
//! level  = highest_set_bit(time XOR cursor) / 6
//! slot   = (time >> 6*level) & 63
//! ```
//!
//! XOR placement gives the two invariants the determinism argument needs:
//!
//! 1. *Single owner per slot*: every event resident at level `g` agrees
//!    with the cursor on all bits above `6(g+1)` (otherwise it would lie
//!    in the past, and the cursor never passes an unpopped event), so all
//!    events in one slot share the same `time >> 6g` value. At level 0
//!    that means one exact timestamp per slot.
//! 2. *Strict cascade descent*: when the cursor advances into a slot's
//!    time range, re-placing its events lands them at a strictly lower
//!    level (their group-`g` bits now match the cursor), so cascades
//!    terminate and each event moves at most `LEVELS` times.
//!
//! # Determinism
//!
//! Within a slot, events are kept sorted by `seq` (pushes from the running
//! simulation are already monotonic, so this is an append; only a cascade
//! can splice an older event into a slot that already received a newer
//! direct insert). A pop first drains the level-0 slot whose timestamp is
//! minimal — but only after every higher-level slot whose time range
//! *could* reach that timestamp has been cascaded down, so all same-time
//! events are gathered in one seq-sorted slot before the first of them is
//! released. Events pushed *at* the current time while the slot drains
//! carry larger `seq` values than everything already drained and are
//! appended behind the drain position. The result is exactly the heap's
//! `(time, seq)` order.
//!
//! Slot vectors and the drain buffer are recycled, so a steady-state
//! simulation allocates nothing here.

use crate::engine::TaskId;
use crate::time::SimTime;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64 slots per level
const SLOT_MASK: u64 = SLOTS as u64 - 1;
const LEVELS: usize = 11; // 11 * 6 = 66 bits >= the full u64 range

/// A scheduled wake-up: poll `task` once virtual time reaches `time`.
/// `seq` is the global schedule sequence number and breaks same-time ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WakeEvent {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) task: TaskId,
}

/// One level's 64 buckets, allocated on first use: most simulations only
/// ever touch two or three levels, and an empty wheel must cost nothing —
/// scale runs create one `Sim` per parameter point.
type Level = [Vec<WakeEvent>; SLOTS];

fn new_level() -> Box<Level> {
    Box::new([const { Vec::new() }; SLOTS])
}

pub(crate) struct TimerWheel {
    /// Current position; equals the timestamp of the last popped event.
    /// All resident events have `time >= cursor`.
    cursor: u64,
    /// Per-level buckets, each sorted by `seq`; `None` until first used.
    levels: [Option<Box<Level>>; LEVELS],
    /// Per-level occupancy bitmap: bit `i` set iff slot `i` is non-empty.
    occupied: [u64; LEVELS],
    /// Bit `g` set iff `occupied[g] != 0` — lets `pop` visit only live levels.
    live_levels: u16,
    /// The level-0 slot currently being handed out, plus the read position.
    /// Same-time pushes land in the (now empty) level-0 slot and are
    /// picked up after this buffer runs dry, preserving seq order.
    current: Vec<WakeEvent>,
    current_pos: usize,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            cursor: 0,
            levels: [const { None }; LEVELS],
            occupied: [0; LEVELS],
            live_levels: 0,
            current: Vec::new(),
            current_pos: 0,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// (level, slot) for an event at absolute time `t`, given the cursor.
    #[inline]
    fn place(&self, t: u64) -> (usize, usize) {
        let x = t ^ self.cursor;
        let g = if x == 0 {
            0
        } else {
            (63 - x.leading_zeros() as usize) / SLOT_BITS as usize
        };
        (g, ((t >> (SLOT_BITS * g as u32)) & SLOT_MASK) as usize)
    }

    /// Insert without touching `len` (shared by push and cascade).
    #[inline]
    fn insert(&mut self, ev: WakeEvent) {
        debug_assert!(
            ev.time.as_nanos() >= self.cursor,
            "wheel push into the past"
        );
        let (g, i) = self.place(ev.time.as_nanos());
        let slot = &mut self.levels[g].get_or_insert_with(new_level)[i];
        // Seq values arrive monotonically from the engine, so this is an
        // append except when a cascade replays an old event into a slot
        // that already took a newer direct insert.
        match slot.last() {
            Some(last) if last.seq > ev.seq => {
                let at = slot.partition_point(|e| e.seq < ev.seq);
                slot.insert(at, ev);
            }
            _ => slot.push(ev),
        }
        self.occupied[g] |= 1 << i;
        self.live_levels |= 1 << g;
    }

    pub(crate) fn push(&mut self, ev: WakeEvent) {
        self.insert(ev);
        self.len += 1;
    }

    /// Remove and return the earliest event by `(time, seq)`.
    pub(crate) fn pop(&mut self) -> Option<WakeEvent> {
        if self.current_pos < self.current.len() {
            let ev = self.current[self.current_pos];
            self.current_pos += 1;
            self.len -= 1;
            return Some(ev);
        }
        if self.len == 0 {
            return None;
        }
        loop {
            // Candidate = the slot with the smallest possible event time.
            // For level 0 that bound is exact; for higher levels it is the
            // start of the slot's time range. Ties prefer the *higher*
            // level: a far-scheduled event can share a timestamp with a
            // near-scheduled one, and it must be cascaded down first so
            // the lower seq wins.
            let mut found = false;
            let mut best_start = u64::MAX;
            let mut best_g = 0usize;
            let mut best_i = 0usize;
            let mut levels = self.live_levels;
            while levels != 0 {
                let g = levels.trailing_zeros() as usize;
                levels &= levels - 1;
                let shift = SLOT_BITS * g as u32;
                let ctick = self.cursor >> shift;
                // Resident ticks lie in [ctick, ctick + 63]; rotating the
                // bitmap by the cursor's slot index makes the earliest
                // tick the lowest set bit.
                let k = self.occupied[g]
                    .rotate_right((ctick & SLOT_MASK) as u32)
                    .trailing_zeros() as u64;
                let vtick = ctick + k;
                // vtick << shift cannot overflow: vtick is a real event
                // timestamp's upper bits (events in the past are impossible).
                let start = self.cursor.max(vtick << shift);
                if !found || start < best_start || (start == best_start && g > best_g) {
                    found = true;
                    best_start = start;
                    best_g = g;
                    best_i = (vtick & SLOT_MASK) as usize;
                }
            }
            debug_assert!(found, "len > 0 but no occupied slot");
            self.cursor = best_start;
            self.occupied[best_g] &= !(1 << best_i);
            if self.occupied[best_g] == 0 {
                self.live_levels &= !(1 << best_g);
            }
            let slot = &mut self.levels[best_g]
                .as_mut()
                .expect("occupied level is allocated")[best_i];
            if best_g == 0 {
                // Exact minimum: the whole slot shares this timestamp and
                // is seq-sorted.
                self.len -= 1;
                if slot.len() == 1 {
                    // Lone sleeper — the overwhelmingly common case.
                    let ev = slot[0];
                    slot.clear();
                    return Some(ev);
                }
                // Swap the burst into the drain buffer (the old buffer's
                // capacity is recycled into the empty slot).
                self.current.clear();
                self.current_pos = 1;
                std::mem::swap(&mut self.current, slot);
                return Some(self.current[0]);
            }
            // Cascade: the cursor has reached this slot's time range, so
            // every event re-places at a strictly lower level.
            let mut v = std::mem::take(slot);
            for ev in v.drain(..) {
                self.insert(ev);
            }
            // Keep the capacity.
            self.levels[best_g].as_mut().expect("level allocated")[best_i] = v;
        }
    }

    /// Remove the *entire burst* of events sharing the minimal timestamp,
    /// appending them to `out` in `seq` order. Equivalent to popping until
    /// the head timestamp changes, but without over-popping: the cursor
    /// never advances past the burst's timestamp, so pushes at that
    /// timestamp (from the task about to run) remain legal. This is the
    /// policy-mode engine's view (see [`crate::policy`]): every same-tick
    /// wake-up is a reordering candidate, so it must see them all at once.
    pub(crate) fn pop_batch(&mut self, out: &mut Vec<WakeEvent>) {
        let Some(first) = self.pop() else { return };
        out.push(first);
        // After a pop at time t, every other event at t is already in the
        // drain buffer: cascades complete before the first same-time event
        // is released, and a level-0 slot holds one exact timestamp (see
        // the module notes). A lone sleeper leaves the buffer exhausted.
        while self.current_pos < self.current.len() {
            let ev = self.current[self.current_pos];
            debug_assert_eq!(ev.time, first.time, "drain buffer spans timestamps");
            self.current_pos += 1;
            self.len -= 1;
            out.push(ev);
        }
    }
}

/// The pre-wheel event queue — a plain binary heap ordered by
/// `(time, seq)` — kept as the oracle the property tests below drive in
/// lockstep with the wheel.
#[cfg(test)]
pub(crate) mod heap_ref {
    use super::WakeEvent;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq, Eq)]
    struct Ordered(WakeEvent);

    impl Ord for Ordered {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.0.time, self.0.seq).cmp(&(other.0.time, other.0.seq))
        }
    }

    impl PartialOrd for Ordered {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    #[derive(Default)]
    pub(crate) struct HeapQueue {
        heap: BinaryHeap<Reverse<Ordered>>,
    }

    impl HeapQueue {
        pub(crate) fn new() -> Self {
            Self::default()
        }

        pub(crate) fn push(&mut self, ev: WakeEvent) {
            self.heap.push(Reverse(Ordered(ev)));
        }

        pub(crate) fn pop(&mut self) -> Option<WakeEvent> {
            self.heap.pop().map(|Reverse(Ordered(ev))| ev)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::heap_ref::HeapQueue;
    use super::*;
    use proptest::prelude::*;

    fn ev(time: u64, seq: u64) -> WakeEvent {
        WakeEvent {
            time: SimTime::from_nanos(time),
            seq,
            task: TaskId::from_parts(seq as u32, 0),
        }
    }

    /// Drive the wheel and the old heap through the same schedule and
    /// require identical pop sequences. `deltas[i]` schedules an event at
    /// `now + delta` (like the engine, never in the past); every `pops`-th
    /// step drains one event from both queues and advances `now`.
    fn lockstep(deltas: &[u64], pop_every: usize) {
        let mut wheel = TimerWheel::new();
        let mut heap = HeapQueue::new();
        let mut now = 0u64;
        let mut pushed = 0usize;
        let mut popped = 0usize;
        for (i, &d) in deltas.iter().enumerate() {
            let e = ev(now.saturating_add(d), i as u64);
            wheel.push(e);
            heap.push(e);
            pushed += 1;
            if pop_every != 0 && i % pop_every == 0 {
                let (w, h) = (wheel.pop(), heap.pop());
                assert_eq!(w, h, "wheel diverged from heap at step {i}");
                if let Some(e) = w {
                    assert!(e.time.as_nanos() >= now, "time went backwards");
                    now = e.time.as_nanos();
                    popped += 1;
                }
            }
        }
        // Drain the rest.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h, "wheel diverged from heap in final drain");
            match w {
                Some(e) => {
                    assert!(e.time.as_nanos() >= now);
                    now = e.time.as_nanos();
                    popped += 1;
                }
                None => break,
            }
        }
        assert_eq!(popped, pushed);
        assert_eq!(wheel.len(), 0);
    }

    proptest! {
        /// Satellite coverage: the same randomized event schedule through
        /// the old heap and the new wheel must produce identical wake
        /// order and virtual timestamps.
        #[test]
        fn wheel_matches_heap_on_random_schedules(
            deltas in prop::collection::vec(0u64..5000, 1..200),
            pop_every in 1usize..8,
        ) {
            lockstep(&deltas, pop_every);
        }

        /// Same, with deltas spanning every wheel level (including the
        /// far-future range where `SimTime::MAX`-like sentinels live).
        /// Each raw pair picks a magnitude band and an offset within it.
        #[test]
        fn wheel_matches_heap_across_levels(
            raw in prop::collection::vec((0u64..6, 0u64..u64::MAX), 1..120),
            pop_every in 1usize..6,
        ) {
            let deltas: Vec<u64> = raw
                .iter()
                .map(|&(band, off)| match band {
                    0 => 0,
                    1 => 1 + off % 63,
                    2 => 64 + off % (4096 - 64),
                    3 => 4096 + off % ((1 << 18) - 4096),
                    4 => (1 << 30) + off % ((1u64 << 40) - (1 << 30)),
                    _ => u64::MAX,
                })
                .collect();
            lockstep(&deltas, pop_every);
        }
    }

    /// Zero-delay / same-tick tiebreak regression: an event scheduled far
    /// in advance (parked at a high wheel level) and one scheduled just
    /// before the deadline (level 0) collide on the same nanosecond; the
    /// earlier-scheduled (lower seq) event must pop first, exactly as the
    /// heap orders it. This is the cascade-before-drain corner.
    #[test]
    fn same_tick_far_and_near_schedules_pop_in_seq_order() {
        let mut wheel = TimerWheel::new();
        let mut heap = HeapQueue::new();
        // seq 0: scheduled at t=0 for t=1000 -> lands at level 1.
        // seq 1: fires at 990 to advance the cursor close to the deadline.
        // seq 2: scheduled (after the 990 pop) for t=1000 -> level 0.
        for e in [ev(1000, 0), ev(990, 1)] {
            wheel.push(e);
            heap.push(e);
        }
        assert_eq!(wheel.pop(), heap.pop()); // 990 fires
        wheel.push(ev(1000, 2));
        heap.push(ev(1000, 2));
        assert_eq!(
            wheel.pop(),
            Some(ev(1000, 0)),
            "far schedule must win the tie"
        );
        assert_eq!(heap.pop(), Some(ev(1000, 0)));
        assert_eq!(wheel.pop(), Some(ev(1000, 2)));
        assert_eq!(heap.pop(), Some(ev(1000, 2)));
        assert_eq!(wheel.pop(), None);
    }

    /// Zero-delay events pushed while their timestamp is being drained
    /// must come out after everything already queued at that time, in
    /// push order — the "schedule at now during the tick" case.
    #[test]
    fn zero_delay_pushes_during_drain_keep_schedule_order() {
        let mut wheel = TimerWheel::new();
        for s in 0..3 {
            wheel.push(ev(7, s));
        }
        assert_eq!(wheel.pop(), Some(ev(7, 0)));
        // Mid-drain, two more events land on the same tick.
        wheel.push(ev(7, 3));
        wheel.push(ev(7, 4));
        for s in 1..5 {
            assert_eq!(wheel.pop(), Some(ev(7, s)), "seq {s} out of order");
        }
        assert_eq!(wheel.pop(), None);
        assert_eq!(wheel.len(), 0);
    }

    /// `pop_batch` must hand out exactly the same-time burst — in seq
    /// order — and leave the cursor at the burst's timestamp so same-time
    /// push-backs stay legal.
    #[test]
    fn pop_batch_returns_whole_burst_and_allows_same_time_pushback() {
        let mut wheel = TimerWheel::new();
        for e in [ev(50, 0), ev(10, 1), ev(50, 2), ev(10, 3), ev(1000, 4)] {
            wheel.push(e);
        }
        let mut out = Vec::new();
        wheel.pop_batch(&mut out);
        assert_eq!(out, vec![ev(10, 1), ev(10, 3)]);
        // A push at the batch time (e.g. the policy returning an unchosen
        // candidate) must come back out before later timestamps.
        wheel.push(ev(10, 5));
        out.clear();
        wheel.pop_batch(&mut out);
        assert_eq!(out, vec![ev(10, 5)]);
        out.clear();
        wheel.pop_batch(&mut out);
        assert_eq!(out, vec![ev(50, 0), ev(50, 2)]);
        out.clear();
        wheel.pop_batch(&mut out);
        assert_eq!(out, vec![ev(1000, 4)]);
        out.clear();
        wheel.pop_batch(&mut out);
        assert!(out.is_empty());
        assert_eq!(wheel.len(), 0);
    }

    proptest! {
        /// Batched pops must agree with the heap oracle popped burst-wise:
        /// each batch is one timestamp, internally seq-sorted, and the
        /// concatenation of batches is the heap's total order.
        #[test]
        fn pop_batch_matches_heap_on_random_schedules(
            deltas in prop::collection::vec(0u64..500, 1..150),
        ) {
            let mut wheel = TimerWheel::new();
            let mut heap = HeapQueue::new();
            let mut now = 0u64;
            let mut out = Vec::new();
            for (i, &d) in deltas.iter().enumerate() {
                let e = ev(now.saturating_add(d), i as u64);
                wheel.push(e);
                heap.push(e);
                if i % 3 == 0 {
                    out.clear();
                    wheel.pop_batch(&mut out);
                    for e in &out {
                        prop_assert_eq!(heap.pop(), Some(*e));
                        prop_assert_eq!(e.time, out[0].time);
                    }
                    if let Some(last) = out.last() {
                        now = last.time.as_nanos();
                    }
                }
            }
            loop {
                out.clear();
                wheel.pop_batch(&mut out);
                if out.is_empty() {
                    break;
                }
                for e in &out {
                    prop_assert_eq!(heap.pop(), Some(*e));
                    prop_assert_eq!(e.time, out[0].time);
                }
            }
            prop_assert_eq!(heap.pop(), None);
            prop_assert_eq!(wheel.len(), 0);
        }
    }

    #[test]
    fn empty_wheel_pops_none() {
        let mut wheel = TimerWheel::new();
        assert_eq!(wheel.pop(), None);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn max_sentinel_coexists_with_near_events() {
        let mut wheel = TimerWheel::new();
        wheel.push(ev(u64::MAX, 0)); // "never" sentinel
        wheel.push(ev(5, 1));
        assert_eq!(wheel.pop(), Some(ev(5, 1)));
        assert_eq!(wheel.pop(), Some(ev(u64::MAX, 0)));
        assert_eq!(wheel.pop(), None);
    }
}
