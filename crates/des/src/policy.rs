//! Pluggable schedule policies: the hook the model checker (`s3a-mc`)
//! uses to drive one simulation through *alternative* interleavings.
//!
//! The engine's canonical order — ready queue front to back, then timed
//! events in `(time, seq)` order — is one legal schedule among many: any
//! permutation of the tasks runnable at the same virtual instant is a
//! behavior a real cluster could exhibit. A [`SchedulePolicy`] gets to
//! pick which runnable candidate executes next at every such point.
//!
//! Two contracts make exploration sound:
//!
//! 1. *Canonical choice is index 0.* Candidates are presented in the
//!    engine's canonical order, so a policy that always answers `0`
//!    reproduces the stock engine bit for bit — same polls, same event
//!    counts, same clock advances, same results. `tests/` and
//!    `crates/mc` both rely on this.
//! 2. *Only same-instant reordering.* The engine never offers a timed
//!    candidate from a later virtual tick while earlier work is pending,
//!    so every explored schedule still respects causality (a message
//!    delivery cannot be chosen before it was sent).
//!
//! Policies are installed either ambiently with [`with_policy`] — the
//! next [`crate::Sim::new`] on this thread picks the policy up, which is
//! how callers that construct their `Sim` behind an API (e.g.
//! `s3asim::run`) are steered — or directly on an existing engine with
//! [`crate::Sim::set_policy`].

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::TaskId;
use crate::time::SimTime;

/// One runnable task the policy may pick, in canonical-order position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The task that would be polled.
    pub task: TaskId,
    /// FNV-1a hash of the task's spawn name — a stable label for state
    /// signatures that does not depend on slot or generation numbers.
    pub name_hash: u64,
    /// `true` when the candidate comes from a timed wake-up (the timer
    /// wheel), `false` when it comes from the ready queue.
    pub timed: bool,
}

/// A scheduling decision procedure driven by the engine.
///
/// `choose` is called at every selection point — including trivial ones
/// with a single candidate, so policies can maintain a complete step
/// signature — and must return an index into `candidates` (out-of-range
/// answers are clamped to the last candidate).
pub trait SchedulePolicy {
    /// Pick which candidate runs next. `now` is the virtual time the
    /// chosen task will observe; index 0 is the canonical choice.
    fn choose(&mut self, now: SimTime, candidates: &[Candidate]) -> usize;

    /// Budget hook, consulted once per selection loop. Returning `false`
    /// aborts the run as a synthetic [`crate::Deadlock`] (the parked-task
    /// list is replaced by a `<schedule budget exhausted>` marker) — the
    /// no-panic way for an explorer to bound runaway schedules.
    fn keep_running(&mut self) -> bool {
        true
    }
}

/// The identity policy: always picks candidate 0, reproducing the stock
/// engine's canonical `(time, seq)` order exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct CanonicalPolicy;

impl SchedulePolicy for CanonicalPolicy {
    fn choose(&mut self, _now: SimTime, _candidates: &[Candidate]) -> usize {
        0
    }
}

/// A seeded pseudo-random policy (splitmix64): picks uniformly among the
/// candidates at every decision point. Deterministic for a given seed —
/// useful as a cheap schedule fuzzer when full enumeration is too big.
#[derive(Debug, Clone)]
pub struct SeededPolicy {
    state: u64,
}

impl SeededPolicy {
    /// Create a policy whose choices are fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SeededPolicy {
            // Avoid the all-zero fixed point without losing determinism.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, seedable, and good enough for schedule fuzzing.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SchedulePolicy for SeededPolicy {
    fn choose(&mut self, _now: SimTime, candidates: &[Candidate]) -> usize {
        if candidates.len() <= 1 {
            return 0;
        }
        (self.next_u64() % candidates.len() as u64) as usize
    }
}

/// FNV-1a hash of a task name, as stored in [`Candidate::name_hash`].
pub fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A shared, installable policy handle.
pub type PolicyHandle = Rc<RefCell<dyn SchedulePolicy>>;

thread_local! {
    static AMBIENT: RefCell<Option<PolicyHandle>> = const { RefCell::new(None) };
}

/// Run `f` with `policy` installed as the thread's ambient schedule
/// policy: every [`crate::Sim`] *created* inside `f` (on this thread)
/// adopts it. The previous ambient policy is restored on exit, including
/// on unwind. This is the injection point for callers whose `Sim` is
/// constructed behind an API they do not control.
pub fn with_policy<R>(policy: PolicyHandle, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<PolicyHandle>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|a| *a.borrow_mut() = self.0.take());
        }
    }
    let prev = AMBIENT.with(|a| a.borrow_mut().replace(Rc::clone(&policy)));
    let _restore = Restore(prev);
    f()
}

/// The currently installed ambient policy, if any (cloned handle).
pub(crate) fn ambient() -> Option<PolicyHandle> {
    AMBIENT.with(|a| a.borrow().clone())
}
