//! The simulation engine: a single-threaded async executor driven by a
//! virtual clock.
//!
//! Simulated processes are ordinary Rust futures. A process "blocks" by
//! returning [`Poll::Pending`] from a leaf future that has registered a
//! wake-up — either a timed event on the engine's event heap (e.g.
//! [`Sim::sleep`]) or an entry in a synchronization primitive's waiter list
//! (see [`crate::sync`]). The engine pops events in `(time, sequence)`
//! order, so runs are bit-for-bit deterministic: same inputs, same event
//! interleaving, same results.
//!
//! Leaf futures must tolerate *spurious* polls (a stale timed wake-up may
//! poll a task whose real wake condition has not arrived yet). All
//! primitives in this crate follow that rule.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::time::SimTime;

/// Identifies a spawned simulation process.
///
/// Slots are recycled; the generation counter keeps stale wake-ups from a
/// previous occupant of the slot from touching the new one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    idx: u32,
    gen: u32,
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}.{}", self.idx, self.gen)
    }
}

thread_local! {
    static CURRENT: Cell<Option<TaskId>> = const { Cell::new(None) };
}

/// The id of the simulation process currently being polled.
///
/// Panics when called from outside an executing simulation task; leaf
/// futures use it to register the calling task in waiter lists.
pub fn current_task() -> TaskId {
    CURRENT
        .get()
        .expect("des primitive polled outside a simulation task")
}

#[derive(PartialEq, Eq)]
struct WakeEvent {
    time: SimTime,
    seq: u64,
    task: TaskId,
}

impl Ord for WakeEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for WakeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Slot {
    future: Option<Pin<Box<dyn Future<Output = ()>>>>,
    name: String,
    gen: u32,
    done: bool,
    /// What the task is parked on, reported by the leaf future that
    /// registered the task in a waiter list (see [`Sim::note_blocked`]).
    /// Cleared at every poll; used to explain deadlocks.
    blocked_on: Option<&'static str>,
}

/// Counters describing how much work the engine performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Number of timed events popped from the heap.
    pub events: u64,
    /// Number of future polls (including spurious ones).
    pub polls: u64,
    /// Total tasks ever spawned.
    pub spawned: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
}

/// Error returned by [`Sim::run`] when no task can make progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock {
    /// Virtual time at which the simulation stalled.
    pub at: SimTime,
    /// Names of the live (parked) tasks.
    pub parked: Vec<String>,
    /// For each parked task, the primitive it is blocked on (`"queue pop"`,
    /// `"barrier arrive"`, ...) as reported by the leaf future, parallel to
    /// `parked`. `None` when the task parked without registering a reason.
    pub blocked_on: Vec<Option<&'static str>>,
}

impl Deadlock {
    /// One human-readable line per parked task: `name (blocked on X)`.
    pub fn details(&self) -> Vec<String> {
        self.parked
            .iter()
            .zip(&self.blocked_on)
            .map(|(name, what)| match what {
                Some(w) => format!("{name} (blocked on {w})"),
                None => format!("{name} (blocked, no reason recorded)"),
            })
            .collect()
    }
}

impl fmt::Display for Deadlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation deadlocked at {} with {} parked task(s): {}",
            self.at,
            self.parked.len(),
            self.details().join(", ")
        )
    }
}

impl std::error::Error for Deadlock {}

struct Core {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<WakeEvent>>,
    ready: VecDeque<TaskId>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    stats: SimStats,
}

/// Handle to a simulation. Cheap to clone; all clones refer to the same
/// engine. `Sim` is single-threaded (`!Send`) by design.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create a fresh simulation at time zero with no tasks.
    pub fn new() -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                ready: VecDeque::new(),
                slots: Vec::new(),
                free: Vec::new(),
                live: 0,
                stats: SimStats::default(),
            })),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Engine work counters.
    pub fn stats(&self) -> SimStats {
        self.core.borrow().stats
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().live
    }

    /// Spawn a simulation process. It becomes runnable immediately (at the
    /// current virtual time). Returns a handle that can be awaited for the
    /// process's output value.
    pub fn spawn<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinInner {
            value: None,
            finished: false,
            waiters: Vec::new(),
        }));
        let st = Rc::clone(&state);
        let sim = self.clone();
        let wrapped = async move {
            let value = fut.await;
            let waiters = {
                let mut s = st.borrow_mut();
                s.value = Some(value);
                s.finished = true;
                std::mem::take(&mut s.waiters)
            };
            sim.ready_all(waiters);
        };

        let tid = {
            let mut c = self.core.borrow_mut();
            c.stats.spawned += 1;
            c.live += 1;
            let boxed: Pin<Box<dyn Future<Output = ()>>> = Box::pin(wrapped);
            let tid = match c.free.pop() {
                Some(idx) => {
                    let slot = &mut c.slots[idx as usize];
                    slot.future = Some(boxed);
                    slot.name = name.into();
                    slot.done = false;
                    slot.blocked_on = None;
                    TaskId { idx, gen: slot.gen }
                }
                None => {
                    let idx = c.slots.len() as u32;
                    c.slots.push(Slot {
                        future: Some(boxed),
                        name: name.into(),
                        gen: 0,
                        done: false,
                        blocked_on: None,
                    });
                    TaskId { idx, gen: 0 }
                }
            };
            c.ready.push_back(tid);
            tid
        };
        JoinHandle {
            task: tid,
            state,
            sim: self.clone(),
        }
    }

    /// Schedule a timed wake-up for `task` at absolute time `at` (clamped to
    /// the present). Used by leaf futures; harmless if the task has already
    /// completed or been woken by something else (the poll is spurious).
    pub fn schedule_wake(&self, task: TaskId, at: SimTime) {
        let mut c = self.core.borrow_mut();
        let at = at.max(c.now);
        let seq = c.seq;
        c.seq += 1;
        c.heap.push(Reverse(WakeEvent {
            time: at,
            seq,
            task,
        }));
    }

    /// Record what `task` is parked on. Called by leaf futures right after
    /// they register the task in a waiter list; the note is cleared the
    /// next time the task is polled, and surfaces in [`Deadlock`] reports.
    pub fn note_blocked(&self, task: TaskId, what: &'static str) {
        let mut c = self.core.borrow_mut();
        if let Some(slot) = c.slots.get_mut(task.idx as usize) {
            if slot.gen == task.gen && !slot.done {
                slot.blocked_on = Some(what);
            }
        }
    }

    /// Make `task` runnable at the current time (end of the ready queue).
    pub fn ready_now(&self, task: TaskId) {
        let mut c = self.core.borrow_mut();
        if let Some(slot) = c.slots.get(task.idx as usize) {
            if slot.gen == task.gen && !slot.done {
                c.ready.push_back(task);
            }
        }
    }

    /// Make every task in `tasks` runnable, in order, under a single
    /// engine borrow — the wake-all fast path for waiter lists. Stale ids
    /// (completed tasks, recycled slots) are skipped exactly as in
    /// [`Sim::ready_now`].
    pub fn ready_all(&self, tasks: impl IntoIterator<Item = TaskId>) {
        let mut c = self.core.borrow_mut();
        for task in tasks {
            if let Some(slot) = c.slots.get(task.idx as usize) {
                if slot.gen == task.gen && !slot.done {
                    c.ready.push_back(task);
                }
            }
        }
    }

    /// The [`Sleep`] poll body under a single engine borrow: returns
    /// `true` once `deadline` has been reached; otherwise books the timed
    /// wake-up for `task` (at most once, tracked by `scheduled`) and
    /// returns `false`.
    pub(crate) fn sleep_poll(&self, task: TaskId, deadline: SimTime, scheduled: &mut bool) -> bool {
        let mut c = self.core.borrow_mut();
        if c.now >= deadline {
            return true;
        }
        if !*scheduled {
            let seq = c.seq;
            c.seq += 1;
            c.heap.push(Reverse(WakeEvent {
                time: deadline,
                seq,
                task,
            }));
            *scheduled = true;
        }
        false
    }

    /// Sleep for a duration of virtual time.
    pub fn sleep(&self, dur: SimTime) -> Sleep {
        self.sleep_until(self.now().saturating_add(dur))
    }

    /// Sleep until an absolute virtual time (returns immediately if it has
    /// already passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            scheduled: false,
        }
    }

    /// Yield to let every other currently-runnable task execute first.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow {
            sim: self.clone(),
            yielded: false,
        }
    }

    fn poll_task(&self, tid: TaskId) {
        let mut fut = {
            let mut c = self.core.borrow_mut();
            let Some(slot) = c.slots.get_mut(tid.idx as usize) else {
                return;
            };
            if slot.gen != tid.gen || slot.done {
                return; // stale wake-up
            }
            match slot.future.take() {
                Some(f) => {
                    slot.blocked_on = None; // re-recorded if it parks again
                    c.stats.polls += 1;
                    f
                }
                // Already being polled (duplicate ready entry) — impossible
                // in a single-threaded drain, but harmless to skip.
                None => return,
            }
        };

        let prev = CURRENT.replace(Some(tid));
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let result = fut.as_mut().poll(&mut cx);
        CURRENT.set(prev);

        let mut c = self.core.borrow_mut();
        let slot = &mut c.slots[tid.idx as usize];
        match result {
            Poll::Ready(()) => {
                slot.done = true;
                slot.gen = slot.gen.wrapping_add(1);
                slot.future = None;
                c.free.push(tid.idx);
                c.live -= 1;
                c.stats.completed += 1;
            }
            Poll::Pending => {
                slot.future = Some(fut);
            }
        }
    }

    /// Run the simulation until every task has completed.
    ///
    /// Returns the final virtual time, or a [`Deadlock`] listing the parked
    /// tasks if no task can make progress.
    pub fn run(&self) -> Result<SimTime, Deadlock> {
        loop {
            loop {
                let tid = self.core.borrow_mut().ready.pop_front();
                match tid {
                    Some(t) => self.poll_task(t),
                    None => break,
                }
            }
            let next = {
                let mut c = self.core.borrow_mut();
                if c.live == 0 {
                    return Ok(c.now);
                }
                match c.heap.pop() {
                    Some(Reverse(ev)) => {
                        debug_assert!(ev.time >= c.now, "event heap went backwards");
                        c.now = c.now.max(ev.time);
                        c.stats.events += 1;
                        ev.task
                    }
                    None => {
                        let stuck: Vec<&Slot> = c
                            .slots
                            .iter()
                            .filter(|s| !s.done && s.future.is_some())
                            .collect();
                        let parked = stuck.iter().map(|s| s.name.clone()).collect();
                        let blocked_on = stuck.iter().map(|s| s.blocked_on).collect();
                        return Err(Deadlock {
                            at: c.now,
                            parked,
                            blocked_on,
                        });
                    }
                }
            };
            // Poll the woken task directly instead of cycling it through
            // the ready queue; validity (generation, done) is re-checked
            // inside poll_task, so stale wake-ups fall out for free.
            self.poll_task(next);
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    scheduled: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this
            .sim
            .sleep_poll(current_task(), this.deadline, &mut this.scheduled)
        {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    sim: Sim,
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.yielded {
            Poll::Ready(())
        } else {
            this.yielded = true;
            this.sim.ready_now(current_task());
            Poll::Pending
        }
    }
}

struct JoinInner<T> {
    value: Option<T>,
    finished: bool,
    waiters: Vec<TaskId>,
}

/// Handle to a spawned task; await [`JoinHandle::join`] for its output.
pub struct JoinHandle<T> {
    task: TaskId,
    state: Rc<RefCell<JoinInner<T>>>,
    sim: Sim,
}

impl<T> JoinHandle<T> {
    /// The spawned task's id.
    pub fn id(&self) -> TaskId {
        self.task
    }

    /// True once the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Take the output of a task that has already finished, without
    /// awaiting — for collecting results after [`Sim::run`] returns.
    /// Returns `None` if the task has not finished (or was already taken).
    pub fn take_output(self) -> Option<T> {
        self.state.borrow_mut().value.take()
    }

    /// Wait for the task to finish and take its output.
    ///
    /// Panics if the output has already been taken by another `join`.
    pub fn join(self) -> Join<T> {
        Join {
            state: self.state,
            sim: self.sim,
        }
    }
}

/// Future returned by [`JoinHandle::join`].
pub struct Join<T> {
    state: Rc<RefCell<JoinInner<T>>>,
    sim: Sim,
}

impl<T> Future for Join<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if s.finished {
            Poll::Ready(s.value.take().expect("task output already taken"))
        } else {
            let me = current_task();
            if !s.waiters.contains(&me) {
                s.waiters.push(me);
            }
            self.sim.note_blocked(me, "task join");
            Poll::Pending
        }
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Sleep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sleep").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for YieldNow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YieldNow").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Join<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Join").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("sleeper", async move {
            s.sleep(SimTime::from_secs(5)).await;
            assert_eq!(s.now(), SimTime::from_secs(5));
        });
        assert_eq!(sim.run().unwrap(), SimTime::from_secs(5));
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("z", async move {
            s.sleep(SimTime::ZERO).await;
            s.sleep_until(SimTime::ZERO).await;
        });
        assert_eq!(sim.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(name, async move {
                s.sleep(SimTime::from_millis(delay)).await;
                log.borrow_mut().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["first", "second", "third"] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(name, async move {
                s.sleep(SimTime::from_millis(7)).await;
                log.borrow_mut().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn join_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("outer", async move {
            let h = s.spawn("inner", {
                let s = s.clone();
                async move {
                    s.sleep(SimTime::from_secs(1)).await;
                    42u32
                }
            });
            assert_eq!(h.join().await, 42);
            assert_eq!(s.now(), SimTime::from_secs(1));
        });
        sim.run().unwrap();
    }

    #[test]
    fn join_already_finished_task() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("outer", async move {
            let h = s.spawn("quick", async { 7u8 });
            s.sleep(SimTime::from_secs(1)).await;
            assert!(h.is_finished());
            assert_eq!(h.join().await, 7);
        });
        sim.run().unwrap();
    }

    #[test]
    fn yield_now_lets_others_run() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn("a", async move {
                log.borrow_mut().push("a1");
                s.yield_now().await;
                log.borrow_mut().push("a2");
            });
        }
        {
            let log = Rc::clone(&log);
            sim.spawn("b", async move {
                log.borrow_mut().push("b");
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec!["a1", "b", "a2"]);
    }

    #[test]
    fn deadlock_detected_and_named() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("stuck-forever", async move {
            // A join on a task that never finishes, with no timed events.
            let h = s.spawn("never", std::future::pending::<()>());
            h.join().await;
        });
        let err = sim.run().unwrap_err();
        assert!(err.parked.iter().any(|n| n == "stuck-forever"));
        assert!(err.parked.iter().any(|n| n == "never"));
        assert_eq!(err.at, SimTime::ZERO);
        // The joiner reports what it is blocked on; the raw pending future
        // never registered, so it has no reason.
        let details = err.details();
        assert!(
            details
                .iter()
                .any(|d| d == "stuck-forever (blocked on task join)"),
            "details: {details:?}"
        );
        assert!(err.to_string().contains("blocked on task join"));
    }

    #[test]
    fn slots_are_recycled() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("spawner", async move {
            for i in 0..100 {
                let s2 = s.clone();
                let h = s.spawn(format!("t{i}"), async move {
                    s2.sleep(SimTime::from_millis(1)).await;
                });
                h.join().await;
            }
        });
        sim.run().unwrap();
        // spawner + 100 children, but the slab should stay tiny.
        assert!(sim.core.borrow().slots.len() <= 3);
        assert_eq!(sim.stats().spawned, 101);
        assert_eq!(sim.stats().completed, 101);
    }

    #[test]
    fn stale_wake_does_not_touch_recycled_slot() {
        // Schedule a far-future wake for a task that finishes immediately;
        // a new task then reuses the slot. The stale wake must not disturb it.
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("driver", async move {
            let h = s.spawn("short", async {});
            let short_id = h.id();
            s.schedule_wake(short_id, SimTime::from_secs(10));
            h.join().await;
            let s2 = s.clone();
            let h2 = s.spawn("reuser", async move {
                s2.sleep(SimTime::from_secs(20)).await;
                "done"
            });
            assert_eq!(h2.join().await, "done");
        });
        assert_eq!(sim.run().unwrap(), SimTime::from_secs(20));
    }

    #[test]
    fn ready_all_skips_stale_ids_and_tolerates_spurious_wakes() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("driver", async move {
            let h = s.spawn("short", async {});
            let stale = h.id();
            h.join().await;
            // The slot is recycled by a sleeping task; a batched wake
            // containing the stale id must skip it, and the spurious poll
            // of the live sleeper must not complete it early.
            let s2 = s.clone();
            let h2 = s.spawn("reuser", async move {
                s2.sleep(SimTime::from_secs(1)).await;
            });
            s.ready_all([stale, h2.id()]);
            h2.join().await;
        });
        assert_eq!(sim.run().unwrap(), SimTime::from_secs(1));
    }

    #[test]
    fn massive_fanout_is_deterministic() {
        let run = || {
            let sim = Sim::new();
            let total = Rc::new(RefCell::new(0u64));
            for i in 0..500u64 {
                let s = sim.clone();
                let total = Rc::clone(&total);
                sim.spawn(format!("w{i}"), async move {
                    s.sleep(SimTime::from_nanos(i * 13 % 97)).await;
                    *total.borrow_mut() += i;
                    s.sleep(SimTime::from_nanos(i * 7 % 31)).await;
                });
            }
            let end = sim.run().unwrap();
            let sum = *total.borrow();
            (end, sum, sim.stats())
        };
        assert_eq!(run(), run());
    }
}
