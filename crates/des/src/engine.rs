//! The simulation engine: a single-threaded async executor driven by a
//! virtual clock.
//!
//! Simulated processes are ordinary Rust futures. A process "blocks" by
//! returning [`Poll::Pending`] from a leaf future that has registered a
//! wake-up — either a timed event on the engine's timing wheel (e.g.
//! [`Sim::sleep`], see [`crate::wheel`]) or an entry in a synchronization
//! primitive's waiter list (see [`crate::sync`]). The engine pops events
//! in `(time, sequence)` order, so runs are bit-for-bit deterministic:
//! same inputs, same event interleaving, same results.
//!
//! Leaf futures must tolerate *spurious* polls (a stale timed wake-up may
//! poll a task whose real wake condition has not arrived yet). All
//! primitives in this crate follow that rule.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::policy::{self, Candidate, PolicyHandle};
use crate::time::SimTime;
use crate::wheel::{TimerWheel, WakeEvent};

/// Identifies a spawned simulation process.
///
/// Slots are recycled; the generation counter keeps stale wake-ups from a
/// previous occupant of the slot from touching the new one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    idx: u32,
    gen: u32,
}

impl TaskId {
    /// Test-only constructor so the wheel's property tests can fabricate
    /// event payloads without spawning tasks.
    #[cfg(test)]
    pub(crate) const fn from_parts(idx: u32, gen: u32) -> Self {
        TaskId { idx, gen }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}.{}", self.idx, self.gen)
    }
}

thread_local! {
    static CURRENT: Cell<Option<TaskId>> = const { Cell::new(None) };
}

/// The id of the simulation process currently being polled.
///
/// Panics when called from outside an executing simulation task; leaf
/// futures use it to register the calling task in waiter lists.
pub fn current_task() -> TaskId {
    CURRENT
        .get()
        .expect("des primitive polled outside a simulation task")
}

struct Slot {
    future: Option<Pin<Box<dyn Future<Output = ()>>>>,
    name: String,
    gen: u32,
    done: bool,
    /// True while a [`JoinHandle`]/[`Join`] for this slot's task is alive.
    /// The slot is recycled only once the task is done *and* the handle is
    /// gone, so a live handle can always identify its task by generation.
    handle_live: bool,
    /// What the task is parked on, reported by the leaf future that
    /// registered the task in a waiter list (see [`Sim::note_blocked`]).
    /// Cleared at every poll; used to explain deadlocks.
    blocked_on: Option<&'static str>,
    /// The task's output, parked here (type-erased) between completion and
    /// `join`/`take_output`. Only written when a handle is still live.
    value: Option<Box<dyn Any>>,
    /// Tasks awaiting [`Join`] on this slot's task.
    join_waiters: Vec<TaskId>,
}

/// Counters describing how much work the engine performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Number of timed events popped from the wheel.
    pub events: u64,
    /// Number of future polls (including spurious ones).
    pub polls: u64,
    /// Total tasks ever spawned.
    pub spawned: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
}

/// Error returned by [`Sim::run`] when no task can make progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock {
    /// Virtual time at which the simulation stalled.
    pub at: SimTime,
    /// Names of the live (parked) tasks.
    pub parked: Vec<String>,
    /// For each parked task, the primitive it is blocked on (`"queue pop"`,
    /// `"barrier arrive"`, ...) as reported by the leaf future, parallel to
    /// `parked`. `None` when the task parked without registering a reason.
    pub blocked_on: Vec<Option<&'static str>>,
}

impl Deadlock {
    /// One human-readable line per parked task: `name (blocked on X)`.
    pub fn details(&self) -> Vec<String> {
        self.parked
            .iter()
            .zip(&self.blocked_on)
            .map(|(name, what)| match what {
                Some(w) => format!("{name} (blocked on {w})"),
                None => format!("{name} (blocked, no reason recorded)"),
            })
            .collect()
    }
}

impl fmt::Display for Deadlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation deadlocked at {} with {} parked task(s): {}",
            self.at,
            self.parked.len(),
            self.details().join(", ")
        )
    }
}

impl std::error::Error for Deadlock {}

/// A task's boxed future as stored in (and polled out of) its slot.
type TaskFut = Pin<Box<dyn Future<Output = ()>>>;

struct Core {
    seq: u64,
    wheel: TimerWheel,
    ready: VecDeque<TaskId>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    stats: SimStats,
    /// Installed schedule policy (see [`crate::policy`]); `None` runs the
    /// canonical engine with zero per-step overhead beyond this check.
    policy: Option<PolicyHandle>,
}

impl Core {
    /// Take `tid`'s future out of its slot for polling, skipping stale
    /// ids (completed tasks, recycled slots, duplicate ready entries).
    #[inline]
    fn take_future(&mut self, tid: TaskId) -> Option<Pin<Box<dyn Future<Output = ()>>>> {
        let slot = self.slots.get_mut(tid.idx as usize)?;
        if slot.gen != tid.gen || slot.done {
            return None; // stale wake-up
        }
        let fut = slot.future.take()?;
        slot.blocked_on = None; // re-recorded if it parks again
        self.stats.polls += 1;
        Some(fut)
    }
}

/// What the engine should do next, decided under a single core borrow.
enum Step {
    Poll(TaskId, Pin<Box<dyn Future<Output = ()>>>),
    Finished(SimTime),
    Stuck(Deadlock),
}

/// The engine state behind a [`Sim`] handle. The virtual clock lives in a
/// plain `Cell` *outside* the `RefCell`: reading `now` is the hottest
/// engine query (every `sleep` creation and every completing sleep poll),
/// and keeping it borrow-free means those paths never touch the core.
struct Shared {
    now: Cell<SimTime>,
    core: RefCell<Core>,
}

/// Handle to a simulation. Cheap to clone; all clones refer to the same
/// engine. `Sim` is single-threaded (`!Send`) by design.
#[derive(Clone)]
pub struct Sim {
    sh: Rc<Shared>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create a fresh simulation at time zero with no tasks.
    pub fn new() -> Self {
        Sim {
            sh: Rc::new(Shared {
                now: Cell::new(SimTime::ZERO),
                core: RefCell::new(Core {
                    seq: 0,
                    wheel: TimerWheel::new(),
                    // Seed the arena and ready queue with room for a few
                    // dozen tasks: spawn-heavy setups otherwise pay a
                    // cascade of doubling reallocations copying slot
                    // state before the first event runs.
                    ready: VecDeque::with_capacity(64),
                    slots: Vec::with_capacity(64),
                    free: Vec::new(),
                    live: 0,
                    stats: SimStats::default(),
                    policy: policy::ambient(),
                }),
            }),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sh.now.get()
    }

    /// Install (or clear) a schedule policy on this engine. Prefer
    /// [`crate::policy::with_policy`] when the `Sim` is constructed behind
    /// an API; this direct setter is for tests and embedders that hold the
    /// handle. Must not be called from inside a running task.
    pub fn set_policy(&self, policy: Option<PolicyHandle>) {
        self.sh.core.borrow_mut().policy = policy;
    }

    /// Engine work counters.
    pub fn stats(&self) -> SimStats {
        self.sh.core.borrow().stats
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.sh.core.borrow().live
    }

    /// Spawn a simulation process. It becomes runnable immediately (at the
    /// current virtual time). Returns a handle that can be awaited for the
    /// process's output value.
    ///
    /// Task state lives in the engine's slot arena — the handle is just a
    /// generational id, so a spawn costs one future allocation and no
    /// shared-state cells.
    pub fn spawn<T: 'static>(
        &self,
        name: impl Into<String>,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let sim = self.clone();
        let wrapped = async move {
            let value = fut.await;
            sim.store_output(value);
        };

        let tid = {
            let mut c = self.sh.core.borrow_mut();
            c.stats.spawned += 1;
            c.live += 1;
            let boxed: Pin<Box<dyn Future<Output = ()>>> = Box::pin(wrapped);
            let tid = match c.free.pop() {
                Some(idx) => {
                    let slot = &mut c.slots[idx as usize];
                    slot.future = Some(boxed);
                    slot.name = name.into();
                    slot.done = false;
                    slot.handle_live = true;
                    slot.blocked_on = None;
                    debug_assert!(slot.value.is_none() && slot.join_waiters.is_empty());
                    TaskId { idx, gen: slot.gen }
                }
                None => {
                    let idx = c.slots.len() as u32;
                    c.slots.push(Slot {
                        future: Some(boxed),
                        name: name.into(),
                        gen: 0,
                        done: false,
                        handle_live: true,
                        blocked_on: None,
                        value: None,
                        join_waiters: Vec::new(),
                    });
                    TaskId { idx, gen: 0 }
                }
            };
            c.ready.push_back(tid);
            tid
        };
        JoinHandle {
            task: tid,
            sim: self.clone(),
            _out: PhantomData,
        }
    }

    /// Park the finishing task's output in its slot (type-erased) and wake
    /// any joiners. Called by the spawn wrapper as the task's last act;
    /// the output is only boxed when a handle is still alive to claim it.
    fn store_output<T: 'static>(&self, value: T) {
        let tid = current_task();
        let mut c = self.sh.core.borrow_mut();
        let slot = &mut c.slots[tid.idx as usize];
        if slot.handle_live {
            slot.value = Some(Box::new(value));
        }
        if !slot.join_waiters.is_empty() {
            let mut ws = std::mem::take(&mut slot.join_waiters);
            c.ready.extend(ws.drain(..));
            // Hand the emptied Vec's capacity back to the slot.
            c.slots[tid.idx as usize].join_waiters = ws;
        }
    }

    /// Drop a handle's claim on its task's slot: forget any parked output
    /// and recycle the slot if the task has already finished.
    fn release_handle(&self, task: TaskId) {
        let mut c = self.sh.core.borrow_mut();
        let slot = &mut c.slots[task.idx as usize];
        slot.handle_live = false;
        // A live handle blocks recycling, so `gen` moved iff our task is done.
        if slot.gen != task.gen {
            slot.value = None;
            c.free.push(task.idx);
        }
    }

    /// Schedule a timed wake-up for `task` at absolute time `at` (clamped to
    /// the present). Used by leaf futures; harmless if the task has already
    /// completed or been woken by something else (the poll is spurious).
    pub fn schedule_wake(&self, task: TaskId, at: SimTime) {
        let at = at.max(self.sh.now.get());
        let mut c = self.sh.core.borrow_mut();
        let seq = c.seq;
        c.seq += 1;
        c.wheel.push(WakeEvent {
            time: at,
            seq,
            task,
        });
    }

    /// Record what `task` is parked on. Called by leaf futures right after
    /// they register the task in a waiter list; the note is cleared the
    /// next time the task is polled, and surfaces in [`Deadlock`] reports.
    pub fn note_blocked(&self, task: TaskId, what: &'static str) {
        let mut c = self.sh.core.borrow_mut();
        if let Some(slot) = c.slots.get_mut(task.idx as usize) {
            if slot.gen == task.gen && !slot.done {
                slot.blocked_on = Some(what);
            }
        }
    }

    /// Make `task` runnable at the current time (end of the ready queue).
    pub fn ready_now(&self, task: TaskId) {
        let mut c = self.sh.core.borrow_mut();
        if let Some(slot) = c.slots.get(task.idx as usize) {
            if slot.gen == task.gen && !slot.done {
                c.ready.push_back(task);
            }
        }
    }

    /// Make every task in `tasks` runnable, in order, under a single
    /// engine borrow — the wake-all fast path for waiter lists. Stale ids
    /// (completed tasks, recycled slots) are skipped exactly as in
    /// [`Sim::ready_now`].
    pub fn ready_all(&self, tasks: impl IntoIterator<Item = TaskId>) {
        let mut c = self.sh.core.borrow_mut();
        for task in tasks {
            if let Some(slot) = c.slots.get(task.idx as usize) {
                if slot.gen == task.gen && !slot.done {
                    c.ready.push_back(task);
                }
            }
        }
    }

    /// The [`Sleep`] poll body under a single engine borrow: returns
    /// `true` once `deadline` has been reached; otherwise books the timed
    /// wake-up for `task` (at most once, tracked by `scheduled`) and
    /// returns `false`.
    pub(crate) fn sleep_poll(&self, task: TaskId, deadline: SimTime, scheduled: &mut bool) -> bool {
        // The completing poll (deadline reached) never borrows the core.
        if self.sh.now.get() >= deadline {
            return true;
        }
        let mut c = self.sh.core.borrow_mut();
        if !*scheduled {
            let seq = c.seq;
            c.seq += 1;
            c.wheel.push(WakeEvent {
                time: deadline,
                seq,
                task,
            });
            *scheduled = true;
        }
        false
    }

    /// Sleep for a duration of virtual time.
    pub fn sleep(&self, dur: SimTime) -> Sleep {
        self.sleep_until(self.now().saturating_add(dur))
    }

    /// Sleep until an absolute virtual time (returns immediately if it has
    /// already passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            scheduled: false,
        }
    }

    /// Yield to let every other currently-runnable task execute first.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow {
            sim: self.clone(),
            yielded: false,
        }
    }

    /// Decide the next runnable task: drain the ready queue, then pop the
    /// wheel (advancing the clock), skipping stale wake-ups without
    /// releasing the borrow. Timed wake-ups poll the woken task directly
    /// instead of cycling it through the ready queue; validity
    /// (generation, done) is checked by `take_future`, so stale wake-ups
    /// fall out for free.
    ///
    /// `carried` is the future of the task that just returned `Pending`,
    /// not yet restored to its slot. When the next wake-up targets that
    /// same task — a lone sleeper, a producer pacing itself — the future
    /// is handed straight back without the slot round-trip; on every
    /// other exit it is parked in its slot first (it must be there for
    /// later wake-ups, and for deadlock reports).
    fn next_step(&self, c: &mut Core, mut carried: Option<(TaskId, TaskFut)>) -> Step {
        if c.policy.is_some() {
            return self.next_step_policy(c, carried);
        }
        // Bookkeeping parity with `take_future` for the carried fast path.
        let fast = |c: &mut Core, tid: TaskId, fut: TaskFut| {
            c.slots[tid.idx as usize].blocked_on = None;
            c.stats.polls += 1;
            Step::Poll(tid, fut)
        };
        let park = |c: &mut Core, carried: &mut Option<(TaskId, TaskFut)>| {
            if let Some((tid, fut)) = carried.take() {
                c.slots[tid.idx as usize].future = Some(fut);
            }
        };
        loop {
            while let Some(tid) = c.ready.pop_front() {
                if let Some((ctid, _)) = &carried {
                    if *ctid == tid {
                        let (tid, fut) = carried.take().expect("carried is Some");
                        return fast(c, tid, fut);
                    }
                }
                if let Some(fut) = c.take_future(tid) {
                    park(c, &mut carried);
                    return Step::Poll(tid, fut);
                }
            }
            if c.live == 0 {
                park(c, &mut carried);
                return Step::Finished(self.sh.now.get());
            }
            match c.wheel.pop() {
                Some(ev) => {
                    debug_assert!(ev.time >= self.sh.now.get(), "event wheel went backwards");
                    c.stats.events += 1;
                    if ev.time > self.sh.now.get() {
                        self.sh.now.set(ev.time);
                    }
                    if let Some((ctid, _)) = &carried {
                        if *ctid == ev.task {
                            let (tid, fut) = carried.take().expect("carried is Some");
                            return fast(c, tid, fut);
                        }
                    }
                    if let Some(fut) = c.take_future(ev.task) {
                        park(c, &mut carried);
                        return Step::Poll(ev.task, fut);
                    }
                }
                None => {
                    park(c, &mut carried);
                    return Step::Stuck(self.diagnose(c));
                }
            }
        }
    }

    /// Build the deadlock report for the current parked-task population.
    fn diagnose(&self, c: &Core) -> Deadlock {
        let stuck: Vec<&Slot> = c
            .slots
            .iter()
            .filter(|s| !s.done && s.future.is_some())
            .collect();
        Deadlock {
            at: self.sh.now.get(),
            parked: stuck.iter().map(|s| s.name.clone()).collect(),
            blocked_on: stuck.iter().map(|s| s.blocked_on).collect(),
        }
    }

    /// Policy-mode task selection: the same drain discipline as
    /// [`Sim::next_step`] — ready queue first, then the timer wheel — but
    /// every point where more than one task could legally run next is
    /// delegated to the installed [`crate::policy::SchedulePolicy`].
    /// Choosing index 0 at every point reproduces the canonical engine
    /// bit for bit: identical polls, event counts, and clock advances.
    ///
    /// Parity notes, load-bearing for the byte-identity tests:
    /// - The carried fast path is skipped (the policy may pick any
    ///   candidate, so the pending future always returns to its slot
    ///   first); the fast path is bookkeeping-identical, so nothing
    ///   observable changes.
    /// - Stale ready-queue ids are dropped silently, exactly as the
    ///   canonical `take_future` skip does (no counters touched).
    /// - Every wheel event is counted in `stats.events` exactly once, at
    ///   consumption: stale events when dropped from a batch, live events
    ///   when chosen. Unchosen live events go *back* to the wheel
    ///   uncounted (they will be popped again).
    /// - The clock advances to a batch's timestamp even when the whole
    ///   batch is stale, matching the canonical pop loop.
    fn next_step_policy(&self, c: &mut Core, carried: Option<(TaskId, TaskFut)>) -> Step {
        if let Some((tid, fut)) = carried {
            c.slots[tid.idx as usize].future = Some(fut);
        }
        let policy = c.policy.clone().expect("policy mode without a policy");
        let mut batch: Vec<WakeEvent> = Vec::new();
        loop {
            if !policy.borrow_mut().keep_running() {
                return Step::Stuck(Deadlock {
                    at: self.sh.now.get(),
                    parked: vec!["<schedule budget exhausted>".to_string()],
                    blocked_on: vec![None],
                });
            }
            {
                let slots = &c.slots;
                c.ready.retain(|tid| {
                    slots
                        .get(tid.idx as usize)
                        .is_some_and(|s| s.gen == tid.gen && !s.done && s.future.is_some())
                });
            }
            if !c.ready.is_empty() {
                let cands: Vec<Candidate> = c
                    .ready
                    .iter()
                    .map(|&tid| Candidate {
                        task: tid,
                        name_hash: policy::name_hash(&c.slots[tid.idx as usize].name),
                        timed: false,
                    })
                    .collect();
                let k = policy
                    .borrow_mut()
                    .choose(self.sh.now.get(), &cands)
                    .min(cands.len() - 1);
                let tid = c.ready.remove(k).expect("choice within the ready queue");
                let fut = c.take_future(tid).expect("candidate validated above");
                return Step::Poll(tid, fut);
            }
            if c.live == 0 {
                return Step::Finished(self.sh.now.get());
            }
            batch.clear();
            c.wheel.pop_batch(&mut batch);
            if batch.is_empty() {
                return Step::Stuck(self.diagnose(c));
            }
            let t = batch[0].time;
            debug_assert!(t >= self.sh.now.get(), "event wheel went backwards");
            if t > self.sh.now.get() {
                self.sh.now.set(t);
            }
            // Duplicate wake-ups for one live task stay separate
            // candidates: canonically each pop triggers its own
            // (possibly spurious) poll, and parity requires the same.
            let mut live_events: Vec<WakeEvent> = Vec::with_capacity(batch.len());
            for ev in &batch {
                let valid = c
                    .slots
                    .get(ev.task.idx as usize)
                    .is_some_and(|s| s.gen == ev.task.gen && !s.done && s.future.is_some());
                if valid {
                    live_events.push(*ev);
                } else {
                    c.stats.events += 1;
                }
            }
            if live_events.is_empty() {
                continue;
            }
            let cands: Vec<Candidate> = live_events
                .iter()
                .map(|ev| Candidate {
                    task: ev.task,
                    name_hash: policy::name_hash(&c.slots[ev.task.idx as usize].name),
                    timed: true,
                })
                .collect();
            let k = policy.borrow_mut().choose(t, &cands).min(cands.len() - 1);
            for (i, ev) in live_events.iter().enumerate() {
                if i != k {
                    c.wheel.push(*ev);
                }
            }
            let chosen = live_events[k];
            c.stats.events += 1;
            let fut = c
                .take_future(chosen.task)
                .expect("candidate validated above");
            return Step::Poll(chosen.task, fut);
        }
    }

    /// Run the simulation until every task has completed.
    ///
    /// Returns the final virtual time, or a [`Deadlock`] listing the parked
    /// tasks if no task can make progress.
    ///
    /// The loop takes exactly one core borrow per poll: the previous
    /// poll's bookkeeping and the next task selection happen back to back
    /// under the same borrow, which is released only around the actual
    /// future poll (tasks re-enter the engine through their `Sim` handles).
    pub fn run(&self) -> Result<SimTime, Deadlock> {
        let mut finished: Option<(TaskId, TaskFut, Poll<()>)> = None;
        loop {
            let step = {
                let mut c = self.sh.core.borrow_mut();
                let mut carried = None;
                if let Some((tid, fut, result)) = finished.take() {
                    match result {
                        Poll::Ready(()) => {
                            let slot = &mut c.slots[tid.idx as usize];
                            slot.done = true;
                            slot.gen = slot.gen.wrapping_add(1);
                            if !slot.handle_live {
                                // No handle can claim the slot; recycle now.
                                // Otherwise `release_handle` recycles later.
                                slot.value = None;
                                c.free.push(tid.idx);
                            }
                            c.live -= 1;
                            c.stats.completed += 1;
                            drop(fut);
                        }
                        Poll::Pending => {
                            // Restored to the slot by `next_step` unless
                            // the very next wake targets this task again.
                            carried = Some((tid, fut));
                        }
                    }
                }
                self.next_step(&mut c, carried)
            };

            let (tid, mut fut) = match step {
                Step::Poll(tid, fut) => (tid, fut),
                Step::Finished(at) => return Ok(at),
                Step::Stuck(dl) => return Err(dl),
            };

            let prev = CURRENT.replace(Some(tid));
            let waker = Waker::noop();
            let mut cx = Context::from_waker(waker);
            let result = fut.as_mut().poll(&mut cx);
            CURRENT.set(prev);
            finished = Some((tid, fut, result));
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    scheduled: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this
            .sim
            .sleep_poll(current_task(), this.deadline, &mut this.scheduled)
        {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    sim: Sim,
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.yielded {
            Poll::Ready(())
        } else {
            this.yielded = true;
            this.sim.ready_now(current_task());
            Poll::Pending
        }
    }
}

/// Handle to a spawned task; await [`JoinHandle::join`] for its output.
///
/// The handle is a generational id into the engine's slot arena — it holds
/// no shared allocation of its own. While a handle is alive, its task's
/// slot is kept reserved (the output parks there after completion); dropping
/// the handle releases the slot for recycling.
pub struct JoinHandle<T> {
    task: TaskId,
    sim: Sim,
    _out: PhantomData<fn() -> T>,
}

impl<T: 'static> JoinHandle<T> {
    /// The spawned task's id.
    pub fn id(&self) -> TaskId {
        self.task
    }

    /// True once the task has run to completion.
    pub fn is_finished(&self) -> bool {
        // Completion bumps the slot generation, and a live handle blocks
        // recycling, so a generation mismatch can only mean "our task done".
        self.sim.sh.core.borrow().slots[self.task.idx as usize].gen != self.task.gen
    }

    /// Take the output of a task that has already finished, without
    /// awaiting — for collecting results after [`Sim::run`] returns.
    /// Returns `None` if the task has not finished (or was already taken).
    pub fn take_output(self) -> Option<T> {
        let out = {
            let mut c = self.sim.sh.core.borrow_mut();
            let slot = &mut c.slots[self.task.idx as usize];
            slot.handle_live = false;
            if slot.gen != self.task.gen {
                let v = slot.value.take();
                c.free.push(self.task.idx);
                v.map(|b| *b.downcast::<T>().expect("join output type mismatch"))
            } else {
                None
            }
        };
        std::mem::forget(self); // slot claim already released above
        out
    }

    /// Wait for the task to finish and take its output.
    ///
    /// Panics if the output has already been taken by another `join`.
    pub fn join(self) -> Join<T> {
        let j = Join {
            task: self.task,
            sim: self.sim.clone(),
            finished: false,
            _out: PhantomData,
        };
        std::mem::forget(self); // the Join future inherits the slot claim
        j
    }
}

impl<T> Drop for JoinHandle<T> {
    fn drop(&mut self) {
        self.sim.release_handle(self.task);
    }
}

/// Future returned by [`JoinHandle::join`].
pub struct Join<T> {
    task: TaskId,
    sim: Sim,
    finished: bool,
    _out: PhantomData<fn() -> T>,
}

impl<T: 'static> Future for Join<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let this = self.get_mut();
        let me = current_task();
        let mut c = this.sim.sh.core.borrow_mut();
        let slot = &mut c.slots[this.task.idx as usize];
        if slot.gen != this.task.gen {
            let v = slot.value.take().expect("task output already taken");
            slot.handle_live = false;
            this.finished = true;
            c.free.push(this.task.idx);
            Poll::Ready(*v.downcast::<T>().expect("join output type mismatch"))
        } else {
            if !slot.join_waiters.contains(&me) {
                slot.join_waiters.push(me);
            }
            c.slots[me.idx as usize].blocked_on = Some("task join");
            Poll::Pending
        }
    }
}

impl<T> Drop for Join<T> {
    fn drop(&mut self) {
        if !self.finished {
            self.sim.release_handle(self.task);
        }
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Sleep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sleep").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for YieldNow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YieldNow").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Join<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Join").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("sleeper", async move {
            s.sleep(SimTime::from_secs(5)).await;
            assert_eq!(s.now(), SimTime::from_secs(5));
        });
        assert_eq!(sim.run().unwrap(), SimTime::from_secs(5));
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("z", async move {
            s.sleep(SimTime::ZERO).await;
            s.sleep_until(SimTime::ZERO).await;
        });
        assert_eq!(sim.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(name, async move {
                s.sleep(SimTime::from_millis(delay)).await;
                log.borrow_mut().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["first", "second", "third"] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(name, async move {
                s.sleep(SimTime::from_millis(7)).await;
                log.borrow_mut().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn join_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("outer", async move {
            let h = s.spawn("inner", {
                let s = s.clone();
                async move {
                    s.sleep(SimTime::from_secs(1)).await;
                    42u32
                }
            });
            assert_eq!(h.join().await, 42);
            assert_eq!(s.now(), SimTime::from_secs(1));
        });
        sim.run().unwrap();
    }

    #[test]
    fn join_already_finished_task() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("outer", async move {
            let h = s.spawn("quick", async { 7u8 });
            s.sleep(SimTime::from_secs(1)).await;
            assert!(h.is_finished());
            assert_eq!(h.join().await, 7);
        });
        sim.run().unwrap();
    }

    #[test]
    fn yield_now_lets_others_run() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn("a", async move {
                log.borrow_mut().push("a1");
                s.yield_now().await;
                log.borrow_mut().push("a2");
            });
        }
        {
            let log = Rc::clone(&log);
            sim.spawn("b", async move {
                log.borrow_mut().push("b");
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec!["a1", "b", "a2"]);
    }

    #[test]
    fn deadlock_detected_and_named() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("stuck-forever", async move {
            // A join on a task that never finishes, with no timed events.
            let h = s.spawn("never", std::future::pending::<()>());
            h.join().await;
        });
        let err = sim.run().unwrap_err();
        assert!(err.parked.iter().any(|n| n == "stuck-forever"));
        assert!(err.parked.iter().any(|n| n == "never"));
        assert_eq!(err.at, SimTime::ZERO);
        // The joiner reports what it is blocked on; the raw pending future
        // never registered, so it has no reason.
        let details = err.details();
        assert!(
            details
                .iter()
                .any(|d| d == "stuck-forever (blocked on task join)"),
            "details: {details:?}"
        );
        assert!(err.to_string().contains("blocked on task join"));
    }

    #[test]
    fn slots_are_recycled() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("spawner", async move {
            for i in 0..100 {
                let s2 = s.clone();
                let h = s.spawn(format!("t{i}"), async move {
                    s2.sleep(SimTime::from_millis(1)).await;
                });
                h.join().await;
            }
        });
        sim.run().unwrap();
        // spawner + 100 children, but the slab should stay tiny.
        assert!(sim.sh.core.borrow().slots.len() <= 3);
        assert_eq!(sim.stats().spawned, 101);
        assert_eq!(sim.stats().completed, 101);
    }

    #[test]
    fn stale_wake_does_not_touch_recycled_slot() {
        // Schedule a far-future wake for a task that finishes immediately;
        // a new task then reuses the slot. The stale wake must not disturb it.
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("driver", async move {
            let h = s.spawn("short", async {});
            let short_id = h.id();
            s.schedule_wake(short_id, SimTime::from_secs(10));
            h.join().await;
            let s2 = s.clone();
            let h2 = s.spawn("reuser", async move {
                s2.sleep(SimTime::from_secs(20)).await;
                "done"
            });
            assert_eq!(h2.join().await, "done");
        });
        assert_eq!(sim.run().unwrap(), SimTime::from_secs(20));
    }

    #[test]
    fn ready_all_skips_stale_ids_and_tolerates_spurious_wakes() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn("driver", async move {
            let h = s.spawn("short", async {});
            let stale = h.id();
            h.join().await;
            // The slot is recycled by a sleeping task; a batched wake
            // containing the stale id must skip it, and the spurious poll
            // of the live sleeper must not complete it early.
            let s2 = s.clone();
            let h2 = s.spawn("reuser", async move {
                s2.sleep(SimTime::from_secs(1)).await;
            });
            s.ready_all([stale, h2.id()]);
            h2.join().await;
        });
        assert_eq!(sim.run().unwrap(), SimTime::from_secs(1));
    }

    use crate::policy::{
        with_policy, Candidate, CanonicalPolicy, PolicyHandle, SchedulePolicy, SeededPolicy,
    };

    /// A workload with same-tick sleep collisions, yields, joins, spawn
    /// churn, and a stale wake-up — every selection-point flavor the
    /// policy hook must handle. Returns the observable run record.
    fn run_mixed(policy: Option<PolicyHandle>) -> (SimTime, Vec<String>, SimStats) {
        let sim = Sim::new();
        if policy.is_some() {
            sim.set_policy(policy); // None keeps any ambient policy
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        for (i, name) in ["a", "b", "c", "d"].into_iter().enumerate() {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(name, async move {
                s.sleep(SimTime::from_millis(5)).await;
                log.borrow_mut().push(format!("{name}@tick"));
                s.yield_now().await;
                log.borrow_mut().push(format!("{name}@yield"));
                s.sleep(SimTime::from_millis((i as u64 % 2) * 3)).await;
                log.borrow_mut().push(format!("{name}@end"));
            });
        }
        let s = sim.clone();
        let log2 = Rc::clone(&log);
        sim.spawn("driver", async move {
            let h = s.spawn("child", {
                let s = s.clone();
                async move {
                    s.sleep(SimTime::from_millis(5)).await;
                    7u32
                }
            });
            let stale = h.id();
            s.schedule_wake(stale, SimTime::from_millis(6)); // spurious/stale
            let v = h.join().await;
            log2.borrow_mut().push(format!("join={v}"));
        });
        let end = sim.run().unwrap();
        let entries = log.borrow().clone();
        (end, entries, sim.stats())
    }

    /// Contract 1 of `crate::policy`: always answering 0 reproduces the
    /// stock engine exactly — same final time, same observable event
    /// order, same work counters (polls, events, spawns, completions).
    #[test]
    fn canonical_policy_is_bit_identical_to_no_policy() {
        let stock = run_mixed(None);
        let canonical = run_mixed(Some(Rc::new(RefCell::new(CanonicalPolicy))));
        assert_eq!(stock, canonical);
    }

    /// A seeded-random policy must still produce a *legal* schedule: the
    /// run completes, all tasks finish, and the per-task event sequences
    /// are preserved (only cross-task order may change).
    #[test]
    fn seeded_policy_runs_to_completion_with_same_task_histories() {
        let (_, stock_log, stock_stats) = run_mixed(None);
        let mut saw_reorder = false;
        for seed in [1u64, 7, 42, 1234] {
            let (_, log, stats) = run_mixed(Some(Rc::new(RefCell::new(SeededPolicy::new(seed)))));
            assert_eq!(stats.spawned, stock_stats.spawned);
            assert_eq!(stats.completed, stock_stats.completed);
            let mut sorted = log.clone();
            sorted.sort();
            let mut stock_sorted = stock_log.clone();
            stock_sorted.sort();
            assert_eq!(sorted, stock_sorted, "seed {seed} lost or invented events");
            saw_reorder |= log != stock_log;
        }
        assert!(saw_reorder, "no seed produced a non-canonical interleaving");
    }

    /// The ambient installer must steer a `Sim` constructed behind a
    /// function call, and the engine must surface multi-candidate
    /// decision points (both ready-queue and timed ones) to the policy.
    #[test]
    fn ambient_policy_sees_ready_and_timed_decision_points() {
        #[derive(Default)]
        struct Recorder {
            max_ready: usize,
            max_timed: usize,
        }
        impl SchedulePolicy for Recorder {
            fn choose(&mut self, _now: SimTime, cands: &[Candidate]) -> usize {
                let n = cands.len();
                if cands[0].timed {
                    self.max_timed = self.max_timed.max(n);
                } else {
                    self.max_ready = self.max_ready.max(n);
                }
                0
            }
        }
        let rec = Rc::new(RefCell::new(Recorder::default()));
        let handle: PolicyHandle = rec.clone();
        let stock = run_mixed(None);
        let steered = with_policy(handle, || run_mixed(None));
        assert_eq!(stock, steered, "recorder answers 0, so runs must match");
        assert!(
            rec.borrow().max_timed >= 2,
            "same-tick sleepers not batched"
        );
        assert!(
            rec.borrow().max_ready >= 2,
            "yield wave not offered as a choice"
        );
    }

    /// `keep_running() == false` must abort as a synthetic deadlock with
    /// the budget marker — not a panic, not a hang.
    #[test]
    fn policy_budget_exhaustion_aborts_as_deadlock() {
        struct Budget(u32);
        impl SchedulePolicy for Budget {
            fn choose(&mut self, _now: SimTime, _c: &[Candidate]) -> usize {
                0
            }
            fn keep_running(&mut self) -> bool {
                self.0 = self.0.saturating_sub(1);
                self.0 > 0
            }
        }
        let sim = Sim::new();
        sim.set_policy(Some(Rc::new(RefCell::new(Budget(3)))));
        let s = sim.clone();
        sim.spawn("looper", async move {
            loop {
                s.sleep(SimTime::from_millis(1)).await;
            }
        });
        let err = sim.run().unwrap_err();
        assert_eq!(err.parked, vec!["<schedule budget exhausted>".to_string()]);
    }

    #[test]
    fn massive_fanout_is_deterministic() {
        let run = || {
            let sim = Sim::new();
            let total = Rc::new(RefCell::new(0u64));
            for i in 0..500u64 {
                let s = sim.clone();
                let total = Rc::clone(&total);
                sim.spawn(format!("w{i}"), async move {
                    s.sleep(SimTime::from_nanos(i * 13 % 97)).await;
                    *total.borrow_mut() += i;
                    s.sleep(SimTime::from_nanos(i * 7 % 31)).await;
                });
            }
            let end = sim.run().unwrap();
            let sum = *total.borrow();
            (end, sum, sim.stats())
        };
        assert_eq!(run(), run());
    }
}
