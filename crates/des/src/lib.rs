//! # s3a-des — deterministic discrete-event simulation engine
//!
//! The substrate every other `s3asim` crate builds on: a single-threaded
//! async executor whose tasks advance a *virtual* clock instead of waiting
//! on wall time.
//!
//! Simulated processes are written as plain `async` functions; "blocking"
//! operations (sleeping, receiving a message, waiting at a barrier, queuing
//! at a server) are awaits on the primitives in [`sync`]. The engine pops
//! timed events in `(time, sequence)` order, so every run with the same
//! inputs produces identical results — the property the paper relies on
//! when it notes that S3aSim results "are always identical since they are
//! pseudo-randomly generated".
//!
//! ## Example
//!
//! ```
//! use s3a_des::{Sim, SimTime};
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! sim.spawn("hello", async move {
//!     s.sleep(SimTime::from_millis(250)).await;
//!     assert_eq!(s.now(), SimTime::from_millis(250));
//! });
//! let end = sim.run().unwrap();
//! assert_eq!(end, SimTime::from_millis(250));
//! ```

pub mod engine;
pub mod policy;
pub mod sync;
pub mod time;
pub(crate) mod wheel;

pub use engine::{
    current_task, Deadlock, Join, JoinHandle, Sim, SimStats, Sleep, TaskId, YieldNow,
};
pub use policy::{
    with_policy, Candidate, CanonicalPolicy, PolicyHandle, SchedulePolicy, SeededPolicy,
};
pub use sync::{
    Acquire, Arrive, Barrier, Flag, OneShot, Pop, Queue, Semaphore, Signal, Take, Timeline,
    WaitFlag, WaitSignal,
};
pub use time::SimTime;
