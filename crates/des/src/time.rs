//! Virtual time for the simulation.
//!
//! Simulated time is an unsigned count of nanoseconds since the start of the
//! run. Using a fixed-point integer representation (rather than `f64`
//! seconds) keeps event ordering exact and the simulation bit-for-bit
//! deterministic across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
///
/// The same type doubles as a duration; the arithmetic provided is the
/// subset that is meaningful for both uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and NaN inputs clamp to zero; overly large inputs clamp to
    /// [`SimTime::MAX`]. Model code computes service times in `f64` and this
    /// constructor is the single crossing point back into exact time.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        // NaN and non-positive inputs clamp to zero.
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (clamps at [`SimTime::MAX`]).
    #[inline]
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// True if this is the zero time/duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_nanos(2_000_000_000));
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime::from_secs_f64(0.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(a * 2, SimTime::from_secs(6));
        assert_eq!(a / 3, SimTime::from_secs(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(b), SimTime::MAX);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_folds() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&s| SimTime::from_secs(s)).sum();
        assert_eq!(total, SimTime::from_secs(6));
    }

    #[test]
    fn roundtrip_secs_f64() {
        for ns in [0u64, 1, 999, 1_000_000_007, 123_456_789_012] {
            let t = SimTime::from_nanos(ns);
            let rt = SimTime::from_secs_f64(t.as_secs_f64());
            // f64 has 52 bits of mantissa; round-trips are exact for these sizes.
            assert_eq!(rt, t);
        }
    }
}
