//! Synchronization primitives for simulation processes.
//!
//! All primitives share the same waiter discipline: a pending waiter's
//! [`TaskId`] is registered in the primitive; state changes wake *all*
//! registered waiters, and each woken waiter re-checks its condition on the
//! next poll. Wake-all is deliberately chosen over wake-one — it is immune
//! to lost wake-ups when a woken task has meanwhile completed, and the
//! single-threaded deterministic executor makes the re-check cheap.
//!
//! [`Queue::push`] is the one exception: exactly one item arrives per push,
//! so only the head waiter (FIFO) is woken. Tasks in this engine cannot be
//! cancelled while parked, so the woken waiter always re-polls and either
//! consumes the item or re-registers — no wake-up can be lost.

use std::cell::{Cell as StdCell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::engine::{current_task, Sim, TaskId};
use crate::time::SimTime;

fn register(sim: &Sim, waiters: &mut Vec<TaskId>, what: &'static str) {
    let me = current_task();
    if !waiters.contains(&me) {
        waiters.push(me);
    }
    sim.note_blocked(me, what);
}

fn wake_all(sim: &Sim, waiters: &mut Vec<TaskId>) {
    // One engine borrow for the whole waiter list (see `Sim::ready_all`);
    // the drained Vec keeps its capacity for the next round of waiters.
    sim.ready_all(waiters.drain(..));
}

fn wake_one(sim: &Sim, waiters: &mut Vec<TaskId>) {
    // FIFO: the longest-parked waiter runs first. Registration order is
    // deterministic, so so is the wake order.
    if !waiters.is_empty() {
        sim.ready_now(waiters.remove(0));
    }
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

struct QueueInner<T> {
    items: VecDeque<T>,
    waiters: Vec<TaskId>,
}

/// An unbounded FIFO channel between simulation processes.
///
/// Cloning the handle shares the queue. `push` is non-blocking; `pop`
/// suspends the caller until an item is available.
pub struct Queue<T> {
    inner: Rc<RefCell<QueueInner<T>>>,
    sim: Sim,
}

impl<T> Clone for Queue<T> {
    fn clone(&self) -> Self {
        Queue {
            inner: Rc::clone(&self.inner),
            sim: self.sim.clone(),
        }
    }
}

impl<T> Queue<T> {
    /// Create an empty queue attached to `sim`.
    pub fn new(sim: &Sim) -> Self {
        Queue {
            inner: Rc::new(RefCell::new(QueueInner {
                items: VecDeque::new(),
                waiters: Vec::new(),
            })),
            sim: sim.clone(),
        }
    }

    /// Append an item and wake the head waiting consumer (if any).
    ///
    /// Each push makes exactly one item available, so waking more than one
    /// waiter only buys spurious re-polls (see the module doc).
    pub fn push(&self, item: T) {
        let mut q = self.inner.borrow_mut();
        q.items.push_back(item);
        wake_one(&self.sim, &mut q.waiters);
    }

    /// Remove the oldest item if one is present.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.borrow_mut().items.pop_front()
    }

    /// Wait for and remove the oldest item.
    pub fn pop(&self) -> Pop<'_, T> {
        Pop { queue: self }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.borrow().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Queue::pop`]. Borrows the queue handle — a pop
/// costs no reference-count traffic of its own.
pub struct Pop<'a, T> {
    queue: &'a Queue<T>,
}

impl<T> Future for Pop<'_, T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let mut q = self.queue.inner.borrow_mut();
        match q.items.pop_front() {
            Some(v) => Poll::Ready(v),
            None => {
                register(&self.queue.sim, &mut q.waiters, "queue pop");
                Poll::Pending
            }
        }
    }
}

// ---------------------------------------------------------------------------
// OneShot
// ---------------------------------------------------------------------------

struct OneShotInner<T> {
    value: Option<T>,
    set: bool,
    waiters: Vec<TaskId>,
}

/// A write-once cell: one `set`, any number of waiters, one `take`.
pub struct OneShot<T> {
    inner: Rc<RefCell<OneShotInner<T>>>,
    sim: Sim,
}

impl<T> Clone for OneShot<T> {
    fn clone(&self) -> Self {
        OneShot {
            inner: Rc::clone(&self.inner),
            sim: self.sim.clone(),
        }
    }
}

impl<T> OneShot<T> {
    /// Create an unset cell.
    pub fn new(sim: &Sim) -> Self {
        OneShot {
            inner: Rc::new(RefCell::new(OneShotInner {
                value: None,
                set: false,
                waiters: Vec::new(),
            })),
            sim: sim.clone(),
        }
    }

    /// Store the value and wake waiters. Panics if already set.
    pub fn set(&self, value: T) {
        let mut c = self.inner.borrow_mut();
        assert!(!c.set, "OneShot::set called twice");
        c.value = Some(value);
        c.set = true;
        wake_all(&self.sim, &mut c.waiters);
    }

    /// True once a value has been stored (even if already taken).
    pub fn is_set(&self) -> bool {
        self.inner.borrow().set
    }

    /// Take the value if it has been stored.
    pub fn try_take(&self) -> Option<T> {
        self.inner.borrow_mut().value.take()
    }

    /// Wait for the value and take it. Panics if another waiter already
    /// took it.
    pub fn take(&self) -> Take<T> {
        Take { cell: self.clone() }
    }
}

/// Future returned by [`OneShot::take`].
pub struct Take<T> {
    cell: OneShot<T>,
}

impl<T> Future for Take<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let mut c = self.cell.inner.borrow_mut();
        if c.set {
            Poll::Ready(c.value.take().expect("OneShot value taken twice"))
        } else {
            register(&self.cell.sim, &mut c.waiters, "oneshot take");
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Flag
// ---------------------------------------------------------------------------

struct FlagInner {
    set: bool,
    waiters: Vec<TaskId>,
}

/// A level-triggered event: once `set`, every past and future `wait`
/// completes immediately. The natural shape for MPI-style request
/// completion (`MPI_Test` / `MPI_Wait`).
#[derive(Clone)]
pub struct Flag {
    inner: Rc<RefCell<FlagInner>>,
    sim: Sim,
}

impl Flag {
    /// Create an unset flag.
    pub fn new(sim: &Sim) -> Self {
        Flag {
            inner: Rc::new(RefCell::new(FlagInner {
                set: false,
                waiters: Vec::new(),
            })),
            sim: sim.clone(),
        }
    }

    /// Set the flag and wake all waiters. Idempotent.
    pub fn set(&self) {
        let mut f = self.inner.borrow_mut();
        if !f.set {
            f.set = true;
            wake_all(&self.sim, &mut f.waiters);
        }
    }

    /// True once [`Flag::set`] has been called.
    pub fn is_set(&self) -> bool {
        self.inner.borrow().set
    }

    /// Wait until the flag is set (immediately ready if it already is).
    pub fn wait(&self) -> WaitFlag {
        WaitFlag { flag: self.clone() }
    }
}

/// Future returned by [`Flag::wait`].
pub struct WaitFlag {
    flag: Flag,
}

impl Future for WaitFlag {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let mut f = self.flag.inner.borrow_mut();
        if f.set {
            Poll::Ready(())
        } else {
            register(&self.flag.sim, &mut f.waiters, "flag wait");
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Signal
// ---------------------------------------------------------------------------

struct SignalInner {
    generation: u64,
    waiters: Vec<TaskId>,
}

/// An edge-triggered broadcast: `wait()` completes at the first `notify_all`
/// that happens *after* the wait began. Useful for "state changed,
/// re-examine it" loops (e.g. message matching).
#[derive(Clone)]
pub struct Signal {
    inner: Rc<RefCell<SignalInner>>,
    sim: Sim,
}

impl Signal {
    /// Create a signal attached to `sim`.
    pub fn new(sim: &Sim) -> Self {
        Signal {
            inner: Rc::new(RefCell::new(SignalInner {
                generation: 0,
                waiters: Vec::new(),
            })),
            sim: sim.clone(),
        }
    }

    /// Wake every current waiter.
    pub fn notify_all(&self) {
        let mut s = self.inner.borrow_mut();
        s.generation += 1;
        wake_all(&self.sim, &mut s.waiters);
    }

    /// Wait for the next notification.
    pub fn wait(&self) -> WaitSignal {
        WaitSignal {
            signal: self.clone(),
            target: None,
        }
    }
}

/// Future returned by [`Signal::wait`].
pub struct WaitSignal {
    signal: Signal,
    target: Option<u64>,
}

impl Future for WaitSignal {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut s = this.signal.inner.borrow_mut();
        let target = *this.target.get_or_insert(s.generation + 1);
        if s.generation >= target {
            Poll::Ready(())
        } else {
            register(&this.signal.sim, &mut s.waiters, "signal wait");
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierInner {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<TaskId>,
}

/// A reusable synchronization barrier for a fixed number of parties.
#[derive(Clone)]
pub struct Barrier {
    inner: Rc<RefCell<BarrierInner>>,
    sim: Sim,
}

impl Barrier {
    /// Create a barrier for `parties` participants.
    pub fn new(sim: &Sim, parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            inner: Rc::new(RefCell::new(BarrierInner {
                parties,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
            sim: sim.clone(),
        }
    }

    /// Arrive at the barrier and wait for all other parties.
    pub fn arrive(&self) -> Arrive {
        Arrive {
            barrier: self.clone(),
            entered: None,
        }
    }

    /// Number of parties the barrier was built for.
    pub fn parties(&self) -> usize {
        self.inner.borrow().parties
    }
}

/// Future returned by [`Barrier::arrive`].
pub struct Arrive {
    barrier: Barrier,
    entered: Option<u64>,
}

impl Future for Arrive {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut b = this.barrier.inner.borrow_mut();
        match this.entered {
            None => {
                let my_gen = b.generation;
                b.arrived += 1;
                if b.arrived == b.parties {
                    b.arrived = 0;
                    b.generation += 1;
                    let sim = this.barrier.sim.clone();
                    wake_all(&sim, &mut b.waiters);
                    Poll::Ready(())
                } else {
                    this.entered = Some(my_gen);
                    register(&this.barrier.sim, &mut b.waiters, "barrier arrive");
                    Poll::Pending
                }
            }
            Some(my_gen) => {
                if b.generation > my_gen {
                    Poll::Ready(())
                } else {
                    register(&this.barrier.sim, &mut b.waiters, "barrier arrive");
                    Poll::Pending
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

/// A serialized FIFO service resource (a single server queue).
///
/// Modeled analytically: each reservation books the earliest slot at or
/// after the current time, so waiting time is `start - arrival`. Arrival
/// order equals event order, which the deterministic engine fixes. This is
/// how NICs, PVFS server request queues, and disks are modeled.
#[derive(Clone)]
pub struct Timeline {
    next_free: Rc<StdCell<SimTime>>,
    busy: Rc<StdCell<SimTime>>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// Create an idle timeline.
    pub fn new() -> Self {
        Timeline {
            next_free: Rc::new(StdCell::new(SimTime::ZERO)),
            busy: Rc::new(StdCell::new(SimTime::ZERO)),
        }
    }

    /// Book `service` time on the resource starting no earlier than `now`;
    /// returns the `(start, end)` of the booked slot without waiting.
    pub fn reserve(&self, now: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let start = self.next_free.get().max(now);
        let end = start + service;
        self.next_free.set(end);
        self.busy.set(self.busy.get() + service);
        (start, end)
    }

    /// Book `service` time and wait until the slot completes. Returns the
    /// time spent queued before service began.
    pub async fn serve(&self, sim: &Sim, service: SimTime) -> SimTime {
        let now = sim.now();
        let (start, end) = self.reserve(now, service);
        sim.sleep_until(end).await;
        start - now
    }

    /// The earliest time a new reservation could start.
    pub fn next_free(&self) -> SimTime {
        self.next_free.get()
    }

    /// Total service time booked so far (for utilization reporting).
    pub fn total_busy(&self) -> SimTime {
        self.busy.get()
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemaphoreInner {
    permits: u64,
    waiters: Vec<TaskId>,
}

/// A counting semaphore (used for flow control, e.g. bounding outstanding
/// I/O requests).
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemaphoreInner>>,
    sim: Sim,
}

impl Semaphore {
    /// Create a semaphore holding `permits` initial permits.
    pub fn new(sim: &Sim, permits: u64) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(SemaphoreInner {
                permits,
                waiters: Vec::new(),
            })),
            sim: sim.clone(),
        }
    }

    /// Wait until `n` permits are available and take them.
    pub fn acquire(&self, n: u64) -> Acquire {
        Acquire {
            sem: self.clone(),
            n,
        }
    }

    /// Return `n` permits and wake waiters.
    pub fn release(&self, n: u64) {
        let mut s = self.inner.borrow_mut();
        s.permits += n;
        wake_all(&self.sim, &mut s.waiters);
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.inner.borrow().permits
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    n: u64,
}

impl Future for Acquire {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.sem.inner.borrow_mut();
        if s.permits >= self.n {
            s.permits -= self.n;
            Poll::Ready(())
        } else {
            register(&self.sem.sim, &mut s.waiters, "semaphore acquire");
            Poll::Pending
        }
    }
}

// Opaque Debug impls: these are shared handles (or futures) over
// internal state; printing the state itself would be noisy and could
// observe a mid-operation borrow.

impl std::fmt::Debug for Flag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flag").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for WaitFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitFlag").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for WaitSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitSignal").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Barrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Barrier").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Arrive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arrive").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timeline").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Acquire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Acquire").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Queue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Queue").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Pop<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pop").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for OneShot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneShot").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Take<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Take").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn queue_passes_items_in_order() {
        let sim = Sim::new();
        let q: Queue<u32> = Queue::new(&sim);
        {
            let q = q.clone();
            let s = sim.clone();
            sim.spawn("producer", async move {
                for i in 0..5 {
                    s.sleep(SimTime::from_millis(10)).await;
                    q.push(i);
                }
            });
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        {
            let q = q.clone();
            let got = Rc::clone(&got);
            sim.spawn("consumer", async move {
                for _ in 0..5 {
                    let v = q.pop().await;
                    got.borrow_mut().push(v);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn queue_consumer_blocks_until_push() {
        let sim = Sim::new();
        let q: Queue<&'static str> = Queue::new(&sim);
        {
            let q = q.clone();
            let s = sim.clone();
            sim.spawn("consumer", async move {
                let v = q.pop().await;
                assert_eq!(v, "hello");
                assert_eq!(s.now(), SimTime::from_secs(3));
            });
        }
        {
            let q = q.clone();
            let s = sim.clone();
            sim.spawn("producer", async move {
                s.sleep(SimTime::from_secs(3)).await;
                q.push("hello");
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn queue_multiple_consumers_all_served() {
        let sim = Sim::new();
        let q: Queue<u32> = Queue::new(&sim);
        let served = Rc::new(StdCell::new(0u32));
        for i in 0..4 {
            let q = q.clone();
            let served = Rc::clone(&served);
            sim.spawn(format!("c{i}"), async move {
                let _ = q.pop().await;
                served.set(served.get() + 1);
            });
        }
        {
            let q = q.clone();
            let s = sim.clone();
            sim.spawn("p", async move {
                for _ in 0..4 {
                    s.sleep(SimTime::from_millis(1)).await;
                    q.push(9);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(served.get(), 4);
    }

    #[test]
    fn flag_wakes_waiters_and_is_level_triggered() {
        let sim = Sim::new();
        let flag = Flag::new(&sim);
        let woke = Rc::new(StdCell::new(SimTime::ZERO));
        {
            let flag = flag.clone();
            let s = sim.clone();
            let woke = Rc::clone(&woke);
            sim.spawn("waiter", async move {
                flag.wait().await;
                woke.set(s.now());
                // A second wait on a set flag returns immediately.
                flag.wait().await;
                assert_eq!(s.now(), woke.get());
            });
        }
        {
            let flag = flag.clone();
            let s = sim.clone();
            sim.spawn("setter", async move {
                s.sleep(SimTime::from_secs(4)).await;
                flag.set();
                flag.set(); // idempotent
            });
        }
        sim.run().unwrap();
        assert!(flag.is_set());
        assert_eq!(woke.get(), SimTime::from_secs(4));
    }

    #[test]
    fn flag_set_before_wait_is_immediate() {
        let sim = Sim::new();
        let flag = Flag::new(&sim);
        flag.set();
        let s = sim.clone();
        let f = flag.clone();
        sim.spawn("late-waiter", async move {
            f.wait().await;
            assert_eq!(s.now(), SimTime::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn oneshot_delivers_once() {
        let sim = Sim::new();
        let c: OneShot<u64> = OneShot::new(&sim);
        {
            let c = c.clone();
            let s = sim.clone();
            sim.spawn("setter", async move {
                s.sleep(SimTime::from_secs(1)).await;
                c.set(99);
            });
        }
        {
            let c = c.clone();
            sim.spawn("taker", async move {
                assert_eq!(c.take().await, 99);
            });
        }
        sim.run().unwrap();
        assert!(c.is_set());
        assert_eq!(c.try_take(), None);
    }

    #[test]
    #[should_panic(expected = "set called twice")]
    fn oneshot_double_set_panics() {
        let sim = Sim::new();
        let c: OneShot<u8> = OneShot::new(&sim);
        c.set(1);
        c.set(2);
    }

    #[test]
    fn signal_is_edge_triggered() {
        let sim = Sim::new();
        let sig = Signal::new(&sim);
        // A notification before the wait starts must NOT complete the wait.
        sig.notify_all();
        let woke_at = Rc::new(StdCell::new(SimTime::ZERO));
        {
            let sig = sig.clone();
            let s = sim.clone();
            let woke_at = Rc::clone(&woke_at);
            sim.spawn("waiter", async move {
                sig.wait().await;
                woke_at.set(s.now());
            });
        }
        {
            let sig = sig.clone();
            let s = sim.clone();
            sim.spawn("notifier", async move {
                s.sleep(SimTime::from_secs(2)).await;
                sig.notify_all();
            });
        }
        sim.run().unwrap();
        assert_eq!(woke_at.get(), SimTime::from_secs(2));
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let sim = Sim::new();
        let bar = Barrier::new(&sim, 3);
        let release_times = Rc::new(RefCell::new(Vec::new()));
        for (i, delay) in [5u64, 1, 9].into_iter().enumerate() {
            let bar = bar.clone();
            let s = sim.clone();
            let rt = Rc::clone(&release_times);
            sim.spawn(format!("p{i}"), async move {
                s.sleep(SimTime::from_secs(delay)).await;
                bar.arrive().await;
                rt.borrow_mut().push(s.now());
            });
        }
        sim.run().unwrap();
        let times = release_times.borrow();
        assert_eq!(times.len(), 3);
        assert!(times.iter().all(|&t| t == SimTime::from_secs(9)));
    }

    #[test]
    fn barrier_is_reusable() {
        let sim = Sim::new();
        let bar = Barrier::new(&sim, 2);
        let rounds = Rc::new(StdCell::new(0u32));
        for i in 0..2 {
            let bar = bar.clone();
            let s = sim.clone();
            let rounds = Rc::clone(&rounds);
            sim.spawn(format!("p{i}"), async move {
                for r in 0..3u64 {
                    s.sleep(SimTime::from_secs((i as u64) + r)).await;
                    bar.arrive().await;
                    rounds.set(rounds.get() + 1);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(rounds.get(), 6);
    }

    #[test]
    fn timeline_serializes_service() {
        let sim = Sim::new();
        let tl = Timeline::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u64 {
            let tl = tl.clone();
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(format!("client{i}"), async move {
                // All three arrive at t=0; each needs 10ms of service.
                let waited = tl.serve(&s, SimTime::from_millis(10)).await;
                log.borrow_mut().push((s.now(), waited));
            });
        }
        sim.run().unwrap();
        let log = log.borrow();
        assert_eq!(log[0], (SimTime::from_millis(10), SimTime::ZERO));
        assert_eq!(log[1], (SimTime::from_millis(20), SimTime::from_millis(10)));
        assert_eq!(log[2], (SimTime::from_millis(30), SimTime::from_millis(20)));
        assert_eq!(tl.total_busy(), SimTime::from_millis(30));
    }

    #[test]
    fn timeline_idle_gap_not_counted_busy() {
        let sim = Sim::new();
        let tl = Timeline::new();
        let s = sim.clone();
        let tl2 = tl.clone();
        sim.spawn("c", async move {
            tl2.serve(&s, SimTime::from_millis(5)).await;
            s.sleep(SimTime::from_secs(1)).await;
            tl2.serve(&s, SimTime::from_millis(5)).await;
        });
        sim.run().unwrap();
        assert_eq!(tl.total_busy(), SimTime::from_millis(10));
        assert_eq!(
            tl.next_free(),
            SimTime::from_millis(10) + SimTime::from_secs(1)
        );
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(&sim, 2);
        let peak = Rc::new(StdCell::new(0u32));
        let cur = Rc::new(StdCell::new(0u32));
        for i in 0..6 {
            let sem = sem.clone();
            let s = sim.clone();
            let peak = Rc::clone(&peak);
            let cur = Rc::clone(&cur);
            sim.spawn(format!("w{i}"), async move {
                sem.acquire(1).await;
                cur.set(cur.get() + 1);
                peak.set(peak.get().max(cur.get()));
                s.sleep(SimTime::from_millis(10)).await;
                cur.set(cur.get() - 1);
                sem.release(1);
            });
        }
        sim.run().unwrap();
        assert_eq!(peak.get(), 2);
        assert_eq!(sem.available(), 2);
    }
}
